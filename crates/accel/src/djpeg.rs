//! JPEG decoder model (benchmark `djpeg`, after the OpenCores `djpeg`
//! core).
//!
//! One job decodes one image; one token is one MCU. Besides the
//! counter-timed dequantization/IDCT/color-conversion stages, the Huffman
//! decoder contains a *variable-latency state with no associated counter*:
//! a shift-register drain loop whose duration depends on the entropy of
//! the coded bits. This is exactly the structure the paper reports for
//! djpeg (§4.3) — the mined features cannot see that latency, so djpeg
//! shows visibly higher prediction error than the other benchmarks while
//! the slice still captures the bulk of the variation.

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};
use rand::Rng;

use crate::common::{self, JumpyWalk, WorkloadSize};
use crate::Workloads;

/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 250.0;

/// Builds the decoder module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("djpeg");
    let nzc = b.input("nzc", 9);
    let hbits = b.input("hbits", 16);

    let fsm = b.fsm(
        "ctrl",
        &[
            "FETCH", "HSCAN_W", "HUFF_W", "HUFFX", "DEQ_W", "IDCT_W", "COLOR_W", "EMIT",
        ],
    );
    // Serial symbol scan (the part the slice must genuinely re-run)...
    let hscan = b.wait_state(&fsm, "HSCAN_W", "HUFF_W", "huff.scan");
    b.enter_wait(
        &fsm,
        "FETCH",
        "HSCAN_W",
        hscan,
        (nzc.clone() >> E::k(2)) + E::k(6),
        E::stream_empty().is_zero(),
    );
    // ...then the counter-timed coefficient expansion...
    let huff = b.wait_state(&fsm, "HUFF_W", "HUFFX", "huff.cnt");
    b.set(
        huff,
        fsm.in_state("HSCAN_W") & hscan.e().eq_(E::zero()),
        nzc * E::k(2) + E::k(14),
    );
    // ...followed by the hidden drain loop: a shift-register feedback the
    // counter analysis rightly refuses to classify.
    let sh = b.reg("huff.shift", 16, 0);
    b.set(sh, fsm.in_state("HUFF_W") & huff.e().eq_(E::zero()), hbits);
    b.set(
        sh,
        fsm.in_state("HUFFX") & sh.e().ne_(E::zero()),
        sh.e() - (sh.e() >> E::k(5)) - E::one(),
    );
    let deq = b.wait_state(&fsm, "DEQ_W", "IDCT_W", "deq.cnt");
    b.set(
        deq,
        fsm.in_state("HUFFX") & sh.e().eq_(E::zero()),
        E::k(128),
    );
    b.trans(&fsm, "HUFFX", "DEQ_W", sh.e().eq_(E::zero()));
    let idct = b.wait_state(&fsm, "IDCT_W", "COLOR_W", "idct.cnt");
    b.set(
        idct,
        fsm.in_state("DEQ_W") & deq.e().eq_(E::zero()),
        E::k(384),
    );
    let color = b.wait_state(&fsm, "COLOR_W", "EMIT", "color.cnt");
    b.set(
        color,
        fsm.in_state("IDCT_W") & idct.e().eq_(E::zero()),
        E::k(96),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (394,635 µm²).
    b.datapath_serial(
        "huff.decoder",
        fsm.in_state("HSCAN_W"),
        7_000.0,
        0.4,
        1_200,
        0,
    );
    b.datapath_compute("huff.expand", fsm.in_state("HUFF_W"), 10_000.0, 0.9, 800, 0);
    b.datapath_serial("huff.drain", fsm.in_state("HUFFX"), 5_000.0, 0.4, 800, 0);
    b.datapath_compute("deq.unit", fsm.in_state("DEQ_W"), 40_000.0, 1.0, 1_800, 16);
    b.datapath_compute(
        "idct.pipeline",
        fsm.in_state("IDCT_W"),
        150_000.0,
        1.1,
        5_200,
        56,
    );
    b.datapath_compute(
        "color.convert",
        fsm.in_state("COLOR_W"),
        80_000.0,
        1.0,
        3_000,
        24,
    );
    b.memory("mcu_buf", 32 * 1024, false);
    b.memory("bitstream_in", 4 * 1024, true);

    b.build().expect("djpeg module is well-formed")
}

/// Generates one image; `quality` in `[0, 1]` drives the *hidden* Huffman
/// drain durations (unobservable by the extracted features).
pub fn image(r: &mut rand::rngs::StdRng, mcus: usize, nzc_mean: f64, quality: f64) -> JobInput {
    let mut job = JobInput::new(2);
    for _ in 0..mcus {
        let nzc = common::jitter(r, nzc_mean, 0.45, 2, 500);
        // Most symbols drain the shift register in a few cycles, but
        // escape-coded blocks take hundreds; `quality` shifts the escape
        // rate, so the per-image hidden time varies in a way no mined
        // feature can see.
        let escape = r.gen_bool(0.02 + 0.18 * quality);
        let hbits = if escape {
            r.gen_range(20_000..60_000u64)
        } else {
            r.gen_range(4..24u64)
        };
        job.push(&[nzc, hbits]);
    }
    job
}

fn image_set(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    let mut mcus_walk = common::SkewedWalk::new(&mut r, 540.0, 4450.0, 5.2, 0.07, 0.26);
    let mut nzc_walk = JumpyWalk::new(&mut r, 25.0, 100.0, 0.08, 0.10);
    let mut q_walk = JumpyWalk::new(&mut r, 0.05, 1.0, 0.05, 0.15);
    (0..count)
        .map(|_| {
            let exc: f64 = if r.gen_bool(0.07) {
                r.gen_range(1.4..1.9)
            } else {
                1.0
            };
            let jit: f64 = r.gen_range(0.85..1.15);
            let raw = (mcus_walk.next(&mut r) * jit * exc).min(4450.0);
            let mcus = size.tokens(raw as usize);
            let nzc = nzc_walk.next(&mut r);
            let q = q_walk.next(&mut r);
            image(&mut r, mcus, nzc, q)
        })
        .collect()
}

/// Table 3 workloads: 100 training images, 100 test images, various sizes.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(100);
    Workloads {
        train: image_set(seed ^ 0xDEC0, n, size),
        test: image_set(seed ^ 0x1A6E, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn hidden_drain_is_not_a_counter() {
        let m = build();
        let a = Analysis::run(&m);
        let sh = m.reg_by_name("huff.shift").unwrap();
        assert!(
            a.counters.iter().all(|c| c.reg != sh),
            "shift register must evade counter detection"
        );
        // HUFFX is not a wait state either: its latency is invisible.
        let f = m.reg_by_name("ctrl.state").unwrap();
        let huffx = 3; // state encoding order
        assert!(a.wait_for(f, huffx).is_none());
    }

    #[test]
    fn hidden_bits_change_cycles_with_equal_features() {
        let m = build();
        let a = Analysis::run(&m);
        let schema = predvfs_rtl::FeatureSchema::from_analysis(&m, &a);
        let probes = schema.probe_program(&a);
        let sim = Simulator::new(&m);
        let mut lo = JobInput::new(2);
        let mut hi = JobInput::new(2);
        for _ in 0..32 {
            lo.push(&[80, 16]);
            hi.push(&[80, 60_000]);
        }
        let tl = sim.run(&lo, ExecMode::FastForward, Some(&probes)).unwrap();
        let th = sim.run(&hi, ExecMode::FastForward, Some(&probes)).unwrap();
        assert!(
            th.cycles > tl.cycles + 32 * 10,
            "{} vs {}",
            th.cycles,
            tl.cycles
        );
        assert_eq!(tl.features, th.features, "features are blind to the drain");
    }

    #[test]
    fn decode_consumes_stream() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut r = common::rng(11);
        let img = image(&mut r, 100, 50.0, 0.5);
        let t = sim.run(&img, ExecMode::FastForward, None).unwrap();
        assert_eq!(t.tokens_consumed, 100);
        assert!(t.cycles > 100 * 600);
    }

    #[test]
    fn quality_varies_hidden_time() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut r = common::rng(13);
        let a = image(&mut r, 200, 50.0, 0.0);
        let b2 = image(&mut r, 200, 50.0, 1.0);
        let ta = sim.run(&a, ExecMode::FastForward, None).unwrap();
        let tb = sim.run(&b2, ExecMode::FastForward, None).unwrap();
        assert!(tb.cycles > ta.cycles, "{} vs {}", tb.cycles, ta.cycles);
    }
}
