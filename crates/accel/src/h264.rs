//! H.264 baseline video decoder model (after Xu & Choy, the paper's
//! benchmark `h264`).
//!
//! One job decodes one CIF frame (396 macroblocks). Each macroblock token
//! carries the content-dependent quantities that drive the decoder's
//! control decisions: macroblock type (skip / intra / inter), transform
//! coefficient counts, intra prediction mode, quarter-pel motion flag,
//! reference preload lengths, and deblocking boundary strength. The FSM
//! walks the paper's Fig. 9 pipeline: bitstream parsing (serial entropy
//! decoding), residue decoding, intra or inter prediction, and the
//! deblocking filter — every stage timed by a counter the analysis can
//! mine.
//!
//! The quarter-pel interpolation path costs nearly twice the full-pel
//! path; this is the "subtle effect" (§3.7) that manually chosen features
//! missed but the automatically mined counters capture.

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};
use rand::Rng;

use crate::common::{self, JumpyWalk, WorkloadSize};
use crate::Workloads;

/// Macroblocks per CIF frame (352 × 288).
pub const MBS_PER_FRAME: usize = 396;
/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 250.0;

/// Token fields, in order.
pub const FIELDS: [&str; 9] = [
    "mb_type",
    "ncy",
    "ncc",
    "intra_mode",
    "qpel",
    "prel_y",
    "prel_cb",
    "prel_cr",
    "bs_sum",
];

/// Builds the decoder module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("h264");
    let mb_type = b.input("mb_type", 2);
    let ncy = b.input("ncy", 10);
    let ncc = b.input("ncc", 9);
    let intra_mode = b.input("intra_mode", 2);
    let qpel = b.input("qpel", 1);
    let prel_y = b.input("prel_y", 10);
    let prel_cb = b.input("prel_cb", 9);
    let prel_cr = b.input("prel_cr", 9);
    let bs_sum = b.input("bs_sum", 8);

    let fsm = b.fsm(
        "ctrl",
        &[
            "FETCH", "NAL_W", "HDR_W", "CAVY_W", "CAVC_W", "ROUTE_P", "RESY_W", "RESC_W",
            "ROUTE_R", "INTRA0_W", "INTRA1_W", "INTRA2_W", "INTRA3_W", "ROUTE_I", "PRELY_W",
            "PRELCB_W", "PRELCR_W", "ROUTE_M", "INTF_W", "INTQ_W", "ROUTE_I2", "BS_W", "FILTV_W",
            "FILTH_W", "EMIT",
        ],
    );

    // --- Bitstream parser: serial entropy decoding, chained waits -------
    let nal = b.wait_state(&fsm, "NAL_W", "HDR_W", "parse.nal");
    b.enter_wait(
        &fsm,
        "FETCH",
        "NAL_W",
        nal,
        E::k(8),
        E::stream_empty().is_zero(),
    );
    let hdr = b.wait_state(&fsm, "HDR_W", "CAVY_W", "parse.hdr");
    b.set(
        hdr,
        fsm.in_state("NAL_W") & nal.e().eq_(E::zero()),
        E::k(16),
    );
    let cavy = b.wait_state(&fsm, "CAVY_W", "CAVC_W", "parse.cavlc_y");
    b.set(
        cavy,
        fsm.in_state("HDR_W") & hdr.e().eq_(E::zero()),
        ncy.clone() * E::k(2),
    );
    let cavc = b.wait_state(&fsm, "CAVC_W", "ROUTE_P", "parse.cavlc_c");
    b.set(
        cavc,
        fsm.in_state("CAVY_W") & cavy.e().eq_(E::zero()),
        ncc.clone() * E::k(2),
    );

    // --- Residue decoding ------------------------------------------------
    let resy = b.wait_state(&fsm, "RESY_W", "RESC_W", "res.y");
    b.enter_wait(
        &fsm,
        "ROUTE_P",
        "RESY_W",
        resy,
        ncy.clone() * E::k(6) + E::k(40),
        mb_type.clone().ne_(E::zero()),
    );
    let resc = b.wait_state(&fsm, "RESC_W", "ROUTE_R", "res.c");
    b.set(
        resc,
        fsm.in_state("RESY_W") & resy.e().eq_(E::zero()),
        ncc * E::k(6) + E::k(24),
    );

    // --- Intra prediction: one timed unit per prediction mode -----------
    for m in 0..4u64 {
        let wait = format!("INTRA{m}_W");
        let ctr = b.wait_state(&fsm, &wait, "ROUTE_I", &format!("intra.m{m}"));
        b.enter_wait(
            &fsm,
            "ROUTE_R",
            &wait,
            ctr,
            ncy.clone() * E::k(2) + E::k(1500 + 60 * m),
            mb_type.clone().eq_(E::one()) & intra_mode.clone().eq_(E::k(m)),
        );
    }

    // --- Inter prediction: reference preload then interpolation ---------
    let prely = b.wait_state(&fsm, "PRELY_W", "PRELCB_W", "inter.prel_y");
    b.enter_wait(
        &fsm,
        "ROUTE_R",
        "PRELY_W",
        prely,
        prel_y,
        mb_type.clone().eq_(E::k(2)),
    );
    let prelcb = b.wait_state(&fsm, "PRELCB_W", "PRELCR_W", "inter.prel_cb");
    b.set(
        prelcb,
        fsm.in_state("PRELY_W") & prely.e().eq_(E::zero()),
        prel_cb,
    );
    let prelcr = b.wait_state(&fsm, "PRELCR_W", "ROUTE_M", "inter.prel_cr");
    b.set(
        prelcr,
        fsm.in_state("PRELCB_W") & prelcb.e().eq_(E::zero()),
        prel_cr,
    );
    let intf = b.wait_state(&fsm, "INTF_W", "ROUTE_I2", "inter.interp_full");
    b.enter_wait(
        &fsm,
        "ROUTE_M",
        "INTF_W",
        intf,
        E::k(1500),
        qpel.clone().is_zero(),
    );
    let intq = b.wait_state(&fsm, "INTQ_W", "ROUTE_I2", "inter.interp_qpel");
    b.enter_wait(&fsm, "ROUTE_M", "INTQ_W", intq, E::k(2700), qpel.nonzero());

    // --- Deblocking filter ----------------------------------------------
    let bs = b.wait_state(&fsm, "BS_W", "FILTV_W", "dblk.bs");
    b.enter_wait(
        &fsm,
        "ROUTE_P",
        "BS_W",
        bs,
        bs_sum.clone() + E::k(40),
        mb_type.eq_(E::zero()),
    );
    b.enter_wait(
        &fsm,
        "ROUTE_I",
        "BS_W",
        bs,
        bs_sum.clone() + E::k(60),
        E::one(),
    );
    b.enter_wait(
        &fsm,
        "ROUTE_I2",
        "BS_W",
        bs,
        bs_sum.clone() + E::k(60),
        E::one(),
    );
    let filtv = b.wait_state(&fsm, "FILTV_W", "FILTH_W", "dblk.filt_v");
    b.set(
        filtv,
        fsm.in_state("BS_W") & bs.e().eq_(E::zero()),
        bs_sum.clone() + E::k(220),
    );
    let filth = b.wait_state(&fsm, "FILTH_W", "EMIT", "dblk.filt_h");
    b.set(
        filth,
        fsm.in_state("FILTV_W") & filtv.e().eq_(E::zero()),
        bs_sum + E::k(220),
    );

    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // --- Datapath blocks: areas calibrated to Table 4 (659,506 µm²) -----
    b.datapath_serial(
        "parse.nal_unit",
        fsm.in_state("NAL_W"),
        1_200.0,
        0.5,
        300,
        0,
    );
    b.datapath_serial("parse.header", fsm.in_state("HDR_W"), 1_800.0, 0.5, 450, 0);
    b.datapath_serial(
        "parse.cavlc_y",
        fsm.in_state("CAVY_W"),
        3_200.0,
        0.5,
        800,
        0,
    );
    b.datapath_serial(
        "parse.cavlc_c",
        fsm.in_state("CAVC_W"),
        1_800.0,
        0.5,
        500,
        0,
    );
    b.datapath_compute(
        "res.itrans_y",
        fsm.in_state("RESY_W"),
        55_000.0,
        1.0,
        3_200,
        24,
    );
    b.datapath_compute(
        "res.itrans_c",
        fsm.in_state("RESC_W"),
        25_000.0,
        1.0,
        1_500,
        12,
    );
    for m in 0..4u64 {
        b.datapath_compute(
            &format!("intra.pred{m}"),
            fsm.in_state(&format!("INTRA{m}_W")),
            22_000.0,
            1.0,
            1_400,
            8,
        );
    }
    b.datapath_compute("inter.dma_y", fsm.in_state("PRELY_W"), 8_000.0, 0.7, 600, 0);
    b.datapath_compute(
        "inter.dma_cb",
        fsm.in_state("PRELCB_W"),
        8_000.0,
        0.7,
        600,
        0,
    );
    b.datapath_compute(
        "inter.dma_cr",
        fsm.in_state("PRELCR_W"),
        8_000.0,
        0.7,
        600,
        0,
    );
    b.datapath_compute(
        "inter.interp_full",
        fsm.in_state("INTF_W"),
        95_000.0,
        1.1,
        5_600,
        48,
    );
    b.datapath_compute(
        "inter.interp_qpel",
        fsm.in_state("INTQ_W"),
        55_000.0,
        1.1,
        3_200,
        32,
    );
    b.datapath_compute(
        "dblk.bs_calc",
        fsm.in_state("BS_W"),
        25_000.0,
        0.9,
        1_500,
        4,
    );
    b.datapath_compute(
        "dblk.filter_v",
        fsm.in_state("FILTV_W"),
        55_000.0,
        1.0,
        3_000,
        16,
    );
    b.datapath_compute(
        "dblk.filter_h",
        fsm.in_state("FILTH_W"),
        55_000.0,
        1.0,
        3_000,
        16,
    );
    b.memory("bitstream_buf", 8 * 1024, true);
    b.memory("ref_frame_spm", 64 * 1024, false);

    b.build().expect("h264 module is well-formed")
}

/// Per-frame content profile used by the generator.
#[derive(Debug, Clone, Copy)]
struct FrameProfile {
    skip_frac: f64,
    intra_frac: f64,
    ncy_mean: f64,
    qpel_frac: f64,
    prel_mean: f64,
    bs_mean: f64,
}

impl FrameProfile {
    /// Maps a scalar activity level in `[0, 1]` to macroblock statistics.
    fn from_activity(a: f64) -> FrameProfile {
        FrameProfile {
            skip_frac: 0.10 - 0.06 * a,
            intra_frac: 0.06 + 0.04 * a,
            ncy_mean: 105.0 + 140.0 * a,
            qpel_frac: 0.30 + 0.55 * a,
            prel_mean: 300.0 + 200.0 * a,
            bs_mean: 24.0 + 44.0 * a,
        }
    }

    /// An I-frame: every macroblock intra-coded with rich residue.
    fn intra_frame(a: f64) -> FrameProfile {
        FrameProfile {
            skip_frac: 0.0,
            intra_frac: 1.0,
            ncy_mean: (105.0 + 140.0 * a) * 1.9,
            qpel_frac: 0.0,
            prel_mean: 0.0,
            bs_mean: 30.0 + 40.0 * a,
        }
    }
}

fn gen_frame(r: &mut rand::rngs::StdRng, p: FrameProfile, mbs: usize) -> JobInput {
    let mut job = JobInput::new(FIELDS.len());
    for _ in 0..mbs {
        let u: f64 = r.gen();
        let mb_type = if u < p.skip_frac {
            0
        } else if u < p.skip_frac + p.intra_frac {
            1
        } else {
            2
        };
        let (ncy, ncc) = if mb_type == 0 {
            (0, 0)
        } else {
            let y = common::jitter(r, p.ncy_mean, 0.35, 4, 620);
            (y, common::jitter(r, y as f64 * 0.35, 0.3, 2, 380))
        };
        let intra_mode = r.gen_range(0..4u64);
        let qpel = u64::from(mb_type == 2 && r.gen_bool(p.qpel_frac));
        let (py, pcb, pcr) = if mb_type == 2 {
            let y = common::jitter(r, p.prel_mean, 0.3, 64, 1000);
            (y, y / 3, y / 3)
        } else {
            (0, 0, 0)
        };
        let bs = common::jitter(r, p.bs_mean, 0.5, 0, 255);
        job.push(&[mb_type, ncy, ncc, intra_mode, qpel, py, pcb, pcr, bs]);
    }
    job
}

/// Generates one synthetic video: `frames` jobs with activity following a
/// jumpy walk in `[act_lo, act_hi]` (scene changes) and an I-frame roughly
/// every 45 frames.
pub fn clip(seed: u64, frames: usize, act_lo: f64, act_hi: f64, mbs: usize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    let mut act = JumpyWalk::new(&mut r, act_lo, act_hi, 0.05, 0.07);
    let mut next_iframe = 0usize;
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        let a = act.next(&mut r);
        let profile = if f == next_iframe {
            next_iframe += r.gen_range(35..55);
            FrameProfile::intra_frame(a)
        } else {
            FrameProfile::from_activity(a)
        };
        out.push(gen_frame(&mut r, profile, mbs));
    }
    out
}

/// The three fixed-character clips of Fig. 2.
pub fn figure2_clips(seed: u64, frames: usize) -> Vec<(&'static str, Vec<JobInput>)> {
    vec![
        (
            "coastguard",
            clip(seed ^ 0xC0A5, frames, 0.62, 0.92, MBS_PER_FRAME),
        ),
        (
            "foreman",
            clip(seed ^ 0xF03E, frames, 0.32, 0.65, MBS_PER_FRAME),
        ),
        (
            "news",
            clip(seed ^ 0x4E35, frames, 0.04, 0.30, MBS_PER_FRAME),
        ),
    ]
}

/// Table 3 workloads: 2 training videos (600 frames), 5 test videos
/// (1500 frames), all the same resolution.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let frames = size.jobs(300);
    let mbs = size.tokens(MBS_PER_FRAME);
    let mut train = Vec::new();
    for (i, band) in [(0.1, 0.9), (0.2, 0.75)].iter().enumerate() {
        train.extend(clip(seed ^ (i as u64), frames, band.0, band.1, mbs));
    }
    let mut test = Vec::new();
    for (i, band) in [
        (0.05, 0.45),
        (0.25, 0.7),
        (0.5, 0.95),
        (0.1, 0.85),
        (0.35, 0.6),
    ]
    .iter()
    .enumerate()
    {
        test.extend(clip(seed ^ (0x100 + i as u64), frames, band.0, band.1, mbs));
    }
    Workloads { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn module_analyses_cleanly() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.fsms.len(), 1, "single unified control FSM");
        assert!(a.counters.len() >= 17, "got {} counters", a.counters.len());
        assert!(a.waits.len() >= 17, "got {} wait states", a.waits.len());
        let serial_waits = a.waits.iter().filter(|w| w.serial).count();
        assert_eq!(serial_waits, 4, "four parser stages are serial");
    }

    #[test]
    fn frame_decodes_and_consumes_all_macroblocks() {
        let m = build();
        let sim = Simulator::new(&m);
        let jobs = clip(1, 2, 0.4, 0.6, 64);
        for j in &jobs {
            let t = sim.run(j, ExecMode::FastForward, None).unwrap();
            assert_eq!(t.tokens_consumed, 64);
            assert!(t.cycles > 64 * 500, "cycles {}", t.cycles);
        }
    }

    #[test]
    fn activity_increases_cycles() {
        let m = build();
        let sim = Simulator::new(&m);
        let lo = &clip(7, 1, 0.05, 0.06, 128)[0];
        let hi = &clip(7, 1, 0.93, 0.94, 128)[0];
        let tl = sim.run(lo, ExecMode::FastForward, None).unwrap();
        let th = sim.run(hi, ExecMode::FastForward, None).unwrap();
        assert!(
            th.cycles as f64 > tl.cycles as f64 * 1.3,
            "hi {} vs lo {}",
            th.cycles,
            tl.cycles
        );
    }

    #[test]
    fn qpel_macroblocks_cost_more() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut full = JobInput::new(FIELDS.len());
        let mut qp = JobInput::new(FIELDS.len());
        for _ in 0..16 {
            full.push(&[2, 100, 35, 0, 0, 300, 100, 100, 30]);
            qp.push(&[2, 100, 35, 0, 1, 300, 100, 100, 30]);
        }
        let tf = sim.run(&full, ExecMode::FastForward, None).unwrap();
        let tq = sim.run(&qp, ExecMode::FastForward, None).unwrap();
        assert_eq!(tq.cycles - tf.cycles, 16 * 1200, "qpel adds 1200/MB");
    }

    #[test]
    fn workload_sizes_match_table3() {
        let w = workloads(42, WorkloadSize::Quick);
        assert_eq!(w.train.len(), 2 * WorkloadSize::Quick.jobs(300));
        assert_eq!(w.test.len(), 5 * WorkloadSize::Quick.jobs(300));
    }

    #[test]
    fn generator_is_deterministic() {
        let a = workloads(9, WorkloadSize::Quick);
        let b = workloads(9, WorkloadSize::Quick);
        assert_eq!(a.train[0], b.train[0]);
        assert_eq!(a.test.last(), b.test.last());
    }
}
