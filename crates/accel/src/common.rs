//! Shared workload-generation helpers.
//!
//! The paper drives each accelerator with real inputs (video clips, photo
//! collections, particle traces, data streams). The synthetic generators
//! here reproduce the *statistical structure* that matters to a DVFS
//! controller: smooth drift punctuated by jumps (scene changes, page
//! loads, collision events) that defeat reactive prediction, and broad
//! size distributions that create the execution-time spreads of Table 4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a workload seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A bounded random walk with occasional jumps.
///
/// Values drift by at most `persistence` of the range per step; with
/// probability `jump_prob` a step instead re-draws uniformly — the "scene
/// change" events that make reactive controllers lag (Fig. 3).
#[derive(Debug, Clone)]
pub struct JumpyWalk {
    lo: f64,
    hi: f64,
    step: f64,
    jump_prob: f64,
    value: f64,
}

impl JumpyWalk {
    /// Creates a walk over `[lo, hi]` starting at a uniform draw.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or probabilities are out of range.
    pub fn new(r: &mut StdRng, lo: f64, hi: f64, persistence: f64, jump_prob: f64) -> JumpyWalk {
        assert!(lo < hi, "walk bounds inverted");
        assert!((0.0..=1.0).contains(&persistence));
        assert!((0.0..=1.0).contains(&jump_prob));
        JumpyWalk {
            lo,
            hi,
            step: (hi - lo) * persistence,
            jump_prob,
            value: r.gen_range(lo..hi),
        }
    }

    /// Advances one step and returns the new value.
    pub fn next(&mut self, r: &mut StdRng) -> f64 {
        if r.gen_bool(self.jump_prob) {
            self.value = r.gen_range(self.lo..self.hi);
        } else {
            let d = r.gen_range(-self.step..self.step);
            self.value = (self.value + d).clamp(self.lo, self.hi);
        }
        self.value
    }

    /// Current value without advancing.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// A [`JumpyWalk`] in unit space mapped through a power law.
///
/// Real job-size distributions (image dimensions, payload bytes) are
/// heavily skewed toward small values; `value = lo + (hi-lo)·u^k` with a
/// walking `u ∈ [0,1]` reproduces Table 4's avg ≪ (min+max)/2 pattern
/// while keeping the burst autocorrelation.
#[derive(Debug, Clone)]
pub struct SkewedWalk {
    walk: JumpyWalk,
    lo: f64,
    hi: f64,
    k: f64,
}

impl SkewedWalk {
    /// Creates a skewed walk over `[lo, hi]` with skew exponent `k ≥ 1`.
    pub fn new(
        r: &mut StdRng,
        lo: f64,
        hi: f64,
        k: f64,
        persistence: f64,
        jump_prob: f64,
    ) -> SkewedWalk {
        assert!(k >= 1.0, "skew exponent must be >= 1");
        SkewedWalk {
            walk: JumpyWalk::new(r, 0.0, 1.0, persistence, jump_prob),
            lo,
            hi,
            k,
        }
    }

    /// Advances one step and returns the new value.
    pub fn next(&mut self, r: &mut StdRng) -> f64 {
        let u = self.walk.next(r);
        self.lo + (self.hi - self.lo) * u.powf(self.k)
    }
}

/// Draws an integer uniformly around `mean` with the given relative
/// half-spread, clamped to `[lo, hi]`.
pub fn jitter(r: &mut StdRng, mean: f64, rel_spread: f64, lo: u64, hi: u64) -> u64 {
    let spread = (mean * rel_spread).max(0.5);
    let v = r.gen_range((mean - spread)..(mean + spread));
    (v.round().max(lo as f64) as u64).min(hi)
}

/// Splits `n` into per-video/job counts for quick test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSize {
    /// Paper-scale workloads (Table 3).
    Full,
    /// ~10× smaller, for unit/integration tests.
    Quick,
}

impl WorkloadSize {
    /// Scales a job count.
    pub fn jobs(self, full: usize) -> usize {
        match self {
            WorkloadSize::Full => full,
            WorkloadSize::Quick => (full / 10).max(3),
        }
    }

    /// Scales a per-job token count.
    pub fn tokens(self, full: usize) -> usize {
        match self {
            WorkloadSize::Full => full,
            WorkloadSize::Quick => (full / 8).max(8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_in_bounds() {
        let mut r = rng(1);
        let mut w = JumpyWalk::new(&mut r, 10.0, 20.0, 0.05, 0.02);
        for _ in 0..1000 {
            let v = w.next(&mut r);
            assert!((10.0..=20.0).contains(&v));
        }
        assert_eq!(w.value(), w.value());
    }

    #[test]
    fn walk_is_autocorrelated_but_jumps() {
        let mut r = rng(2);
        let mut w = JumpyWalk::new(&mut r, 0.0, 100.0, 0.02, 0.05);
        let mut big_moves = 0;
        let mut prev = w.value();
        for _ in 0..2000 {
            let v = w.next(&mut r);
            if (v - prev).abs() > 10.0 {
                big_moves += 1;
            }
            prev = v;
        }
        // Jumps happen, but most steps are small.
        assert!(big_moves > 20, "expected occasional jumps, saw {big_moves}");
        assert!(big_moves < 400, "too many jumps: {big_moves}");
    }

    #[test]
    fn jitter_clamps() {
        let mut r = rng(3);
        for _ in 0..100 {
            let v = jitter(&mut r, 50.0, 0.5, 40, 60);
            assert!((40..=60).contains(&v));
        }
    }

    #[test]
    fn sizes_scale() {
        assert_eq!(WorkloadSize::Full.jobs(100), 100);
        assert_eq!(WorkloadSize::Quick.jobs(100), 10);
        assert_eq!(WorkloadSize::Quick.jobs(5), 3);
        assert_eq!(WorkloadSize::Quick.tokens(400), 50);
    }

    #[test]
    fn rng_is_deterministic() {
        let a: u64 = rng(7).gen();
        let b: u64 = rng(7).gen();
        assert_eq!(a, b);
    }
}
