//! AES encryption accelerator model (benchmark `aes`, after the OpenCores
//! Rijndael core).
//!
//! One job encrypts one piece of data (a DRM-protected frame's payload, in
//! the paper's motivating scenario); one token is one 512-byte DMA burst
//! of up to 32 blocks. The job starts with a key-expansion stage, then
//! per burst: a short serial packet-header scan, a DMA load, the 11-round
//! pipelined encryption, and the write-back. Execution time is almost
//! perfectly linear in the payload size, so the predictor is essentially
//! exact (Fig. 10's near-zero error for aes).

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};

use crate::common::{self, WorkloadSize};
use crate::Workloads;
use rand::Rng;

/// Blocks (16 B) per full burst token.
pub const BLOCKS_PER_BURST: u64 = 32;
/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 500.0;

/// Builds the AES module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("aes");
    let n_blocks = b.input("n_blocks", 6);

    let fsm = b.fsm(
        "ctrl",
        &[
            "START", "KEYX_W", "FETCH", "HDR_W", "LOAD_W", "ENC_W", "STORE_W", "EMIT",
        ],
    );
    let keyx = b.wait_state(&fsm, "KEYX_W", "FETCH", "key.expand");
    b.enter_wait(
        &fsm,
        "START",
        "KEYX_W",
        keyx,
        E::k(220),
        E::stream_empty().is_zero(),
    );
    let hdr = b.wait_state(&fsm, "HDR_W", "LOAD_W", "pkt.hdr");
    b.enter_wait(
        &fsm,
        "FETCH",
        "HDR_W",
        hdr,
        E::k(2),
        E::stream_empty().is_zero(),
    );
    let load = b.wait_state(&fsm, "LOAD_W", "ENC_W", "dma.load");
    b.set(
        load,
        fsm.in_state("HDR_W") & hdr.e().eq_(E::zero()),
        E::k(128),
    );
    let enc = b.wait_state(&fsm, "ENC_W", "STORE_W", "enc.rounds");
    b.set(
        enc,
        fsm.in_state("LOAD_W") & load.e().eq_(E::zero()),
        n_blocks * E::k(11),
    );
    let store = b.wait_state(&fsm, "STORE_W", "EMIT", "dma.store");
    b.set(
        store,
        fsm.in_state("ENC_W") & enc.e().eq_(E::zero()),
        E::k(32),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (56,121 µm²).
    b.datapath_compute("key.schedule", fsm.in_state("KEYX_W"), 5_000.0, 1.0, 500, 0);
    b.datapath_serial("pkt.parser", fsm.in_state("HDR_W"), 800.0, 0.4, 250, 0);
    b.datapath_compute("dma.in", fsm.in_state("LOAD_W"), 6_000.0, 0.7, 500, 0);
    b.datapath_compute("enc.core", fsm.in_state("ENC_W"), 30_000.0, 1.2, 2_600, 0);
    b.datapath_compute("dma.out", fsm.in_state("STORE_W"), 4_000.0, 0.7, 350, 0);
    b.memory("block_buf", 4 * 1024, false);

    b.build().expect("aes module is well-formed")
}

/// Generates one job encrypting `bytes` of payload.
pub fn piece(bytes: u64) -> JobInput {
    let mut job = JobInput::new(1);
    let blocks = bytes.div_ceil(16).max(1);
    let full = blocks / BLOCKS_PER_BURST;
    for _ in 0..full {
        job.push(&[BLOCKS_PER_BURST]);
    }
    let rem = blocks % BLOCKS_PER_BURST;
    if rem > 0 {
        job.push(&[rem]);
    }
    job
}

fn pieces(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    // Streaming sessions: payload sizes cluster per content, with switches.
    let mut kb_walk = common::SkewedWalk::new(&mut r, 950.0, 7_750.0, 4.2, 0.06, 0.20);
    (0..count)
        .map(|_| {
            let exc: f64 = if r.gen_bool(0.07) {
                r.gen_range(1.4..1.9)
            } else {
                1.0
            };
            let jit: f64 = r.gen_range(0.85..1.15);
            let kb = (kb_walk.next(&mut r) * jit * exc).min(7_700.0);
            piece(size.tokens(kb as usize) as u64 * 1024)
        })
        .collect()
}

/// Table 3 workloads: 100 training pieces, 100 test pieces, various sizes.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(100);
    Workloads {
        train: pieces(seed ^ 0xAE51, n, size),
        test: pieces(seed ^ 0xAE52, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn cycles_linear_in_bytes() {
        let m = build();
        let sim = Simulator::new(&m);
        let t1 = sim
            .run(&piece(64 * 1024), ExecMode::FastForward, None)
            .unwrap();
        let t2 = sim
            .run(&piece(128 * 1024), ExecMode::FastForward, None)
            .unwrap();
        let ratio = t2.cycles as f64 / (t1.cycles as f64);
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn key_expansion_charged_once() {
        let m = build();
        let sim = Simulator::new(&m);
        let a = sim.run(&piece(512), ExecMode::FastForward, None).unwrap();
        let b2 = sim.run(&piece(1024), ExecMode::FastForward, None).unwrap();
        // One extra burst costs ~ 2+128+352+32 plus transitions; key
        // expansion (220) must not repeat.
        let delta = b2.cycles - a.cycles;
        assert!((510..=540).contains(&delta), "delta {delta}");
    }

    #[test]
    fn partial_final_burst() {
        let j = piece(512 * 10 + 16);
        assert_eq!(j.len(), 11);
        assert_eq!(j.get(10, 0), 1);
    }

    #[test]
    fn analysis_finds_five_pipeline_counters() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.counters.len(), 5);
        assert_eq!(a.waits.len(), 5);
    }
}
