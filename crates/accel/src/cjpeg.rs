//! JPEG encoder model (benchmark `cjpeg`, after the OpenCores video
//! compression systems encoder).
//!
//! One job encodes one image; one token is one 16×16 MCU. The DCT and
//! quantization stages have fixed per-MCU latency, while Huffman coding is
//! serial and scales with the number of non-zero quantized coefficients —
//! the content-dependent term. Execution time varies mostly with image
//! *size* (Table 3 uses "100 images, various sizes"), which is why
//! reactive controllers do poorly: consecutive photos are uncorrelated.

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};

use crate::common::{self, JumpyWalk, WorkloadSize};
use rand::Rng;

use crate::Workloads;

/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 250.0;

/// Builds the encoder module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("cjpeg");
    let nzc = b.input("nzc", 9);

    let fsm = b.fsm(
        "ctrl",
        &[
            "FETCH", "LOAD_W", "DCT_W", "QUANT_W", "HSCAN_W", "HUFF_W", "EMIT",
        ],
    );
    let load = b.wait_state(&fsm, "LOAD_W", "DCT_W", "dma.load");
    b.enter_wait(
        &fsm,
        "FETCH",
        "LOAD_W",
        load,
        E::k(64),
        E::stream_empty().is_zero(),
    );
    let dct = b.wait_state(&fsm, "DCT_W", "QUANT_W", "dct.cnt");
    b.set(
        dct,
        fsm.in_state("LOAD_W") & load.e().eq_(E::zero()),
        E::k(384),
    );
    let quant = b.wait_state(&fsm, "QUANT_W", "HSCAN_W", "quant.cnt");
    b.set(
        quant,
        fsm.in_state("DCT_W") & dct.e().eq_(E::zero()),
        E::k(128),
    );
    // Serial coefficient scan: the only part the slice must truly re-run.
    let hscan = b.wait_state(&fsm, "HSCAN_W", "HUFF_W", "huff.scan");
    b.set(
        hscan,
        fsm.in_state("QUANT_W") & quant.e().eq_(E::zero()),
        (nzc.clone() >> E::k(2)) + E::k(4),
    );
    let huff = b.wait_state(&fsm, "HUFF_W", "EMIT", "huff.cnt");
    b.set(
        huff,
        fsm.in_state("HSCAN_W") & hscan.e().eq_(E::zero()),
        nzc * E::k(2) + E::k(20),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (175,225 µm²).
    b.datapath_compute("dma.engine", fsm.in_state("LOAD_W"), 8_000.0, 0.7, 600, 0);
    b.datapath_compute(
        "dct.pipeline",
        fsm.in_state("DCT_W"),
        72_000.0,
        1.1,
        2_800,
        40,
    );
    b.datapath_compute(
        "quant.unit",
        fsm.in_state("QUANT_W"),
        18_000.0,
        1.0,
        900,
        16,
    );
    b.datapath_serial(
        "huff.scanner",
        fsm.in_state("HSCAN_W"),
        2_500.0,
        0.4,
        700,
        0,
    );
    b.datapath_compute(
        "huff.encoder",
        fsm.in_state("HUFF_W"),
        22_000.0,
        0.9,
        1_500,
        0,
    );
    b.memory("mcu_buf", 16 * 1024, false);
    b.memory("bitstream_out", 4 * 1024, false);

    b.build().expect("cjpeg module is well-formed")
}

/// Generates one image of `mcus` MCUs with mean coefficient density
/// `nzc_mean`.
pub fn image(r: &mut rand::rngs::StdRng, mcus: usize, nzc_mean: f64) -> JobInput {
    let mut job = JobInput::new(1);
    for _ in 0..mcus {
        job.push(&[common::jitter(r, nzc_mean, 0.45, 2, 500)]);
    }
    job
}

fn image_set(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    // Photo sessions: bursts of similar sizes with occasional switches
    // (new scene or camera setting).
    let mut mcus_walk = common::SkewedWalk::new(&mut r, 270.0, 4750.0, 1.8, 0.07, 0.26);
    let mut nzc_walk = JumpyWalk::new(&mut r, 30.0, 110.0, 0.08, 0.10);
    (0..count)
        .map(|_| {
            // Occasional single outlier photo (panorama, burst shot):
            // reactive control pays twice per excursion (Fig. 3).
            let exc: f64 = if r.gen_bool(0.07) {
                r.gen_range(1.4..1.9)
            } else {
                1.0
            };
            let jit: f64 = r.gen_range(0.85..1.15);
            let raw = (mcus_walk.next(&mut r) * jit * exc).min(4750.0);
            let mcus = size.tokens(raw as usize);
            let nzc = nzc_walk.next(&mut r);
            image(&mut r, mcus, nzc)
        })
        .collect()
}

/// Table 3 workloads: 100 training images, 100 test images, various sizes.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(100);
    Workloads {
        train: image_set(seed ^ 0xCEC1, n, size),
        test: image_set(seed ^ 0x7E57, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn analyses_find_pipeline_counters() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.fsms.len(), 1);
        assert_eq!(a.counters.len(), 5);
        assert_eq!(a.waits.len(), 5);
        assert_eq!(a.waits.iter().filter(|w| w.serial).count(), 1);
    }

    #[test]
    fn cycles_scale_with_mcu_count() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut r = common::rng(5);
        let small = image(&mut r, 50, 60.0);
        let large = image(&mut r, 500, 60.0);
        let ts = sim.run(&small, ExecMode::FastForward, None).unwrap();
        let tl = sim.run(&large, ExecMode::FastForward, None).unwrap();
        let ratio = tl.cycles as f64 / ts.cycles as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_mcu_cost_matches_stage_budget() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut job = JobInput::new(1);
        job.push(&[100]);
        let t = sim.run(&job, ExecMode::FastForward, None).unwrap();
        // load 64 + dct 384 + quant 128 + scan 29 + huff 220 + transitions.
        let expected = 64 + 384 + 128 + 29 + 220;
        assert!(
            t.cycles >= expected && t.cycles <= expected + 16,
            "{}",
            t.cycles
        );
    }

    #[test]
    fn workloads_have_varied_sizes() {
        let w = workloads(3, WorkloadSize::Full);
        let sizes: Vec<usize> = w.test.iter().map(|j| j.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > &(min * 2), "sizes {min}..{max} should vary widely");
    }
}
