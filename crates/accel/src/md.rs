//! Molecular dynamics accelerator model (benchmark `md`, after the
//! MachSuite `md/knn` kernel).
//!
//! One job simulates one timestep over 2048 particles; one token is one
//! particle. Per particle the engine (1) runs a serial neighbor-list
//! build pass over the cell bins — work even a slice must redo, so it is
//! marked serial — and (2) evaluates pairwise forces, with latency
//! proportional to the particle's neighbor count. Particle positions
//! change every step, so neighbor counts drift smoothly with occasional
//! collision-cluster spikes; jobs near the deadline are exactly the ones
//! whose slice + DVFS-switch overhead can push past it (§4.3's analysis of
//! the residual misses).

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};
use rand::Rng;

use crate::common::{self, JumpyWalk, WorkloadSize};
use crate::Workloads;

/// Particles per timestep.
pub const PARTICLES: usize = 2048;
/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 455.0;

/// Builds the MD module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("md");
    let n_nb = b.input("n_nb", 9);

    let fsm = b.fsm("ctrl", &["FETCH", "BIN_W", "FORCE_W", "UPD_W", "EMIT"]);
    let bin = b.wait_state(&fsm, "BIN_W", "FORCE_W", "nlist.scan");
    b.enter_wait(
        &fsm,
        "FETCH",
        "BIN_W",
        bin,
        E::k(136),
        E::stream_empty().is_zero(),
    );
    let force = b.wait_state(&fsm, "FORCE_W", "UPD_W", "force.cnt");
    b.set(
        force,
        fsm.in_state("BIN_W") & bin.e().eq_(E::zero()),
        n_nb * E::k(12) + E::k(24),
    );
    let upd = b.wait_state(&fsm, "UPD_W", "EMIT", "update.cnt");
    b.set(
        upd,
        fsm.in_state("FORCE_W") & force.e().eq_(E::zero()),
        E::k(16),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (31,791 µm²).
    b.datapath_serial("nlist.builder", fsm.in_state("BIN_W"), 2_500.0, 0.3, 400, 0);
    b.datapath_compute(
        "force.pipeline",
        fsm.in_state("FORCE_W"),
        14_000.0,
        1.1,
        700,
        40,
    );
    b.datapath_compute("pos.update", fsm.in_state("UPD_W"), 4_000.0, 1.0, 300, 8);
    b.memory("particle_spm", 4 * 1024, false);

    b.build().expect("md module is well-formed")
}

/// Generates one timestep with mean neighbor density `density` (0..=270).
pub fn timestep(r: &mut rand::rngs::StdRng, particles: usize, density: f64) -> JobInput {
    let mut job = JobInput::new(1);
    for _ in 0..particles {
        job.push(&[common::jitter(r, density, 0.10, 0, 300)]);
    }
    job
}

fn steps(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    // Particle positions change smoothly step to step, so neighbor
    // densities stay in a narrow band — punctuated by rare collision
    // clusters (near-deadline spikes, §4.3) and rare evaporation steps.
    let mut density = JumpyWalk::new(&mut r, 88.0, 152.0, 0.06, 0.04);
    let particles = size.tokens(PARTICLES);
    (0..count)
        .map(|_| {
            let d = if r.gen_bool(0.04) {
                r.gen_range(274.0..293.0)
            } else if r.gen_bool(0.02) {
                r.gen_range(2.0..12.0)
            } else {
                density.next(&mut r) * r.gen_range(0.92..1.08)
            };
            timestep(&mut r, particles, d)
        })
        .collect()
}

/// Table 3 workloads: 200 training steps, 200 test steps.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(200);
    Workloads {
        train: steps(seed ^ 0x3D01, n, size),
        test: steps(seed ^ 0x3D02, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn analyses_see_serial_bin_pass() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.counters.len(), 3);
        assert_eq!(a.waits.len(), 3);
        let serial: Vec<bool> = a.waits.iter().map(|w| w.serial).collect();
        assert_eq!(serial.iter().filter(|s| **s).count(), 1);
    }

    #[test]
    fn cycles_scale_with_neighbor_count() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut r = common::rng(1);
        let sparse = timestep(&mut r, 64, 5.0);
        let dense = timestep(&mut r, 64, 250.0);
        let ts = sim.run(&sparse, ExecMode::FastForward, None).unwrap();
        let td = sim.run(&dense, ExecMode::FastForward, None).unwrap();
        assert!(td.cycles > ts.cycles * 4, "{} vs {}", td.cycles, ts.cycles);
    }

    #[test]
    fn per_particle_cost_matches_budget() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut job = JobInput::new(1);
        job.push(&[100]);
        let t = sim.run(&job, ExecMode::FastForward, None).unwrap();
        let expected = 136 + 100 * 12 + 24 + 16;
        assert!(
            t.cycles >= expected && t.cycles <= expected + 12,
            "cycles {}",
            t.cycles
        );
    }

    #[test]
    fn slice_time_dominated_by_serial_pass() {
        let m = build();
        let sim = Simulator::new(&m);
        let mut r = common::rng(2);
        let job = timestep(&mut r, 128, 150.0);
        let full = sim.run(&job, ExecMode::FastForward, None).unwrap();
        let slice = sim.run(&job, ExecMode::Compressed, None).unwrap();
        // Serial bin pass (136/particle) survives compression.
        assert!(slice.cycles > 128 * 136);
        assert!(slice.cycles < full.cycles / 3);
    }
}
