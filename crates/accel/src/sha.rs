//! SHA hashing accelerator model (benchmark `sha`, after the OpenCores
//! SHA cores).
//!
//! One job hashes one piece of data; one token is one 4 KB chunk of up to
//! 64 message blocks. Per chunk: a short serial descriptor scan, a DMA
//! load, and the 68-cycle-per-block compression rounds. Like `aes`, the
//! latency is essentially linear in input size.

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};

use crate::common::{self, WorkloadSize};
use crate::Workloads;
use rand::Rng;

/// Message blocks (64 B) per full chunk token.
pub const BLOCKS_PER_CHUNK: u64 = 64;
/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 500.0;

/// Builds the SHA module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("sha");
    let n_blocks = b.input("n_blocks", 7);

    let fsm = b.fsm("ctrl", &["FETCH", "HDR_W", "LOAD_W", "HASH_W", "EMIT"]);
    let hdr = b.wait_state(&fsm, "HDR_W", "LOAD_W", "desc.scan");
    b.enter_wait(
        &fsm,
        "FETCH",
        "HDR_W",
        hdr,
        E::k(4),
        E::stream_empty().is_zero(),
    );
    let load = b.wait_state(&fsm, "LOAD_W", "HASH_W", "dma.load");
    b.set(
        load,
        fsm.in_state("HDR_W") & hdr.e().eq_(E::zero()),
        E::k(96),
    );
    let hash = b.wait_state(&fsm, "HASH_W", "EMIT", "hash.rounds");
    b.set(
        hash,
        fsm.in_state("LOAD_W") & load.e().eq_(E::zero()),
        n_blocks * E::k(68),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (19,740 µm²).
    b.datapath_serial("desc.parser", fsm.in_state("HDR_W"), 600.0, 0.4, 180, 0);
    b.datapath_compute("dma.in", fsm.in_state("LOAD_W"), 3_000.0, 0.7, 300, 0);
    b.datapath_compute("hash.core", fsm.in_state("HASH_W"), 10_000.0, 1.2, 1_400, 0);
    b.memory("msg_buf", 1024, false);

    b.build().expect("sha module is well-formed")
}

/// Generates one job hashing `bytes` of data.
pub fn piece(bytes: u64) -> JobInput {
    let mut job = JobInput::new(1);
    let blocks = bytes.div_ceil(64).max(1);
    let full = blocks / BLOCKS_PER_CHUNK;
    for _ in 0..full {
        job.push(&[BLOCKS_PER_CHUNK]);
    }
    let rem = blocks % BLOCKS_PER_CHUNK;
    if rem > 0 {
        job.push(&[rem]);
    }
    job
}

fn pieces(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    let mut kb_walk = common::SkewedWalk::new(&mut r, 480.0, 5_900.0, 2.7, 0.06, 0.20);
    (0..count)
        .map(|_| {
            let exc: f64 = if r.gen_bool(0.07) {
                r.gen_range(1.4..1.9)
            } else {
                1.0
            };
            let jit: f64 = r.gen_range(0.85..1.15);
            let kb = (kb_walk.next(&mut r) * jit * exc).min(5_900.0);
            piece(size.tokens(kb as usize) as u64 * 1024)
        })
        .collect()
}

/// Table 3 workloads: 100 training pieces, 100 test pieces, various sizes.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(100);
    Workloads {
        train: pieces(seed ^ 0x5AA1, n, size),
        test: pieces(seed ^ 0x5AA2, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn cycles_linear_in_bytes() {
        let m = build();
        let sim = Simulator::new(&m);
        let t1 = sim
            .run(&piece(256 * 1024), ExecMode::FastForward, None)
            .unwrap();
        let t2 = sim
            .run(&piece(512 * 1024), ExecMode::FastForward, None)
            .unwrap();
        let ratio = t2.cycles as f64 / t1.cycles as f64;
        assert!((1.95..2.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_chunk_cost_matches_budget() {
        let m = build();
        let sim = Simulator::new(&m);
        let t = sim.run(&piece(4096), ExecMode::FastForward, None).unwrap();
        let expected = 4 + 96 + 64 * 68;
        assert!(
            t.cycles >= expected && t.cycles <= expected + 12,
            "cycles {}",
            t.cycles
        );
    }

    #[test]
    fn analysis_finds_three_counters() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.counters.len(), 3);
        assert_eq!(a.waits.len(), 3);
        assert_eq!(a.waits.iter().filter(|w| w.serial).count(), 1);
    }

    #[test]
    fn workloads_are_table3_sized() {
        let w = workloads(0, WorkloadSize::Full);
        assert_eq!(w.train.len(), 100);
        assert_eq!(w.test.len(), 100);
    }
}
