//! # predvfs-accel
//!
//! The seven benchmark accelerators of the MICRO'15 predictive-DVFS paper
//! (Table 3), modelled in the [`predvfs_rtl`] FSMD IR, together with
//! synthetic workload generators reproducing each benchmark's
//! execution-time statistics (Table 4).
//!
//! | name    | task                        | module  |
//! |---------|-----------------------------|---------|
//! | h264    | decode one video frame      | [`h264`] |
//! | cjpeg   | encode one image            | [`cjpeg`] |
//! | djpeg   | decode one image            | [`djpeg`] |
//! | md      | simulate one MD timestep    | [`md`] |
//! | stencil | filter one image            | [`stencil`] |
//! | aes     | encrypt one piece of data   | [`aes`] |
//! | sha     | hash one piece of data      | [`sha`] |
//!
//! # Examples
//!
//! ```
//! use predvfs_accel::{by_name, WorkloadSize};
//! use predvfs_rtl::{ExecMode, Simulator};
//!
//! let bench = by_name("sha").expect("registered benchmark");
//! let module = (bench.build)();
//! let jobs = (bench.workloads)(42, WorkloadSize::Quick);
//! let sim = Simulator::new(&module);
//! let trace = sim.run(&jobs.test[0], ExecMode::FastForward, None)?;
//! assert!(trace.cycles > 0);
//! # Ok::<(), predvfs_rtl::RtlError>(())
//! ```

#![warn(missing_docs)]

use predvfs_rtl::{JobInput, Module};

pub mod aes;
pub mod cjpeg;
pub mod common;
pub mod djpeg;
pub mod h264;
pub mod md;
pub mod sha;
pub mod stencil;

pub use common::WorkloadSize;

/// Training and test job sets for one benchmark (Table 3).
#[derive(Debug, Clone)]
pub struct Workloads {
    /// Jobs used to fit the execution-time model.
    pub train: Vec<JobInput>,
    /// Held-out jobs used for every evaluation figure.
    pub test: Vec<JobInput>,
}

/// A registered benchmark accelerator.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name used throughout the paper's tables (e.g. `"h264"`).
    pub name: &'static str,
    /// What one task is (Table 3's "Task" column).
    pub task: &'static str,
    /// Nominal synthesis frequency in MHz at 1 V (Table 4).
    pub f_nominal_mhz: f64,
    /// Leakage share of total power at nominal, used to calibrate the
    /// energy model (§4.1's gate-level characterization stand-in).
    pub leak_share: f64,
    /// Builds the accelerator module.
    pub build: fn() -> Module,
    /// Generates the train/test workloads for a seed.
    pub workloads: fn(u64, WorkloadSize) -> Workloads,
}

/// All seven benchmarks, in the paper's order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "h264",
            task: "decode one frame",
            f_nominal_mhz: h264::F_NOMINAL_MHZ,
            leak_share: 0.09,
            build: h264::build,
            workloads: h264::workloads,
        },
        Benchmark {
            name: "cjpeg",
            task: "encode one image",
            f_nominal_mhz: cjpeg::F_NOMINAL_MHZ,
            leak_share: 0.09,
            build: cjpeg::build,
            workloads: cjpeg::workloads,
        },
        Benchmark {
            name: "djpeg",
            task: "decode one image",
            f_nominal_mhz: djpeg::F_NOMINAL_MHZ,
            leak_share: 0.09,
            build: djpeg::build,
            workloads: djpeg::workloads,
        },
        Benchmark {
            name: "md",
            task: "simulate one timestep",
            f_nominal_mhz: md::F_NOMINAL_MHZ,
            leak_share: 0.08,
            build: md::build,
            workloads: md::workloads,
        },
        Benchmark {
            name: "stencil",
            task: "filter one image",
            f_nominal_mhz: stencil::F_NOMINAL_MHZ,
            leak_share: 0.07,
            build: stencil::build,
            workloads: stencil::workloads,
        },
        Benchmark {
            name: "aes",
            task: "encrypt a piece of data",
            f_nominal_mhz: aes::F_NOMINAL_MHZ,
            leak_share: 0.09,
            build: aes::build,
            workloads: aes::workloads,
        },
        Benchmark {
            name: "sha",
            task: "hash a piece of data",
            f_nominal_mhz: sha::F_NOMINAL_MHZ,
            leak_share: 0.09,
            build: sha::build,
            workloads: sha::workloads,
        },
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seven_benchmarks() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["h264", "cjpeg", "djpeg", "md", "stencil", "aes", "sha"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("md").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_module_builds_and_validates() {
        for b in all() {
            let m = (b.build)();
            assert_eq!(m.name, b.name);
            assert!(m.validate().is_ok(), "{} must validate", b.name);
        }
    }
}
