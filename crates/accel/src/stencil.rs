//! Stencil image-filtering accelerator model (benchmark `stencil`, after
//! the MachSuite `stencil2d` kernel).
//!
//! One job filters one image; one token is one row. Each row is first
//! received over the DMA descriptor interface — a serial handshake
//! proportional to row width — then filtered by the deeply pipelined
//! compute array at one pixel per cycle. The compute array lives almost
//! entirely in DSP blocks on FPGAs while the control is a handful of LUTs,
//! which is why the paper's Fig. 17 shows an outsized *relative* resource
//! overhead for the stencil slice.

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{JobInput, Module};

use crate::common::{self, WorkloadSize};
use crate::Workloads;
use rand::Rng;

/// Nominal synthesis frequency (Table 4).
pub const F_NOMINAL_MHZ: f64 = 602.0;

/// Builds the stencil module.
pub fn build() -> Module {
    let mut b = ModuleBuilder::new("stencil");
    let width = b.input("width", 12);

    let fsm = b.fsm("ctrl", &["FETCH", "RECV_W", "FILT_W", "EMIT"]);
    let recv = b.wait_state(&fsm, "RECV_W", "FILT_W", "dma.recv");
    b.enter_wait(
        &fsm,
        "FETCH",
        "RECV_W",
        recv,
        (width.clone() >> E::k(4)) + E::k(8),
        E::stream_empty().is_zero(),
    );
    let filt = b.wait_state(&fsm, "FILT_W", "EMIT", "filt.cnt");
    b.set(
        filt,
        fsm.in_state("RECV_W") & recv.e().eq_(E::zero()),
        width + E::k(8),
    );
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());

    // Areas calibrated to Table 4 (10,140 µm²); compute is DSP-heavy with
    // very few LUTs, control is LUT-only.
    b.datapath_serial("dma.descriptor", fsm.in_state("RECV_W"), 900.0, 0.4, 120, 0);
    b.datapath_compute("filt.array", fsm.in_state("FILT_W"), 5_200.0, 1.2, 60, 36);
    b.memory("row_buf", 1024, false);

    b.build().expect("stencil module is well-formed")
}

/// Generates one square image job of `dim` × `dim` pixels.
pub fn image(dim: usize) -> JobInput {
    let mut job = JobInput::new(1);
    for _ in 0..dim {
        job.push(&[dim as u64]);
    }
    job
}

fn image_set(seed: u64, count: usize, size: WorkloadSize) -> Vec<JobInput> {
    let mut r = common::rng(seed);
    let mut dim_walk = common::SkewedWalk::new(&mut r, 895.0, 3000.0, 1.4, 0.06, 0.22);
    (0..count)
        .map(|_| {
            let exc: f64 = if r.gen_bool(0.06) {
                r.gen_range(1.3..1.7)
            } else {
                1.0
            };
            let jit: f64 = r.gen_range(0.90..1.10);
            image(size.tokens((dim_walk.next(&mut r) * jit * exc).min(2990.0) as usize))
        })
        .collect()
}

/// Table 3 workloads: 100 training images, 100 test images, various sizes.
pub fn workloads(seed: u64, size: WorkloadSize) -> Workloads {
    let n = size.jobs(100);
    Workloads {
        train: image_set(seed ^ 0x57E4, n, size),
        test: image_set(seed ^ 0xC112, n, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::{Analysis, ExecMode, Simulator};

    #[test]
    fn cycles_scale_quadratically_with_dimension() {
        let m = build();
        let sim = Simulator::new(&m);
        let t1 = sim.run(&image(64), ExecMode::FastForward, None).unwrap();
        let t2 = sim.run(&image(128), ExecMode::FastForward, None).unwrap();
        let ratio = t2.cycles as f64 / t1.cycles as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn serial_receive_survives_compression() {
        let m = build();
        let sim = Simulator::new(&m);
        let job = image(256);
        let slice = sim.run(&job, ExecMode::Compressed, None).unwrap();
        // recv ≈ (256/16 + 8) per row = 24·256, plus a few control cycles.
        assert!(slice.cycles as usize > 24 * 256);
        let full = sim.run(&job, ExecMode::FastForward, None).unwrap();
        assert!(slice.cycles < full.cycles / 5);
    }

    #[test]
    fn control_is_tiny_compared_to_dsp_compute() {
        let m = build();
        let a = Analysis::run(&m);
        assert_eq!(a.waits.len(), 2);
        let res = predvfs_rtl::FpgaResourceModel::default().resources(&m);
        assert!(res.dsps >= 36);
    }

    #[test]
    fn workload_dims_span_range() {
        let w = workloads(1, WorkloadSize::Full);
        let dims: Vec<usize> = w.train.iter().map(|j| j.len()).collect();
        assert!(dims.iter().max().unwrap() > &(dims.iter().min().unwrap() * 2));
    }
}
