//! Column standardization for the design matrix.
//!
//! Lasso shrinkage is scale-sensitive: raw STC/AIV features span several
//! orders of magnitude, so columns are centred and scaled to unit variance
//! before fitting. The fitted coefficients are then folded back so the
//! runtime predictor works on raw feature values — the hardware evaluates
//! one dot product with no preprocessing, exactly as in the paper.

use crate::matrix::Matrix;

/// Column means/scales learned from a training matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    scale: Vec<f64>,
    /// Columns that were (nearly) constant and therefore left untouched;
    /// the bias column always lands here.
    passthrough: Vec<bool>,
}

impl Standardizer {
    /// Learns per-column statistics from `x`.
    pub fn fit(x: &Matrix) -> Standardizer {
        let n = x.rows().max(1) as f64;
        let cols = x.cols();
        let mut mean = vec![0.0; cols];
        for r in 0..x.rows() {
            for (m, v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; cols];
        for r in 0..x.rows() {
            for c in 0..cols {
                let d = x.get(r, c) - mean[c];
                var[c] += d * d;
            }
        }
        let mut scale = vec![1.0; cols];
        let mut passthrough = vec![false; cols];
        for c in 0..cols {
            let sd = (var[c] / n).sqrt();
            if sd < 1e-12 {
                passthrough[c] = true;
                mean[c] = 0.0;
                scale[c] = 1.0;
            } else {
                scale[c] = sd;
            }
        }
        Standardizer {
            mean,
            scale,
            passthrough,
        }
    }

    /// Number of columns this standardizer was fitted on.
    pub fn cols(&self) -> usize {
        self.mean.len()
    }

    /// True when the column was constant in training and is passed through.
    pub fn is_passthrough(&self, col: usize) -> bool {
        self.passthrough[col]
    }

    /// The learned mean of a column (0 for passthrough columns).
    ///
    /// Together with [`Standardizer::scale`] this is the forward map
    /// `fold_back` inverts: raw-space coefficients warm-starting a fit in
    /// standardized space are mapped as `βs_c = β_c·σ_c`, with
    /// `Σ β_c·μ_c` added onto the bias coefficient.
    pub fn mean(&self, col: usize) -> f64 {
        self.mean[col]
    }

    /// The learned scale of a column (1 for passthrough columns).
    pub fn scale(&self, col: usize) -> f64 {
        self.scale[col]
    }

    /// Returns a standardized copy of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.cols(), "column count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.scale) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Folds standardized-space coefficients back to raw feature space.
    ///
    /// Given `ŷ = Σ βs_c · (x_c − μ_c)/σ_c`, returns raw coefficients
    /// `β_c = βs_c/σ_c` and shifts the constant `−Σ βs_c μ_c/σ_c` into the
    /// coefficient of `bias_col` (the constant-1 column).
    ///
    /// # Panics
    ///
    /// Panics if `bias_col` is out of range or not a passthrough column.
    pub fn fold_back(&self, beta_std: &[f64], bias_col: usize) -> Vec<f64> {
        assert_eq!(beta_std.len(), self.cols());
        assert!(
            self.passthrough[bias_col],
            "bias column must be constant in training data"
        );
        let mut raw = vec![0.0; beta_std.len()];
        let mut shift = 0.0;
        for c in 0..beta_std.len() {
            raw[c] = beta_std[c] / self.scale[c];
            shift += beta_std[c] * self.mean[c] / self.scale[c];
        }
        raw[bias_col] -= shift;
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn sample() -> Matrix {
        // bias, feature, constant-zero
        Matrix::from_rows(
            4,
            3,
            vec![
                1.0, 10.0, 0.0, //
                1.0, 20.0, 0.0, //
                1.0, 30.0, 0.0, //
                1.0, 40.0, 0.0,
            ],
        )
    }

    #[test]
    fn constant_columns_pass_through() {
        let s = Standardizer::fit(&sample());
        assert!(s.is_passthrough(0));
        assert!(!s.is_passthrough(1));
        assert!(s.is_passthrough(2));
    }

    #[test]
    fn transform_zero_mean_unit_var() {
        let x = sample();
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        let mean: f64 = (0..4).map(|r| t.get(r, 1)).sum::<f64>() / 4.0;
        let var: f64 = (0..4).map(|r| t.get(r, 1).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
        // passthrough column unchanged
        assert_eq!(t.get(2, 0), 1.0);
    }

    #[test]
    fn fold_back_reproduces_predictions() {
        let x = sample();
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        let beta_std = vec![3.0, 2.0, 0.0];
        let raw = s.fold_back(&beta_std, 0);
        for r in 0..x.rows() {
            let p_std = dot(t.row(r), &beta_std);
            let p_raw = dot(x.row(r), &raw);
            assert!((p_std - p_raw).abs() < 1e-9, "row {r}: {p_std} vs {p_raw}");
        }
    }

    #[test]
    #[should_panic(expected = "bias column must be constant")]
    fn fold_back_rejects_varying_bias() {
        let x = sample();
        let s = Standardizer::fit(&x);
        s.fold_back(&[0.0, 0.0, 0.0], 1);
    }
}
