//! Small statistics helpers shared by the evaluation harness: quantiles,
//! means, and the five-number summaries behind the paper's box-and-whisker
//! plots (Fig. 10/18).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolated quantile of unsorted data, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile data"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary a box-and-whisker plot renders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum (lower whisker end).
    pub min: f64,
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Maximum (upper whisker end).
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> BoxStats {
        BoxStats {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn box_stats_ordered() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let b = BoxStats::of(&xs);
        assert_eq!(b.min, 0.0);
        assert_eq!(b.q1, 25.0);
        assert_eq!(b.median, 50.0);
        assert_eq!(b.q3, 75.0);
        assert_eq!(b.max, 100.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty data")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
