//! FISTA solver for the paper's asymmetric-Lasso objective (§3.4):
//!
//! ```text
//! minimize over β:   ‖pos(Xβ − y)‖² + α·‖neg(Xβ − y)‖² + γ·‖β‖₁
//! ```
//!
//! with `pos(x) = max(x, 0)`, `neg(x) = max(−x, 0)`, `α > 1` weighting
//! *under*-predictions (which cause deadline misses) more heavily than
//! over-predictions, and the L1 term driving feature selection.
//!
//! The smooth part is convex with an `L = 2·max(1, α)·λmax(XᵀX)`-Lipschitz
//! gradient, so proximal gradient descent with Nesterov acceleration
//! (FISTA) converges at `O(1/k²)`; the proximal operator of the L1 term is
//! soft thresholding. The bias column is conventionally exempt from the
//! penalty.

use crate::matrix::Matrix;

/// The asymmetric-Lasso training problem.
#[derive(Debug, Clone)]
pub struct AsymLasso<'a> {
    /// Design matrix (rows = jobs, cols = features, standardized).
    pub x: &'a Matrix,
    /// Target vector (execution cycles).
    pub y: &'a [f64],
    /// Under-prediction penalty weight (`α ≥ 1`; the paper uses `α > 1`).
    pub alpha: f64,
    /// L1 penalty weight (`γ ≥ 0`).
    pub gamma: f64,
    /// Per-column L1 exemption (true = not penalized, e.g. the bias).
    pub unpenalized: Vec<bool>,
}

/// Iteration controls.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Maximum FISTA iterations.
    pub max_iter: usize,
    /// Relative objective-change tolerance for convergence.
    pub tol: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            max_iter: 4000,
            tol: 1e-9,
        }
    }
}

/// A fitted model in the (standardized) design space.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Coefficients.
    pub beta: Vec<f64>,
    /// Final objective value.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Momentum restarts triggered by objective increases.
    pub restarts: usize,
    /// Whether the tolerance was met before `max_iter`.
    pub converged: bool,
}

impl FitResult {
    /// Indices of coefficients with magnitude above `threshold`.
    pub fn support(&self, threshold: f64) -> Vec<usize> {
        self.beta
            .iter()
            .enumerate()
            .filter(|(_, b)| b.abs() > threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

impl AsymLasso<'_> {
    /// Evaluates the full objective at `beta`.
    pub fn objective(&self, beta: &[f64]) -> f64 {
        let mut r = vec![0.0; self.x.rows()];
        self.x.matvec(beta, &mut r);
        let mut smooth = 0.0;
        for (ri, yi) in r.iter().zip(self.y) {
            let e = ri - yi;
            if e > 0.0 {
                smooth += e * e;
            } else {
                smooth += self.alpha * e * e;
            }
        }
        let l1: f64 = beta
            .iter()
            .zip(&self.unpenalized)
            .filter(|(_, u)| !**u)
            .map(|(b, _)| b.abs())
            .sum();
        smooth + self.gamma * l1
    }

    /// Gradient of the smooth part at `beta`, written into `grad`.
    fn smooth_grad(&self, beta: &[f64], resid: &mut [f64], grad: &mut [f64]) {
        self.x.matvec(beta, resid);
        for (ri, yi) in resid.iter_mut().zip(self.y) {
            let e = *ri - yi;
            *ri = if e > 0.0 {
                2.0 * e
            } else {
                2.0 * self.alpha * e
            };
        }
        self.x.matvec_t(resid, grad);
    }

    /// Solves the problem with FISTA from a cold (all-zero) start.
    ///
    /// # Panics
    ///
    /// Panics if `y` length mismatches `x`, `alpha < 1`, or `gamma < 0`.
    pub fn fit(&self, options: FitOptions) -> FitResult {
        self.fit_from(&vec![0.0; self.x.cols()], options)
    }

    /// Solves the problem with FISTA, warm-started at `beta0`.
    ///
    /// A warm start near the optimum (e.g. the previous fit of a slowly
    /// drifting problem) converges in a handful of iterations instead of
    /// thousands; starting from all zeros is exactly [`AsymLasso::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `beta0` or `y` length mismatches `x`, `alpha < 1`, or
    /// `gamma < 0`.
    pub fn fit_from(&self, beta0: &[f64], options: FitOptions) -> FitResult {
        let _span = predvfs_obs::span("opt.fista_fit");
        assert_eq!(self.y.len(), self.x.rows(), "target length mismatch");
        assert_eq!(self.unpenalized.len(), self.x.cols());
        assert_eq!(beta0.len(), self.x.cols(), "warm-start width mismatch");
        assert!(self.alpha >= 1.0, "alpha must be >= 1");
        assert!(self.gamma >= 0.0, "gamma must be >= 0");
        let p = self.x.cols();
        let lipschitz = (2.0 * self.alpha.max(1.0) * self.x.gram_spectral_norm(60)).max(1e-12);
        let step = 1.0 / lipschitz;

        let mut beta = beta0.to_vec();
        let mut beta_prev = vec![0.0; p];
        let mut theta = beta0.to_vec();
        let mut grad = vec![0.0; p];
        let mut resid = vec![0.0; self.x.rows()];
        let mut t = 1.0f64;
        let mut prev_obj = self.objective(&beta);
        let mut iterations = 0;
        let mut restarts = 0;
        let mut converged = false;

        for it in 0..options.max_iter {
            // Per-iteration span: one relaxed load when profiling is off;
            // when on, it prices the gradient + prox + momentum body.
            let _iter_span = predvfs_obs::span("opt.fista_fit.iteration");
            iterations = it + 1;
            self.smooth_grad(&theta, &mut resid, &mut grad);
            beta_prev.copy_from_slice(&beta);
            for j in 0..p {
                let z = theta[j] - step * grad[j];
                beta[j] = if self.unpenalized[j] {
                    z
                } else {
                    soft_threshold(z, self.gamma * step)
                };
            }
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let momentum = (t - 1.0) / t_next;
            for j in 0..p {
                theta[j] = beta[j] + momentum * (beta[j] - beta_prev[j]);
            }
            t = t_next;

            if it % 10 == 9 {
                let obj = self.objective(&beta);
                match convergence_check(prev_obj, obj, options.tol) {
                    // FISTA is not monotone; restart momentum on an
                    // increase and keep iterating — an overshoot within
                    // tolerance is not convergence.
                    CheckOutcome::Restart => {
                        theta.copy_from_slice(&beta);
                        t = 1.0;
                        restarts += 1;
                    }
                    CheckOutcome::Converged => {
                        converged = true;
                        break;
                    }
                    CheckOutcome::Continue => {}
                }
                prev_obj = obj;
            }
        }
        FitResult {
            // Evaluate at the returned coefficients: the periodic sample
            // lags beta by up to 9 iterations when max_iter exits.
            objective: self.objective(&beta),
            beta,
            iterations,
            restarts,
            converged,
        }
    }
}

/// Outcome of the solver's periodic objective check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Objective increased: restart momentum and keep iterating.
    Restart,
    /// Relative change fell below tolerance: stop.
    Converged,
    /// Keep iterating.
    Continue,
}

/// Classifies one periodic objective sample against the previous one.
///
/// An increase is always [`CheckOutcome::Restart`], never
/// [`CheckOutcome::Converged`], even when its magnitude is within
/// tolerance: the increase means the momentum sequence overshot, and the
/// restarted iterations that follow can still make progress.
pub fn convergence_check(prev_obj: f64, obj: f64, tol: f64) -> CheckOutcome {
    if obj > prev_obj {
        return CheckOutcome::Restart;
    }
    let denom = prev_obj.abs().max(1e-12);
    if (prev_obj - obj).abs() / denom < tol {
        CheckOutcome::Converged
    } else {
        CheckOutcome::Continue
    }
}

/// The scalar soft-thresholding operator `prox_{t|·|}`.
#[inline]
pub fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn design(n: usize) -> (Matrix, Vec<f64>) {
        // y = 5 + 3*x1 + 0*x2, x1 = i, x2 = alternating noise feature.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let x1 = i as f64;
            let x2 = if i % 2 == 0 { 1.0 } else { -1.0 };
            rows.push(vec![1.0, x1, x2]);
            y.push(5.0 + 3.0 * x1);
        }
        let m = Matrix::from_row_iter(3, rows.iter().map(|r| r.as_slice()));
        (m, y)
    }

    fn unpenalized_bias(p: usize) -> Vec<bool> {
        let mut u = vec![false; p];
        u[0] = true;
        u
    }

    #[test]
    fn recovers_exact_linear_relation() {
        let (x, y) = design(50);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 1.0,
            gamma: 0.0,
            unpenalized: unpenalized_bias(3),
        };
        let fit = prob.fit(FitOptions::default());
        assert!((fit.beta[0] - 5.0).abs() < 1e-3, "bias {}", fit.beta[0]);
        assert!((fit.beta[1] - 3.0).abs() < 1e-4, "slope {}", fit.beta[1]);
        assert!(fit.beta[2].abs() < 1e-3);
    }

    #[test]
    fn lasso_zeroes_irrelevant_feature() {
        let (x, y) = design(50);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 1.0,
            gamma: 50.0,
            unpenalized: unpenalized_bias(3),
        };
        let fit = prob.fit(FitOptions::default());
        assert_eq!(fit.beta[2], 0.0, "noise feature must be selected out");
        assert!(fit.beta[1] > 2.5);
        assert_eq!(fit.support(1e-9), vec![0, 1]);
    }

    #[test]
    fn asymmetry_biases_towards_over_prediction() {
        // Two identical rows with conflicting targets: symmetric loss picks
        // the mean; heavy under-prediction penalty pulls toward the max.
        let x = Matrix::from_rows(2, 1, vec![1.0, 1.0]);
        let y = vec![0.0, 10.0];
        let sym = AsymLasso {
            x: &x,
            y: &y,
            alpha: 1.0,
            gamma: 0.0,
            unpenalized: vec![true],
        };
        let asym = AsymLasso {
            x: &x,
            y: &y,
            alpha: 25.0,
            gamma: 0.0,
            unpenalized: vec![true],
        };
        let b_sym = sym.fit(FitOptions::default()).beta[0];
        let b_asym = asym.fit(FitOptions::default()).beta[0];
        assert!((b_sym - 5.0).abs() < 1e-3, "symmetric mean, got {b_sym}");
        // Optimum of e² + α(10−e)² is 10α/(1+α) ≈ 9.615 for α=25.
        assert!(b_asym > 9.0, "asymmetric fit {b_asym} must approach max");
    }

    #[test]
    fn objective_decreases() {
        let (x, y) = design(30);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 4.0,
            gamma: 1.0,
            unpenalized: unpenalized_bias(3),
        };
        let start = prob.objective(&[0.0, 0.0, 0.0]);
        let fit = prob.fit(FitOptions::default());
        assert!(fit.objective < start);
        // Restarts only happen at the periodic check (every 10 iters).
        assert!(fit.restarts <= fit.iterations / 10 + 1);
        assert!(
            fit.converged,
            "did not converge in {} iters",
            fit.iterations
        );
    }

    #[test]
    fn fitted_model_predicts_training_rows() {
        let (x, y) = design(40);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 2.0,
            gamma: 0.001,
            unpenalized: unpenalized_bias(3),
        };
        let fit = prob.fit(FitOptions::default());
        for (r, yr) in y.iter().enumerate() {
            let p = dot(x.row(r), &fit.beta);
            assert!((p - yr).abs() < 0.2, "row {r}: {p} vs {yr}");
        }
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
        assert_eq!(soft_threshold(-1.0, 2.0), 0.0);
    }

    #[test]
    fn restart_is_never_converged() {
        // Regression: an objective *increase* within tolerance used to
        // pass the convergence test on the same iteration that triggered
        // a momentum restart, declaring a divergent step "converged".
        assert_eq!(
            convergence_check(1.0, 1.0 + 1e-12, 1e-9),
            CheckOutcome::Restart
        );
        assert_eq!(convergence_check(1.0, 2.0, 1e-9), CheckOutcome::Restart);
        // Decreases classify by relative change as before.
        assert_eq!(
            convergence_check(1.0, 1.0 - 1e-12, 1e-9),
            CheckOutcome::Converged
        );
        assert_eq!(convergence_check(1.0, 0.5, 1e-9), CheckOutcome::Continue);
        // Zero-objective fixed point is converged, not a restart.
        assert_eq!(convergence_check(0.0, 0.0, 1e-9), CheckOutcome::Converged);
    }

    #[test]
    fn reported_objective_matches_returned_beta() {
        // Regression: at max_iter exit, `objective` was the periodic
        // sample, lagging `beta` by up to 9 iterations. Use an iteration
        // cap that is not a multiple of the sampling period so the lag
        // would show.
        let (x, y) = design(40);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 4.0,
            gamma: 1.0,
            unpenalized: unpenalized_bias(3),
        };
        let fit = prob.fit(FitOptions {
            max_iter: 23,
            tol: 0.0,
        });
        assert!(!fit.converged);
        assert_eq!(fit.iterations, 23);
        assert_eq!(
            fit.objective,
            prob.objective(&fit.beta),
            "reported objective must be evaluated at the returned beta"
        );
    }

    #[test]
    fn warm_start_from_zero_matches_cold_start() {
        let (x, y) = design(40);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 4.0,
            gamma: 1.0,
            unpenalized: unpenalized_bias(3),
        };
        let cold = prob.fit(FitOptions::default());
        let explicit = prob.fit_from(&[0.0, 0.0, 0.0], FitOptions::default());
        assert_eq!(cold.beta, explicit.beta, "zero warm start is the cold path");
        assert_eq!(cold.iterations, explicit.iterations);
    }

    #[test]
    fn warm_start_at_optimum_converges_immediately() {
        let (x, y) = design(50);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 2.0,
            gamma: 0.5,
            unpenalized: unpenalized_bias(3),
        };
        let cold = prob.fit(FitOptions::default());
        assert!(cold.converged);
        let warm = prob.fit_from(&cold.beta, FitOptions::default());
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations / 2,
            "restart at the optimum took {} of the cold start's {} iterations",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.objective <= cold.objective * (1.0 + 1e-9));
    }

    #[test]
    #[should_panic(expected = "warm-start width mismatch")]
    fn warm_start_rejects_wrong_width() {
        let (x, y) = design(10);
        let prob = AsymLasso {
            x: &x,
            y: &y,
            alpha: 1.0,
            gamma: 0.0,
            unpenalized: unpenalized_bias(3),
        };
        prob.fit_from(&[0.0; 2], FitOptions::default());
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn rejects_bad_alpha() {
        let x = Matrix::zeros(1, 1);
        let y = vec![0.0];
        AsymLasso {
            x: &x,
            y: &y,
            alpha: 0.5,
            gamma: 0.0,
            unpenalized: vec![false],
        }
        .fit(FitOptions::default());
    }
}
