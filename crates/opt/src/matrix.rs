//! Minimal dense linear algebra for the model-fitting pipeline.
//!
//! The training problems in this reproduction are small (hundreds of jobs
//! by a few hundred features), so a straightforward row-major matrix with
//! cache-friendly mat-vec products is all that is needed — pulling in a
//! full linear-algebra crate would be out of proportion.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_row_iter<'a, I>(cols: usize, rows: I) -> Matrix
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut data = Vec::new();
        let mut n = 0;
        for r in rows {
            assert_eq!(r.len(), cols, "row length mismatch");
            data.extend_from_slice(r);
            n += 1;
        }
        Matrix {
            rows: n,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `out = self * v`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(r), v);
        }
    }

    /// `out = selfᵀ * v`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_t(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (r, &s) in v.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += s * x;
            }
        }
    }

    /// Largest eigenvalue of `selfᵀ * self`, estimated by power iteration.
    /// Returns 0 for an all-zero matrix.
    pub fn gram_spectral_norm(&self, iterations: usize) -> f64 {
        if self.cols == 0 || self.rows == 0 {
            return 0.0;
        }
        let mut v = vec![1.0 / (self.cols as f64).sqrt(); self.cols];
        let mut xv = vec![0.0; self.rows];
        let mut xtxv = vec![0.0; self.cols];
        let mut lambda = 0.0;
        for _ in 0..iterations {
            self.matvec(&v, &mut xv);
            self.matvec_t(&xv, &mut xtxv);
            let norm = norm2(&xtxv);
            if norm == 0.0 {
                return 0.0;
            }
            lambda = norm;
            for (vi, xi) in v.iter_mut().zip(&xtxv) {
                *vi = xi / norm;
            }
        }
        lambda
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose_agree_with_hand_calc() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut out);
        assert_eq!(out, vec![-2.0, -2.0]);
        let mut tout = vec![0.0; 3];
        m.matvec_t(&[1.0, 1.0], &mut tout);
        assert_eq!(tout, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn spectral_norm_of_identityish() {
        let m = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 1.0]);
        let l = m.gram_spectral_norm(50);
        assert!((l - 4.0).abs() < 1e-6, "got {l}");
    }

    #[test]
    fn spectral_norm_of_zero_matrix() {
        let m = Matrix::zeros(3, 2);
        assert_eq!(m.gram_spectral_norm(10), 0.0);
    }

    #[test]
    fn from_row_iter_builds() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = Matrix::from_row_iter(2, rows.iter().map(|r| r.as_slice()));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matrix data length mismatch")]
    fn from_rows_validates_length() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}
