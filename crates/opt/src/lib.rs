//! # predvfs-opt
//!
//! Dense linear algebra, the FISTA solver for the paper's asymmetric-Lasso
//! execution-time model (§3.4), column standardization, and the summary
//! statistics used by the evaluation harness.
//!
//! The training objective is
//! `‖pos(Xβ−y)‖² + α‖neg(Xβ−y)‖² + γ‖β‖₁`: a convex program whose L1 term
//! performs feature selection (Lasso) and whose asymmetric quadratic term
//! makes the model conservative — under-predicting execution time causes
//! deadline misses, so it is penalized `α`× harder.
//!
//! # Examples
//!
//! ```
//! use predvfs_opt::{AsymLasso, FitOptions, Matrix};
//!
//! // y = 2*x with a constant-1 bias column.
//! let x = Matrix::from_rows(3, 2, vec![1.0, 1.0, 1.0, 2.0, 1.0, 3.0]);
//! let y = vec![2.0, 4.0, 6.0];
//! let fit = AsymLasso {
//!     x: &x,
//!     y: &y,
//!     alpha: 2.0,
//!     gamma: 0.0,
//!     unpenalized: vec![true, false],
//! }
//! .fit(FitOptions::default());
//! assert!((fit.beta[1] - 2.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod matrix;
pub mod solver;
pub mod standardize;
pub mod stats;

pub use matrix::{dot, norm2, Matrix};
pub use solver::{
    convergence_check, soft_threshold, AsymLasso, CheckOutcome, FitOptions, FitResult,
};
pub use standardize::Standardizer;
pub use stats::{mean, quantile, BoxStats};
