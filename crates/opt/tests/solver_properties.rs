//! Property-based tests for the optimization crate: the proximal operator,
//! solver convergence, and standardization round-trips on random problems.

use proptest::prelude::*;

use predvfs_opt::{dot, soft_threshold, AsymLasso, FitOptions, Matrix, Standardizer};

fn random_problem() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..30, 2usize..8).prop_flat_map(|(rows, cols)| {
        (
            prop::collection::vec(-10.0f64..10.0, rows * cols),
            prop::collection::vec(-100.0f64..100.0, rows),
        )
            .prop_map(move |(mut data, y)| {
                // Force a bias column so `unpenalized` has a target.
                for r in 0..rows {
                    data[r * cols] = 1.0;
                }
                (Matrix::from_rows(rows, cols, data), y)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn soft_threshold_is_a_shrinkage(z in -1e6f64..1e6, t in 0.0f64..1e5) {
        let s = soft_threshold(z, t);
        prop_assert!(s.abs() <= z.abs() + 1e-12, "no expansion");
        prop_assert!(s * z >= 0.0, "sign preserved or zero");
        prop_assert!((z.abs() - s.abs() - t.min(z.abs())).abs() < 1e-9);
    }

    #[test]
    fn soft_threshold_identity_at_zero(z in -1e6f64..1e6) {
        prop_assert_eq!(soft_threshold(z, 0.0), z);
    }

    #[test]
    fn fit_never_exceeds_zero_objective(
        (x, y) in random_problem(),
        alpha in 1.0f64..16.0,
        gamma in 0.0f64..5.0,
    ) {
        let mut unpenalized = vec![false; x.cols()];
        unpenalized[0] = true;
        let prob = AsymLasso { x: &x, y: &y, alpha, gamma, unpenalized };
        let at_zero = prob.objective(&vec![0.0; x.cols()]);
        let fit = prob.fit(FitOptions { max_iter: 800, tol: 1e-9 });
        let at_fit = prob.objective(&fit.beta);
        prop_assert!(
            at_fit <= at_zero * (1.0 + 1e-9) + 1e-9,
            "objective {at_fit} should not exceed start {at_zero}"
        );
    }

    #[test]
    fn larger_gamma_never_grows_the_penalized_l1(
        (x, y) in random_problem(),
    ) {
        let mut unpenalized = vec![false; x.cols()];
        unpenalized[0] = true;
        let l1_of = |gamma: f64| {
            let prob = AsymLasso {
                x: &x,
                y: &y,
                alpha: 2.0,
                gamma,
                unpenalized: unpenalized.clone(),
            };
            let fit = prob.fit(FitOptions { max_iter: 1500, tol: 1e-11 });
            fit.beta[1..].iter().map(|b| b.abs()).sum::<f64>()
        };
        let small = l1_of(0.01);
        let large = l1_of(10.0);
        prop_assert!(
            large <= small + 1e-3 + small * 0.05,
            "l1 at gamma=10 ({large}) should not exceed l1 at gamma=0.01 ({small})"
        );
    }

    #[test]
    fn standardize_fold_back_roundtrip(
        (x, _) in random_problem(),
        beta in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let std = Standardizer::fit(&x);
        let xs = std.transform(&x);
        let beta_std: Vec<f64> = (0..x.cols()).map(|i| beta[i % beta.len()]).collect();
        let raw = std.fold_back(&beta_std, 0);
        for r in 0..x.rows() {
            let p_std = dot(xs.row(r), &beta_std);
            let p_raw = dot(x.row(r), &raw);
            prop_assert!((p_std - p_raw).abs() < 1e-6 * (1.0 + p_std.abs()));
        }
    }
}
