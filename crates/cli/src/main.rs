//! `predvfs` — command-line front end for the predictive-DVFS framework.
//!
//! ```text
//! predvfs export <benchmark> [out.rtl]      write a built-in design as RTL text
//! predvfs analyze <design.rtl>              FSMs, counters, waits, features, area, WCET
//! predvfs simulate <design.rtl> <jobs.txt>  cycle counts per job
//! predvfs train <design.rtl> <jobs.txt>     fit the execution-time model
//! predvfs slice <design.rtl> <jobs.txt> [out.rtl]
//!                                           train, slice, and write the predictor hardware
//! predvfs wcet <design.rtl>                 static worst-case bound
//! ```
//!
//! The jobs file holds one token per line (comma-separated field values in
//! declaration order); a line containing only `---` ends a job. Lines
//! starting with `#` are comments.

use std::fs;
use std::process::ExitCode;

use predvfs::{train, SliceFlavor, SlicePredictor, TrainerConfig};
use predvfs_rtl::{
    from_text, to_text, wcet, Analysis, AsicAreaModel, ExecMode, FeatureSchema,
    FpgaResourceModel, JobInput, Module, SliceOptions, Simulator,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "export" => export(args.get(1), args.get(2)),
        "analyze" => analyze(required(args, 1, "design file")?),
        "simulate" => simulate(required(args, 1, "design file")?, required(args, 2, "jobs file")?),
        "train" => cmd_train(required(args, 1, "design file")?, required(args, 2, "jobs file")?),
        "slice" => cmd_slice(
            required(args, 1, "design file")?,
            required(args, 2, "jobs file")?,
            args.get(3),
        ),
        "wcet" => cmd_wcet(required(args, 1, "design file")?),
        "dot" => cmd_dot(required(args, 1, "design file")?),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `predvfs help`").into()),
    }
}

const HELP: &str = "\
predvfs — execution-time prediction for energy-efficient accelerators

USAGE:
  predvfs export <benchmark> [out.rtl]
  predvfs analyze <design.rtl>
  predvfs simulate <design.rtl> <jobs.txt>
  predvfs train <design.rtl> <jobs.txt>
  predvfs slice <design.rtl> <jobs.txt> [out.rtl]
  predvfs wcet <design.rtl>
  predvfs dot <design.rtl>        (pipe into `dot -Tsvg`)

Built-in benchmarks: h264 cjpeg djpeg md stencil aes sha
";

fn required<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}; try `predvfs help`"))
}

fn load(path: &str) -> Result<Module, Box<dyn std::error::Error>> {
    let src = fs::read_to_string(path)?;
    Ok(from_text(&src)?)
}

/// Parses the jobs file format (see module docs).
fn load_jobs(path: &str, fields: usize) -> Result<Vec<JobInput>, Box<dyn std::error::Error>> {
    let src = fs::read_to_string(path)?;
    let mut jobs = Vec::new();
    let mut cur = JobInput::new(fields);
    for (ln, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "---" {
            jobs.push(std::mem::replace(&mut cur, JobInput::new(fields)));
            continue;
        }
        let token: Result<Vec<u64>, _> =
            line.split(',').map(|v| v.trim().parse::<u64>()).collect();
        let token = token.map_err(|e| format!("jobs line {}: {e}", ln + 1))?;
        if token.len() != fields {
            return Err(format!(
                "jobs line {}: expected {fields} fields, found {}",
                ln + 1,
                token.len()
            )
            .into());
        }
        cur.push(&token);
    }
    if !cur.is_empty() {
        jobs.push(cur);
    }
    if jobs.is_empty() {
        return Err("jobs file contains no jobs".into());
    }
    Ok(jobs)
}

fn export(
    bench: Option<&String>,
    out: Option<&String>,
) -> Result<(), Box<dyn std::error::Error>> {
    let name = bench.ok_or("missing benchmark name")?;
    let b = predvfs_accel::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `predvfs help`)"))?;
    let text = to_text(&(b.build)());
    match out {
        Some(path) => {
            fs::write(path, &text)?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn analyze(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let analysis = Analysis::run(&module);
    println!("module `{}`:", module.name);
    println!(
        "  {} registers, {} datapath blocks, {} memories, {} input fields",
        module.regs.len(),
        module.datapaths.len(),
        module.memories.len(),
        module.inputs.len()
    );
    for f in &analysis.fsms {
        println!(
            "  fsm {} — {} states, {} transitions",
            module.reg_name(f.reg),
            f.states.len(),
            f.transition_pairs().len()
        );
    }
    println!("  counters:");
    for c in &analysis.counters {
        let dir = match (c.counts_down(), c.counts_up()) {
            (true, false) => "down",
            (false, true) => "up",
            _ => "mixed",
        };
        println!("    {} ({dir})", module.reg_name(c.reg));
    }
    let serial = analysis.waits.iter().filter(|w| w.serial).count();
    println!(
        "  wait states: {} ({} serial)",
        analysis.waits.len(),
        serial
    );
    let schema = FeatureSchema::from_analysis(&module, &analysis);
    println!("  feature schema: {} columns", schema.len());
    let area = AsicAreaModel::default().area(&module);
    println!(
        "  asic area: {:.0} um2 (control {:.0}, datapath {:.0}, memory {:.0})",
        area.total_um2(),
        area.control_um2,
        area.datapath_um2,
        area.memory_um2
    );
    let res = FpgaResourceModel::default().resources(&module);
    println!(
        "  fpga: {} LUTs, {} DSPs, {} BRAMs",
        res.luts, res.dsps, res.brams
    );
    if let Ok(bound) = wcet(&module) {
        println!(
            "  wcet: {} cycles/token + {} startup",
            bound.cycles_per_token, bound.startup_cycles
        );
    }
    Ok(())
}

fn simulate(path: &str, jobs_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let sim = Simulator::new(&module);
    println!("{:>5} {:>10} {:>12} {:>10}", "job", "tokens", "cycles", "stepped");
    for (i, job) in jobs.iter().enumerate() {
        let t = sim.run(job, ExecMode::FastForward, None)?;
        println!(
            "{i:>5} {:>10} {:>12} {:>10}",
            t.tokens_consumed, t.cycles, t.stepped_cycles
        );
    }
    Ok(())
}

fn cmd_train(path: &str, jobs_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let model = train::train(&module, &jobs, &TrainerConfig::default())?;
    println!(
        "fitted {} of {} features:",
        model.selected().len(),
        model.schema().len()
    );
    for (name, coeff) in model.support_summary() {
        println!("  {name:<32} {coeff:>14.4}");
    }
    Ok(())
}

fn cmd_slice(
    path: &str,
    jobs_path: &str,
    out: Option<&String>,
) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let model = train::train(&module, &jobs, &TrainerConfig::default())?;
    let predictor =
        SlicePredictor::generate(&module, &model, SliceOptions::default(), SliceFlavor::Rtl)?;
    let report = predictor.report();
    println!(
        "slice: kept {} registers / {} serial blocks; dropped {} registers / \
         {} datapath blocks; removed {} wait states",
        report.kept_regs.len(),
        report.kept_datapaths.len(),
        report.dropped_regs.len(),
        report.dropped_datapaths.len(),
        report.removed_wait_states
    );
    let full = AsicAreaModel::default().area(&module).total_um2();
    let slim = AsicAreaModel::default().area(predictor.module()).total_um2();
    println!("area: {slim:.0} um2 ({:.1}% of {full:.0})", 100.0 * slim / full);
    if let Some(out_path) = out {
        fs::write(out_path, to_text(predictor.module()))?;
        println!("wrote {out_path}");
    }
    Ok(())
}

/// Prints the control FSM as a Graphviz digraph, drawing wait states as
/// boxes (labelled with their counter) and serial states bold.
fn cmd_dot(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let analysis = Analysis::run(&module);
    let fsm = analysis
        .fsms
        .first()
        .ok_or("design has no control FSM to draw")?;
    println!("digraph {} {{", module.name);
    println!("  rankdir=LR;");
    for &s in &fsm.states {
        let wait = analysis.wait_for(fsm.reg, s);
        let shape = if wait.is_some() { "box" } else { "ellipse" };
        let style = match wait {
            Some(w) if w.serial => ", style=bold",
            _ => "",
        };
        let label = match wait {
            Some(w) => format!("S{s}\\n[{}]", module.reg_name(w.counter)),
            None => format!("S{s}"),
        };
        println!("  s{s} [shape={shape}{style}, label=\"{label}\"];");
    }
    for (src, dst) in fsm.transition_pairs() {
        println!("  s{src} -> s{dst};");
    }
    println!("}}");
    Ok(())
}

fn cmd_wcet(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let bound = wcet(&module)?;
    println!(
        "worst case: {} cycles per token, {} startup cycles",
        bound.cycles_per_token, bound.startup_cycles
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parser_splits_on_separator() {
        let dir = std::env::temp_dir().join("predvfs_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("jobs.txt");
        fs::write(&p, "# two jobs\n1,2\n3,4\n---\n5,6\n").unwrap();
        let jobs = load_jobs(p.to_str().unwrap(), 2).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].len(), 2);
        assert_eq!(jobs[1].get(0, 0), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_parser_rejects_bad_arity() {
        let dir = std::env::temp_dir().join("predvfs_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("jobs.txt");
        fs::write(&p, "1,2,3\n").unwrap();
        assert!(load_jobs(p.to_str().unwrap(), 2).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_analyze_round_trip() {
        // export a benchmark, re-load it, and analyze without error.
        let b = predvfs_accel::by_name("sha").unwrap();
        let text = to_text(&(b.build)());
        let module = from_text(&text).unwrap();
        assert!(Analysis::run(&module).fsms.len() == 1);
        assert!(wcet(&module).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&[]).is_ok(), "bare invocation prints help");
    }
}
