//! `predvfs` — command-line front end for the predictive-DVFS framework.
//!
//! ```text
//! predvfs export <benchmark> [out.rtl]      write a built-in design as RTL text
//! predvfs analyze <design.rtl>              FSMs, counters, waits, features, area, WCET
//! predvfs analyze <trace.jsonl> [--perfetto out.json]
//!                                           serve-trace analytics: slack quantiles,
//!                                           level residency, energy attribution,
//!                                           miss root-cause classification
//! predvfs simulate <design.rtl> <jobs.txt>  cycle counts per job
//! predvfs train <design.rtl> <jobs.txt>     fit the execution-time model
//! predvfs slice <design.rtl> <jobs.txt> [out.rtl]
//!                                           train, slice, and write the predictor hardware
//! predvfs wcet <design.rtl>                 static worst-case bound
//! predvfs eval <benchmark> [asic|fpga]      run every DVFS scheme on a built-in benchmark
//! predvfs serve <scenario.txt | --demo>     multi-stream DVFS service simulation
//! predvfs chaos <scenario.txt | --demo> [seed]
//!                                           same scenario under fault injection,
//!                                           degradation off vs on
//! ```
//!
//! `--threads N` (anywhere on the command line) caps the worker pool used
//! by parallel stages; the `RAYON_NUM_THREADS` / `PREDVFS_THREADS`
//! environment variables are honored as a fallback.
//!
//! `--faults <seed>` turns on deterministic fault injection for `serve`
//! (with graceful degradation enabled); the fault mix comes from the
//! scenario's `[faults]` section when present, else the standard mix.
//!
//! `--metrics-out <path>` and `--trace-out <path>` (anywhere on the
//! command line) turn on observability: counters/gauges/histograms are
//! written as Prometheus text and the structured event trace as JSON
//! lines. Trace events carry the *virtual* clock, so `serve` traces are
//! byte-identical regardless of `--threads`.
//!
//! The jobs file holds one token per line (comma-separated field values in
//! declaration order); a line containing only `---` ends a job. Lines
//! starting with `#` are comments.

use std::fs;
use std::process::ExitCode;

use predvfs::{train, SliceFlavor, SlicePredictor, TrainerConfig};
use predvfs_faults::{FaultConfig, FaultPlan};
use predvfs_obs::{Recorder, TraceEvent};
use predvfs_rtl::{
    from_text, set_default_engine, to_text, wcet, Analysis, AnySim, AsicAreaModel, ExecMode,
    FeatureSchema, FpgaResourceModel, JobInput, Module, SimEngine, SliceOptions,
};
use predvfs_serve::{DegradeConfig, Scenario, ServeResult, ServeRuntime};
use predvfs_sim::{Experiment, ExperimentConfig, Platform, Scheme};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw_args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (opts, args) = parse_options(raw_args)?;
    if let Some(n) = opts.threads {
        predvfs_par::set_threads(n);
    }
    if let Some(engine) = opts.engine {
        // Every downstream AnySim::new (trace cache, profiler, simulate)
        // follows this process-wide default.
        set_default_engine(engine);
    }
    if opts.observing() {
        // Deep components (solver, trace cache) report through the
        // process-global sink; install it before any work starts.
        predvfs_obs::install(std::sync::Arc::new(Recorder::new(TRACE_CAPACITY)));
    }
    if opts.profile_out.is_some() {
        predvfs_obs::set_profiling(true);
    }
    let args = &args;
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let outcome = match cmd {
        "export" => export(args.get(1), args.get(2)),
        "analyze" => {
            let target = required(args, 1, "design file or trace .jsonl")?;
            if target.ends_with(".jsonl") {
                analyze_trace(target, &args[2..])
            } else {
                analyze(target)
            }
        }
        "simulate" => simulate(
            required(args, 1, "design file")?,
            required(args, 2, "jobs file")?,
        ),
        "train" => cmd_train(
            required(args, 1, "design file")?,
            required(args, 2, "jobs file")?,
        ),
        "slice" => cmd_slice(
            required(args, 1, "design file")?,
            required(args, 2, "jobs file")?,
            args.get(3),
        ),
        "wcet" => cmd_wcet(required(args, 1, "design file")?),
        "dot" => cmd_dot(required(args, 1, "design file")?),
        "eval" => cmd_eval(required(args, 1, "benchmark name")?, args.get(2)),
        "serve" => cmd_serve(
            required(args, 1, "scenario file (or --demo)")?,
            opts.faults,
            opts.shards,
            opts.checkpoint_every,
            opts.crash,
        ),
        "chaos" => cmd_chaos(required(args, 1, "scenario file (or --demo)")?, args.get(2)),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `predvfs help`").into()),
    };
    if outcome.is_ok() {
        write_observability(&opts)?;
    }
    outcome
}

/// Bound on buffered trace events; beyond it the ring evicts oldest and
/// counts drops (reported in the summary).
const TRACE_CAPACITY: usize = 1 << 20;

/// Global flags accepted anywhere on the command line.
#[derive(Debug, Default, PartialEq)]
struct CliOptions {
    /// Worker-pool size (`--threads`).
    threads: Option<usize>,
    /// Prometheus text output path (`--metrics-out`).
    metrics_out: Option<String>,
    /// JSON-lines trace output path (`--trace-out`).
    trace_out: Option<String>,
    /// Fault-injection seed for `serve` (`--faults`).
    faults: Option<u64>,
    /// Shard-engine count for `serve` (`--shards`).
    shards: Option<usize>,
    /// Shard checkpoint cadence in epochs (`--checkpoint-every`).
    checkpoint_every: Option<u64>,
    /// Coordinator-fault seed for `serve --shards` (`--crash`).
    crash: Option<u64>,
    /// RTL execution engine override (`--compiled` / `--interp`).
    engine: Option<SimEngine>,
    /// Collapsed-stack span profile output path (`--profile-out`).
    profile_out: Option<String>,
}

impl CliOptions {
    /// True when any observability output was requested.
    fn observing(&self) -> bool {
        // Profiling implies a recorder: virtual spans are gated on the
        // sink so replay paths stay silent, and a flamegraph without the
        // engine's deterministic events would be misleading anyway.
        self.metrics_out.is_some() || self.trace_out.is_some() || self.profile_out.is_some()
    }
}

/// Strips the global flags (`--threads N`, `--metrics-out P`,
/// `--trace-out P`, `--faults S`, `--shards N`, each also in
/// `--flag=value` form, plus the boolean `--compiled`/`--interp` engine
/// switches) from anywhere in the argument list, returning them and the
/// remaining args.
fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<String>), String> {
    let mut opts = CliOptions::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            if a == flag {
                let v = it
                    .next()
                    .ok_or_else(|| format!("`{flag}` needs a value; try `predvfs help`"))?;
                Ok(Some(v.clone()))
            } else {
                Ok(a.strip_prefix(flag)
                    .and_then(|r| r.strip_prefix('='))
                    .map(str::to_owned))
            }
        };
        if let Some(v) = take("--threads")? {
            let n: usize = v
                .parse()
                .map_err(|_| format!("invalid thread count `{v}`"))?;
            if n == 0 {
                return Err("thread count must be at least 1".to_owned());
            }
            opts.threads = Some(n);
        } else if let Some(path) = take("--metrics-out")? {
            opts.metrics_out = Some(path);
        } else if let Some(path) = take("--trace-out")? {
            opts.trace_out = Some(path);
        } else if let Some(path) = take("--profile-out")? {
            opts.profile_out = Some(path);
        } else if let Some(v) = take("--faults")? {
            let seed: u64 = v.parse().map_err(|_| format!("invalid fault seed `{v}`"))?;
            opts.faults = Some(seed);
        } else if let Some(v) = take("--shards")? {
            let n: usize = v
                .parse()
                .map_err(|_| format!("invalid shard count `{v}`"))?;
            if n == 0 {
                return Err("shard count must be at least 1".to_owned());
            }
            opts.shards = Some(n);
        } else if let Some(v) = take("--checkpoint-every")? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("invalid checkpoint cadence `{v}`"))?;
            if n == 0 {
                return Err("checkpoint cadence must be at least 1 epoch".to_owned());
            }
            opts.checkpoint_every = Some(n);
        } else if let Some(v) = take("--crash")? {
            let seed: u64 = v.parse().map_err(|_| format!("invalid crash seed `{v}`"))?;
            opts.crash = Some(seed);
        } else if a == "--compiled" || a == "--interp" {
            let engine = if a == "--compiled" {
                SimEngine::Compiled
            } else {
                SimEngine::Interp
            };
            if opts.engine.is_some_and(|e| e != engine) {
                return Err("`--compiled` and `--interp` are mutually exclusive".to_owned());
            }
            opts.engine = Some(engine);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((opts, rest))
}

/// Writes the requested metrics/trace files from the global recorder and
/// prints a metrics summary table. No-op when observability is off.
fn write_observability(opts: &CliOptions) -> Result<(), Box<dyn std::error::Error>> {
    let Some(rec) = predvfs_obs::recorder() else {
        return Ok(());
    };
    let dropped = rec.ring().dropped();
    if dropped > 0 {
        // Surface the truncation in the metrics themselves (before the
        // export below) and loudly on stderr: a silently truncated trace
        // corrupts every downstream analyzer statistic.
        rec.registry()
            .counter("predvfs_obs_trace_dropped_total")
            .add(dropped);
        eprintln!(
            "warning: trace ring evicted {dropped} events; the JSONL export is \
             truncated (a trace_truncated meta event marks it)"
        );
    }
    if let Some(path) = &opts.metrics_out {
        fs::write(path, rec.registry().prometheus_text())?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = &opts.trace_out {
        fs::write(path, rec.ring().to_jsonl())?;
        eprintln!(
            "wrote {} trace events to {path}{}",
            rec.ring().len(),
            match rec.ring().dropped() {
                0 => String::new(),
                n => format!(" ({n} oldest dropped by the ring bound)"),
            }
        );
    }
    if let Some(path) = &opts.profile_out {
        // Both domains in one collapsed-stack file, distinguished by a
        // top-level frame. Feed straight into inferno / flamegraph.pl;
        // the `virtual;` subtree is byte-identical across --threads and
        // --shards for deterministic workloads.
        let profile = predvfs_obs::self_profile();
        let mut folded = String::new();
        for (prefix, domain) in [
            ("wall;", predvfs_obs::SpanDomain::Wall),
            ("virtual;", predvfs_obs::SpanDomain::Virtual),
        ] {
            for line in profile.collapsed(domain).lines() {
                folded.push_str(prefix);
                folded.push_str(line);
                folded.push('\n');
            }
        }
        fs::write(path, &folded)?;
        eprintln!(
            "wrote span profile ({} stacks) to {path}",
            folded.lines().count()
        );
    }
    let counters = rec.registry().counters();
    let histograms = rec.registry().histogram_summaries();
    if counters.is_empty() && histograms.is_empty() {
        return Ok(());
    }
    println!("\nmetrics summary:");
    println!("  {:<44} {:>14}", "counter", "value");
    for (name, value) in &counters {
        println!("  {name:<44} {value:>14}");
    }
    if !histograms.is_empty() {
        let quantiles = rec.registry().histogram_quantiles();
        println!(
            "  {:<44} {:>10} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p99"
        );
        for ((name, count, sum), (_, p50, _, p99)) in histograms.iter().zip(&quantiles) {
            let mean = if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            };
            println!("  {name:<44} {count:>10} {mean:>12.6} {p50:>12.6} {p99:>12.6}");
        }
    }
    Ok(())
}

/// Analyzes a serve-runtime JSONL trace: per-stream slack quantiles,
/// level residency, energy attribution, and miss root-cause counts, with
/// an optional Chrome trace-event export for Perfetto.
fn analyze_trace(path: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut perfetto: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--perfetto" {
            let out = it.next().ok_or("`--perfetto` needs an output path")?;
            perfetto = Some(out.clone());
        } else if let Some(v) = a.strip_prefix("--perfetto=") {
            perfetto = Some(v.to_owned());
        } else {
            return Err(format!("unexpected trace-analyze argument `{a}`").into());
        }
    }
    // Stream the trace: resident memory tracks analysis state, not file
    // size, so million-event traces don't spike RSS.
    let reader = std::io::BufReader::new(fs::File::open(path)?);
    let analysis = predvfs_obs::TraceAnalysis::from_reader(reader)?;
    print!("{}", analysis.report());
    if let Some(out) = perfetto {
        fs::write(&out, analysis.to_perfetto())?;
        eprintln!("wrote perfetto trace to {out}");
    }
    Ok(())
}

const HELP: &str = "\
predvfs — execution-time prediction for energy-efficient accelerators

USAGE:
  predvfs export <benchmark> [out.rtl]
  predvfs analyze <design.rtl>
  predvfs analyze <trace.jsonl> [--perfetto <out.json>]
  predvfs simulate <design.rtl> <jobs.txt>
  predvfs train <design.rtl> <jobs.txt>
  predvfs slice <design.rtl> <jobs.txt> [out.rtl]
  predvfs wcet <design.rtl>
  predvfs dot <design.rtl>        (pipe into `dot -Tsvg`)
  predvfs eval <benchmark> [asic|fpga]
  predvfs serve <scenario.txt | --demo>
  predvfs chaos <scenario.txt | --demo> [seed]

OPTIONS:
  --threads <N>        worker-pool size for parallel stages (default: all
                       cores; RAYON_NUM_THREADS / PREDVFS_THREADS also
                       honored)
  --metrics-out <path> write counters/gauges/histograms as Prometheus text
  --trace-out <path>   write the structured event trace as JSON lines
                       (virtual-clock stamped; byte-identical across
                       --threads for `serve`)
  --profile-out <path> enable span profiling and write the collapsed-stack
                       flamegraph text (wall; and virtual; subtrees; the
                       virtual subtree is byte-identical across --threads
                       and --shards)
  --faults <seed>      serve: inject deterministic faults from this seed
                       with graceful degradation (watchdog, switch retries,
                       quarantine) enabled; the fault mix comes from the
                       scenario's [faults] section, else the standard mix
  --shards <N>         serve: partition streams across N shard engines
                       under the budget-owning coordinator; per-shard
                       traces are merged back into the canonical order,
                       so --trace-out output is shard-count invariant
  --checkpoint-every <E>
                       serve --shards: capture a full shard snapshot
                       every E epochs, bounding crash-recovery replay
                       to at most E epochs of journal
  --crash <seed>       serve --shards: inject deterministic coordinator
                       faults (shard crashes, epoch stalls, transfer
                       drops) from this seed; crashed shards rebuild
                       from their last checkpoint plus journal replay,
                       and the merged trace stays byte-identical to the
                       fault-free run
  --compiled           run RTL jobs on the bytecode VM (the default); the
                       compiled engine is byte-identical to the interpreter
  --interp             run RTL jobs on the reference interpreter (the
                       differential-testing oracle; ~an order of magnitude
                       slower)

Built-in benchmarks: h264 cjpeg djpeg md stencil aes sha
PREDVFS_QUICK=1 shrinks `eval` workloads for smoke runs.

Scenario files (serve) are line-oriented:
  platform asic|fpga
  size quick|full
  stream <benchmark> [deadline_ms=..] [period_ms=..] [jobs=..] [queue=..]
         [policy=shed|relax:<f>]
         [controller=predictive|adaptive|pid|hybrid|cached]
         [seed=..] [drift=<at_frac>:<cycle_scale>] [name=..]
An optional `[faults]` section sets the chaos plan: `seed=<n>` plus
`<fault>=<p>` or `<fault>=<p>:<magnitude>` lines (slice_corrupt,
slice_timeout, switch_reject, switch_stall, clock_jitter, trace_spike,
burst, spurious_done).
`--demo` runs a built-in 4-stream scenario with drift and backpressure.
`chaos` runs the same plan twice — degradation off, then on — and prints
the per-stream comparison.

`analyze` on a `.jsonl` file (a `--trace-out` export) reconstructs the
per-job timelines and reports per-stream slack quantiles, level
residency, energy attribution, and a deterministic root cause for every
deadline miss (quarantine_safe_mode | injected_fault | switch_stall |
queueing_delay | mispredict | unattributed). `--perfetto <out.json>`
additionally writes the timelines as Chrome trace-event JSON for
Perfetto / chrome://tracing.
";

fn required<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}; try `predvfs help`"))
}

fn load(path: &str) -> Result<Module, Box<dyn std::error::Error>> {
    let src = fs::read_to_string(path)?;
    Ok(from_text(&src)?)
}

/// Parses the jobs file format (see module docs).
fn load_jobs(path: &str, fields: usize) -> Result<Vec<JobInput>, Box<dyn std::error::Error>> {
    let src = fs::read_to_string(path)?;
    let mut jobs = Vec::new();
    let mut cur = JobInput::new(fields);
    for (ln, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "---" {
            jobs.push(std::mem::replace(&mut cur, JobInput::new(fields)));
            continue;
        }
        let token: Result<Vec<u64>, _> = line.split(',').map(|v| v.trim().parse::<u64>()).collect();
        let token = token.map_err(|e| format!("jobs line {}: {e}", ln + 1))?;
        if token.len() != fields {
            return Err(format!(
                "jobs line {}: expected {fields} fields, found {}",
                ln + 1,
                token.len()
            )
            .into());
        }
        cur.push(&token);
    }
    if !cur.is_empty() {
        jobs.push(cur);
    }
    if jobs.is_empty() {
        return Err("jobs file contains no jobs".into());
    }
    Ok(jobs)
}

fn export(bench: Option<&String>, out: Option<&String>) -> Result<(), Box<dyn std::error::Error>> {
    let name = bench.ok_or("missing benchmark name")?;
    let b = predvfs_accel::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `predvfs help`)"))?;
    let text = to_text(&(b.build)());
    match out {
        Some(path) => {
            fs::write(path, &text)?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn analyze(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let analysis = Analysis::run(&module);
    println!("module `{}`:", module.name);
    println!(
        "  {} registers, {} datapath blocks, {} memories, {} input fields",
        module.regs.len(),
        module.datapaths.len(),
        module.memories.len(),
        module.inputs.len()
    );
    for f in &analysis.fsms {
        println!(
            "  fsm {} — {} states, {} transitions",
            module.reg_name(f.reg),
            f.states.len(),
            f.transition_pairs().len()
        );
    }
    println!("  counters:");
    for c in &analysis.counters {
        let dir = match (c.counts_down(), c.counts_up()) {
            (true, false) => "down",
            (false, true) => "up",
            _ => "mixed",
        };
        println!("    {} ({dir})", module.reg_name(c.reg));
    }
    let serial = analysis.waits.iter().filter(|w| w.serial).count();
    println!(
        "  wait states: {} ({} serial)",
        analysis.waits.len(),
        serial
    );
    let schema = FeatureSchema::from_analysis(&module, &analysis);
    println!("  feature schema: {} columns", schema.len());
    let area = AsicAreaModel::default().area(&module);
    println!(
        "  asic area: {:.0} um2 (control {:.0}, datapath {:.0}, memory {:.0})",
        area.total_um2(),
        area.control_um2,
        area.datapath_um2,
        area.memory_um2
    );
    let res = FpgaResourceModel::default().resources(&module);
    println!(
        "  fpga: {} LUTs, {} DSPs, {} BRAMs",
        res.luts, res.dsps, res.brams
    );
    if let Ok(bound) = wcet(&module) {
        println!(
            "  wcet: {} cycles/token + {} startup",
            bound.cycles_per_token, bound.startup_cycles
        );
    }
    Ok(())
}

fn simulate(path: &str, jobs_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let sim = AnySim::new(&module)?;
    println!(
        "{:>5} {:>10} {:>12} {:>10}",
        "job", "tokens", "cycles", "stepped"
    );
    for (i, job) in jobs.iter().enumerate() {
        let t = sim.run(job, ExecMode::FastForward, None)?;
        println!(
            "{i:>5} {:>10} {:>12} {:>10}",
            t.tokens_consumed, t.cycles, t.stepped_cycles
        );
    }
    Ok(())
}

fn cmd_train(path: &str, jobs_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let model = train::train(&module, &jobs, &TrainerConfig::default())?;
    println!(
        "fitted {} of {} features:",
        model.selected().len(),
        model.schema().len()
    );
    for (name, coeff) in model.support_summary() {
        println!("  {name:<32} {coeff:>14.4}");
    }
    Ok(())
}

fn cmd_slice(
    path: &str,
    jobs_path: &str,
    out: Option<&String>,
) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let jobs = load_jobs(jobs_path, module.inputs.len())?;
    let model = train::train(&module, &jobs, &TrainerConfig::default())?;
    let predictor =
        SlicePredictor::generate(&module, &model, SliceOptions::default(), SliceFlavor::Rtl)?;
    let report = predictor.report();
    println!(
        "slice: kept {} registers / {} serial blocks; dropped {} registers / \
         {} datapath blocks; removed {} wait states",
        report.kept_regs.len(),
        report.kept_datapaths.len(),
        report.dropped_regs.len(),
        report.dropped_datapaths.len(),
        report.removed_wait_states
    );
    let full = AsicAreaModel::default().area(&module).total_um2();
    let slim = AsicAreaModel::default()
        .area(predictor.module())
        .total_um2();
    println!(
        "area: {slim:.0} um2 ({:.1}% of {full:.0})",
        100.0 * slim / full
    );
    if let Some(out_path) = out {
        fs::write(out_path, to_text(predictor.module()))?;
        println!("wrote {out_path}");
    }
    Ok(())
}

/// Prints the control FSM as a Graphviz digraph, drawing wait states as
/// boxes (labelled with their counter) and serial states bold.
fn cmd_dot(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let analysis = Analysis::run(&module);
    let fsm = analysis
        .fsms
        .first()
        .ok_or("design has no control FSM to draw")?;
    println!("digraph {} {{", module.name);
    println!("  rankdir=LR;");
    for &s in &fsm.states {
        let wait = analysis.wait_for(fsm.reg, s);
        let shape = if wait.is_some() { "box" } else { "ellipse" };
        let style = match wait {
            Some(w) if w.serial => ", style=bold",
            _ => "",
        };
        let label = match wait {
            Some(w) => format!("S{s}\\n[{}]", module.reg_name(w.counter)),
            None => format!("S{s}"),
        };
        println!("  s{s} [shape={shape}{style}, label=\"{label}\"];");
    }
    for (src, dst) in fsm.transition_pairs() {
        println!("  s{src} -> s{dst};");
    }
    println!("}}");
    Ok(())
}

/// Runs every DVFS scheme on a built-in benchmark in parallel and prints
/// the energy/miss summary (normalized to the baseline scheme).
fn cmd_eval(name: &str, platform: Option<&String>) -> Result<(), Box<dyn std::error::Error>> {
    let platform = match platform.map(String::as_str) {
        None | Some("asic") => Platform::Asic,
        Some("fpga") => Platform::Fpga,
        Some(other) => return Err(format!("unknown platform `{other}` (asic|fpga)").into()),
    };
    let bench = predvfs_accel::by_name(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `predvfs help`)"))?;
    let mut cfg = ExperimentConfig::paper_default(platform);
    if std::env::var("PREDVFS_QUICK").as_deref() == Ok("1") {
        cfg.size = predvfs_accel::WorkloadSize::Quick;
    }
    eprintln!(
        "preparing {name} ({} worker threads)...",
        predvfs_par::current_threads()
    );
    let experiment = Experiment::prepare(bench, cfg)?;
    let results = experiment.run_all(&Scheme::ALL)?;
    let base = results[0].clone();
    println!(
        "{:<20} {:>16} {:>9} {:>7}",
        "scheme", "energy_pJ", "norm%", "miss%"
    );
    let sink = predvfs_obs::global();
    for r in &results {
        println!(
            "{:<20} {:>16.0} {:>9.1} {:>7.2}",
            r.scheme,
            r.total_energy_pj(),
            r.normalized_energy_pct(&base),
            r.miss_pct()
        );
        if sink.enabled() {
            // Emitted serially in scheme order after the parallel runs,
            // so the trace stays deterministic under `--threads`.
            sink.emit(
                TraceEvent::new(0.0, "eval", "scheme_done")
                    .with_str("scheme", &r.scheme.to_string())
                    .with_f64("energy_pj", r.total_energy_pj())
                    .with_f64("norm_pct", r.normalized_energy_pct(&base))
                    .with_f64("miss_pct", r.miss_pct()),
            );
        }
    }
    Ok(())
}

/// Loads a scenario argument: `--demo` or a scenario file path.
fn load_scenario(scenario_arg: &str) -> Result<Scenario, Box<dyn std::error::Error>> {
    if scenario_arg == "--demo" {
        Ok(Scenario::demo())
    } else {
        Ok(Scenario::parse(&fs::read_to_string(scenario_arg)?)?)
    }
}

/// Fault plan for a serve run. A `--faults` seed overrides the scenario's
/// `[faults]` seed; either source alone turns chaos on. A `[faults]`
/// section that names no faults (seed only) gets the standard mix.
fn resolve_plan(scenario: &Scenario, flag_seed: Option<u64>) -> Option<FaultPlan> {
    let section = scenario.faults.as_ref();
    let seed = flag_seed.or_else(|| section.map(|f| f.seed))?;
    let config = section
        .map(|f| f.config)
        .filter(|c| !c.is_empty())
        .unwrap_or_else(FaultConfig::standard);
    Some(FaultPlan::new(seed, config))
}

/// Prints the per-stream outcome table for a serve run; chaos runs get
/// the fault/degradation columns appended.
fn print_serve_table(runtime: &ServeRuntime, result: &ServeResult, chaos: bool) {
    print!(
        "{:<12} {:<10} {:>9} {:>6} {:>7} {:>7} {:>8} {:>7}",
        "stream", "ctrl", "submitted", "done", "miss%", "shed%", "relaxed", "refits"
    );
    if chaos {
        print!(
            " {:>7} {:>6} {:>5} {:>7}",
            "faults", "escal", "quar", "interr"
        );
    }
    println!(" {:>14}", "energy_pJ");
    for (spec, s) in runtime.specs().zip(&result.streams) {
        print!(
            "{:<12} {:<10} {:>9} {:>6} {:>7.2} {:>7.2} {:>8} {:>7}",
            s.name,
            spec.controller.name(),
            s.submitted,
            s.completed(),
            s.miss_pct(),
            s.shed_pct(),
            s.relaxed,
            s.refits
        );
        if chaos {
            print!(
                " {:>7} {:>6} {:>5} {:>7}",
                s.faults, s.escalations, s.quarantines, s.internal_errors
            );
        }
        println!(" {:>14.0}", s.total_energy_pj());
    }
}

/// Runs a multi-stream service scenario and prints per-stream outcomes
/// (completions, misses, backpressure, refits, energy). With a fault
/// plan (from `--faults` or the scenario's `[faults]` section) the run
/// goes through the chaos path with graceful degradation enabled. With
/// `--shards N` (N > 1) the run goes through the sharded tier: N shard
/// engines under the budget-owning coordinator, with the per-shard
/// traces merged back into the canonical global order for `--trace-out`.
fn cmd_serve(
    scenario_arg: &str,
    faults_seed: Option<u64>,
    shards: Option<usize>,
    checkpoint_every: Option<u64>,
    crash: Option<u64>,
) -> Result<(), Box<dyn std::error::Error>> {
    let scenario = load_scenario(scenario_arg)?;
    let plan = resolve_plan(&scenario, faults_seed);
    eprintln!(
        "preparing {} streams ({} worker threads)...",
        scenario.streams.len(),
        predvfs_par::current_threads()
    );
    let runtime = ServeRuntime::prepare(&scenario, &predvfs_sim::TraceCache::new())?;
    if let Some(shards) = shards.filter(|&n| n > 1) {
        return serve_sharded(&runtime, shards, plan.as_ref(), checkpoint_every, crash);
    }
    if checkpoint_every.is_some() || crash.is_some() {
        return Err(
            "`--checkpoint-every` and `--crash` need the sharded tier; add `--shards <N>` (N > 1)"
                .into(),
        );
    }
    let result = match &plan {
        Some(plan) => {
            eprintln!(
                "fault injection on (seed {}), graceful degradation enabled",
                plan.seed()
            );
            runtime.run_chaos(None, predvfs_obs::global(), plan, &DegradeConfig::enabled())?
        }
        None => runtime.run_observed(None, predvfs_obs::global())?,
    };
    print_serve_table(&runtime, &result, plan.is_some());
    println!(
        "{} events over {:.1} ms of virtual time",
        result.events,
        result.horizon_s * 1e3
    );
    Ok(())
}

/// The `serve --shards N` path: runs the scenario across `shards` shard
/// engines under the coordinator. Each shard records into its own sink;
/// afterwards the per-shard trace streams are merged into the global
/// recorder's ring in the canonical `(t_s, stream)` order (so
/// `--trace-out` emits the shard-count-invariant JSONL) and per-shard
/// counters are summed into the global registry. Per-shard histogram
/// observations are not merged. The coordinator's shard-labeled gauges
/// and counters land in the global registry directly.
fn serve_sharded(
    runtime: &ServeRuntime,
    shards: usize,
    plan: Option<&FaultPlan>,
    checkpoint_every: Option<u64>,
    crash: Option<u64>,
) -> Result<(), Box<dyn std::error::Error>> {
    use predvfs_obs::ObsSink;
    let observing = predvfs_obs::recorder().is_some();
    let recorders: Vec<Recorder> = if observing {
        (0..shards).map(|_| Recorder::new(TRACE_CAPACITY)).collect()
    } else {
        Vec::new()
    };
    let sinks: Vec<&dyn ObsSink> = recorders.iter().map(|r| r as &dyn ObsSink).collect();
    let config = predvfs_shard::ShardConfig {
        shards,
        degrade: if plan.is_some() || crash.is_some() {
            DegradeConfig::enabled()
        } else {
            DegradeConfig::disabled()
        },
        checkpoint_every,
        ..predvfs_shard::ShardConfig::default()
    };
    // `--crash <seed>` layers the coordinator fault mix (shard crashes,
    // epoch stalls, transfer drops) on top of whatever job-level mix is
    // active; with both flags the combined mix runs under the crash
    // seed, so the run stays a single deterministic plan.
    let crash_plan: Option<FaultPlan> = crash.map(|seed| {
        let mut config = plan.map_or_else(predvfs_faults::FaultConfig::none, |p| *p.config());
        let coord = predvfs_faults::FaultConfig::coordinator();
        config.shard_crash_p = coord.shard_crash_p;
        config.epoch_stall_p = coord.epoch_stall_p;
        config.transfer_drop_p = coord.transfer_drop_p;
        FaultPlan::new(seed, config)
    });
    let injector: &dyn predvfs_faults::FaultInjector = match (&crash_plan, plan) {
        (Some(crash_plan), _) => {
            eprintln!(
                "coordinator fault injection on (seed {}), graceful degradation enabled",
                crash_plan.seed()
            );
            crash_plan
        }
        (None, Some(plan)) => {
            eprintln!(
                "fault injection on (seed {}), graceful degradation enabled",
                plan.seed()
            );
            plan
        }
        (None, None) => &predvfs_faults::NullInjector,
    };
    eprintln!(
        "sharded serve: {shards} shards, epoch {} ms{}",
        config.epoch_s * 1e3,
        match checkpoint_every {
            Some(n) => format!(", checkpoint every {n} epoch(s)"),
            None => String::new(),
        }
    );
    let sharded =
        predvfs_shard::run_sharded(runtime, &config, &sinks, predvfs_obs::global(), injector)?;
    if let Some(global) = predvfs_obs::recorder() {
        for rec in &recorders {
            for (name, value) in rec.registry().counters() {
                global.registry().counter(&name).add(value);
            }
        }
        let merged = predvfs_shard::merged_trace(
            runtime,
            recorders.iter().map(|r| r.ring().snapshot()).collect(),
        );
        let sink: &dyn ObsSink = global.as_ref();
        for event in merged {
            sink.emit(event);
        }
    }
    let result = ServeResult {
        streams: sharded.streams,
        horizon_s: sharded.horizon_s,
        events: sharded.events,
    };
    print_serve_table(runtime, &result, plan.is_some());
    println!(
        "{} events over {:.1} ms of virtual time",
        result.events,
        result.horizon_s * 1e3
    );
    println!(
        "{} epochs, {} migrations, boosts granted/denied/applied {}/{}/{}, jobs per shard {:?}",
        sharded.epochs,
        sharded.migrations,
        sharded.boosts_granted,
        sharded.boosts_denied,
        sharded.boosts_applied,
        sharded.shard_jobs_done
    );
    if sharded.checkpoints > 0 || sharded.crashes > 0 || sharded.epoch_stalls > 0 {
        println!(
            "{} checkpoints, {} crashes ({} recovered, {} epochs replayed), \
             {} epoch stalls, {} transfer retransmits",
            sharded.checkpoints,
            sharded.crashes,
            sharded.recoveries,
            sharded.replayed_epochs,
            sharded.epoch_stalls,
            sharded.transfer_retransmits
        );
    }
    Ok(())
}

/// Runs a scenario twice under the same deterministic fault plan —
/// degradation disabled, then enabled — and prints both outcome tables
/// plus the headline miss-rate comparison.
fn cmd_chaos(
    scenario_arg: &str,
    seed_arg: Option<&String>,
) -> Result<(), Box<dyn std::error::Error>> {
    let scenario = load_scenario(scenario_arg)?;
    let seed = match seed_arg {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("invalid chaos seed `{s}`"))?,
        None => scenario.faults.as_ref().map(|f| f.seed).unwrap_or(42),
    };
    let plan = resolve_plan(&scenario, Some(seed)).expect("seed is always present");
    eprintln!(
        "preparing {} streams ({} worker threads)...",
        scenario.streams.len(),
        predvfs_par::current_threads()
    );
    let runtime = ServeRuntime::prepare(&scenario, &predvfs_sim::TraceCache::new())?;
    let baseline = runtime.run_chaos(
        None,
        &predvfs_obs::NullSink,
        &plan,
        &DegradeConfig::disabled(),
    )?;
    let hardened = runtime.run_chaos(
        None,
        predvfs_obs::global(),
        &plan,
        &DegradeConfig::enabled(),
    )?;
    println!("chaos seed {seed} — graceful degradation DISABLED:");
    print_serve_table(&runtime, &baseline, true);
    println!("\nchaos seed {seed} — graceful degradation ENABLED:");
    print_serve_table(&runtime, &hardened, true);
    println!(
        "\noverall miss rate: {:.2}% disabled -> {:.2}% enabled",
        baseline.miss_pct(),
        hardened.miss_pct()
    );
    Ok(())
}

fn cmd_wcet(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = load(path)?;
    let bound = wcet(&module)?;
    println!(
        "worst case: {} cycles per token, {} startup cycles",
        bound.cycles_per_token, bound.startup_cycles
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parser_splits_on_separator() {
        let dir = std::env::temp_dir().join("predvfs_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("jobs.txt");
        fs::write(&p, "# two jobs\n1,2\n3,4\n---\n5,6\n").unwrap();
        let jobs = load_jobs(p.to_str().unwrap(), 2).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].len(), 2);
        assert_eq!(jobs[1].get(0, 0), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_parser_rejects_bad_arity() {
        let dir = std::env::temp_dir().join("predvfs_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("jobs.txt");
        fs::write(&p, "1,2,3\n").unwrap();
        assert!(load_jobs(p.to_str().unwrap(), 2).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_analyze_round_trip() {
        // export a benchmark, re-load it, and analyze without error.
        let b = predvfs_accel::by_name("sha").unwrap();
        let text = to_text(&(b.build)());
        let module = from_text(&text).unwrap();
        assert!(Analysis::run(&module).fsms.len() == 1);
        assert!(wcet(&module).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&["frobnicate".to_owned()]).is_err());
        assert!(run(&[]).is_ok(), "bare invocation prints help");
    }

    fn owned(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn thread_flag_is_stripped_anywhere() {
        let (opts, rest) = parse_options(&owned(&["eval", "--threads", "3", "sha"])).unwrap();
        assert_eq!(opts.threads, Some(3));
        assert_eq!(rest, owned(&["eval", "sha"]));

        let (opts, rest) = parse_options(&owned(&["--threads=8", "help"])).unwrap();
        assert_eq!(opts.threads, Some(8));
        assert_eq!(rest, owned(&["help"]));
    }

    #[test]
    fn thread_flag_rejects_bad_values() {
        let bad = |s: &str| parse_options(&[s.to_owned()]).is_err();
        assert!(bad("--threads"), "missing value");
        assert!(bad("--threads=zero"), "non-numeric value");
        assert!(bad("--threads=0"), "zero workers");
    }

    #[test]
    fn observability_flags_are_stripped_anywhere() {
        let (opts, rest) = parse_options(&owned(&[
            "serve",
            "--metrics-out",
            "m.prom",
            "--demo",
            "--trace-out=t.jsonl",
        ]))
        .unwrap();
        assert_eq!(opts.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(opts.trace_out.as_deref(), Some("t.jsonl"));
        assert!(opts.observing());
        assert_eq!(rest, owned(&["serve", "--demo"]));

        assert!(parse_options(&owned(&["--metrics-out"])).is_err());
        assert!(parse_options(&owned(&["--trace-out"])).is_err());
        let (opts, _) = parse_options(&owned(&["eval", "sha"])).unwrap();
        assert!(!opts.observing());
    }

    #[test]
    fn faults_flag_is_stripped_and_validated() {
        let (opts, rest) = parse_options(&owned(&["serve", "--demo", "--faults", "7"])).unwrap();
        assert_eq!(opts.faults, Some(7));
        assert_eq!(rest, owned(&["serve", "--demo"]));

        let (opts, _) = parse_options(&owned(&["--faults=12345", "serve"])).unwrap();
        assert_eq!(opts.faults, Some(12345));

        assert!(
            parse_options(&owned(&["--faults"])).is_err(),
            "missing value"
        );
        assert!(
            parse_options(&owned(&["--faults=lucky"])).is_err(),
            "non-numeric"
        );
    }

    #[test]
    fn engine_flags_are_stripped_and_exclusive() {
        let (opts, rest) = parse_options(&owned(&["eval", "--compiled", "sha"])).unwrap();
        assert_eq!(opts.engine, Some(SimEngine::Compiled));
        assert_eq!(rest, owned(&["eval", "sha"]));

        let (opts, rest) = parse_options(&owned(&["--interp", "eval", "sha"])).unwrap();
        assert_eq!(opts.engine, Some(SimEngine::Interp));
        assert_eq!(rest, owned(&["eval", "sha"]));

        let (opts, _) = parse_options(&owned(&["eval", "sha"])).unwrap();
        assert_eq!(opts.engine, None, "defaults to the process default");

        // Repeating the same flag is harmless; mixing the two is an error.
        let (opts, _) = parse_options(&owned(&["--interp", "--interp"])).unwrap();
        assert_eq!(opts.engine, Some(SimEngine::Interp));
        assert!(parse_options(&owned(&["--compiled", "--interp"])).is_err());
        assert!(parse_options(&owned(&["--interp", "--compiled"])).is_err());
    }

    #[test]
    fn shards_flag_is_stripped_and_validated() {
        let (opts, rest) = parse_options(&owned(&["serve", "--demo", "--shards", "4"])).unwrap();
        assert_eq!(opts.shards, Some(4));
        assert_eq!(rest, owned(&["serve", "--demo"]));

        let (opts, _) = parse_options(&owned(&["--shards=16", "serve"])).unwrap();
        assert_eq!(opts.shards, Some(16));

        assert!(
            parse_options(&owned(&["--shards"])).is_err(),
            "missing value"
        );
        assert!(
            parse_options(&owned(&["--shards=many"])).is_err(),
            "non-numeric"
        );
        assert!(
            parse_options(&owned(&["--shards=0"])).is_err(),
            "zero shards"
        );
    }

    #[test]
    fn crash_and_checkpoint_flags_parse_and_validate() {
        let (opts, rest) = parse_options(&owned(&[
            "serve",
            "--demo",
            "--shards",
            "4",
            "--checkpoint-every",
            "8",
            "--crash",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.shards, Some(4));
        assert_eq!(opts.checkpoint_every, Some(8));
        assert_eq!(opts.crash, Some(7));
        assert_eq!(rest, owned(&["serve", "--demo"]));

        let (opts, _) = parse_options(&owned(&["--checkpoint-every=2", "--crash=0"])).unwrap();
        assert_eq!(opts.checkpoint_every, Some(2));
        assert_eq!(opts.crash, Some(0));

        assert!(
            parse_options(&owned(&["--checkpoint-every=0"])).is_err(),
            "zero cadence"
        );
        assert!(
            parse_options(&owned(&["--checkpoint-every"])).is_err(),
            "missing value"
        );
        assert!(
            parse_options(&owned(&["--crash=nope"])).is_err(),
            "non-numeric seed"
        );
    }

    #[test]
    fn chaos_plan_resolution_prefers_the_flag_seed() {
        // No flag, no [faults] section: chaos stays off.
        let scenario = Scenario::demo();
        assert!(resolve_plan(&scenario, None).is_none());
        // The flag alone turns it on with the standard mix.
        let plan = resolve_plan(&scenario, Some(9)).expect("flag enables chaos");
        assert_eq!(plan.seed(), 9);
        assert!(!plan.config().is_empty());
        // A [faults] section alone turns it on with its own seed/config.
        let with_section = Scenario::parse(
            "platform asic\nsize quick\nstream sha\n[faults]\nseed=5\ntrace_spike=0.2:1.5\n",
        )
        .unwrap();
        let plan = resolve_plan(&with_section, None).expect("section enables chaos");
        assert_eq!(plan.seed(), 5);
        // The flag seed overrides the section's seed but keeps its mix.
        let plan = resolve_plan(&with_section, Some(11)).unwrap();
        assert_eq!(plan.seed(), 11);
    }

    #[test]
    fn flag_prefix_does_not_swallow_lookalikes() {
        // `--threadspool` shares a prefix with `--threads` but is not it.
        let (opts, rest) = parse_options(&owned(&["--threadspool"])).unwrap();
        assert_eq!(opts, CliOptions::default());
        assert_eq!(rest, owned(&["--threadspool"]));
    }

    #[test]
    fn eval_rejects_unknown_inputs() {
        assert!(cmd_eval("nonesuch", None).is_err());
        let plat = "gpu".to_owned();
        assert!(cmd_eval("sha", Some(&plat)).is_err());
    }
}
