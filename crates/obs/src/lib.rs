//! # predvfs-obs
//!
//! The observability layer of the predvfs stack: a lightweight,
//! dependency-free metrics registry (counters, gauges, fixed-bucket
//! histograms), a bounded structured event ring for deterministic
//! tracing, and phase timers — all behind the [`ObsSink`] trait whose
//! default implementation is a no-op, so instrumented hot paths pay a
//! single branch when observability is off.
//!
//! ## Design
//!
//! * **Metrics** ([`MetricsRegistry`]) are lock-free atomics keyed by
//!   name in sorted maps, exported as Prometheus text
//!   ([`MetricsRegistry::prometheus_text`]). Counter and histogram
//!   updates are order-insensitive, so parallel stages (experiment
//!   preparation, scheme fan-out) may record freely.
//! * **Traces** ([`TraceRing`]) are bounded rings of structured
//!   [`TraceEvent`]s exported as JSON lines
//!   ([`TraceRing::to_jsonl`]). Producers that need *deterministic*
//!   traces (the serve engine) only emit from their serial event loop and
//!   stamp events with the **virtual** clock, so the JSONL output is
//!   byte-identical regardless of worker-thread count.
//! * **Sinks** ([`ObsSink`]) decouple instrumentation points from the
//!   backing store. [`NullSink`] drops everything; [`Recorder`] combines
//!   a registry and a ring. Deep components (the FISTA solver's caller,
//!   the trace cache) reach the process-wide sink through [`global`],
//!   which costs one atomic load plus one branch until a recorder is
//!   [`install`]ed.
//!
//! ```
//! use predvfs_obs::{ObsSink, Recorder, TraceEvent};
//!
//! let rec = Recorder::new(1024);
//! rec.counter_add("predvfs_jobs_total", 1);
//! rec.observe("predvfs_slack_seconds", 3.2e-3);
//! rec.emit(
//!     TraceEvent::new(0.0167, "sha", "job_done")
//!         .with_u64("job", 0)
//!         .with_bool("missed", false),
//! );
//! assert!(rec.registry().prometheus_text().contains("predvfs_jobs_total 1"));
//! assert!(rec.ring().to_jsonl().contains("\"event\":\"job_done\""));
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod kinds;
mod registry;
mod ring;
mod sink;
pub mod span;

pub use analyze::{AnalyzeError, JobTimeline, MissCause, StreamSummary, TraceAnalysis};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use ring::{merge_events, FieldValue, TraceEvent, TraceRing};
pub use sink::{global, install, recorder, NullSink, ObsSink, PhaseTimer, Recorder};
pub use span::{
    profiling_enabled, record_virtual, set_profiling, span, SelfProfile, SpanDomain, SpanGuard,
};

/// The process-wide [`SelfProfile`] (re-export of [`span::profile`]).
pub fn self_profile() -> &'static SelfProfile {
    span::profile()
}
