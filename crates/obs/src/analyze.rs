//! Offline analysis of serve-runtime JSONL traces.
//!
//! The serve engine emits one JSON object per event (see
//! [`crate::kinds`]); this module ingests that stream, reconstructs
//! per-job timelines, and renders a deterministic plain-text report:
//! per-stream slack quantiles, level residency, energy attribution, and
//! — the part a dashboard cannot do after the fact — **miss root-cause
//! classification**: every deadline miss is assigned exactly one cause
//! by a fixed precedence rule, so per-cause counts always sum to the
//! total misses. [`TraceAnalysis::to_perfetto`] additionally exports the
//! timelines as Chrome trace-event JSON for visual inspection in
//! Perfetto or `chrome://tracing`.
//!
//! Everything here is derived from the trace text alone (no shared state
//! with the engine), and every collection is keyed by `BTreeMap` or
//! sorted explicitly, so a given trace byte-produces one report.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::BufRead;

use crate::kinds;
use crate::span;

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeError {
    /// 1-based line number of the offending event.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AnalyzeError {}

/// A decoded flat-JSON field value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// One parsed trace line: the ordered fields of a flat JSON object.
#[derive(Debug, Clone, Default)]
struct Fields(Vec<(String, Value)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Num(v)) => Some(*v),
            _ => None,
        }
    }

    fn u64(&self, key: &str) -> Option<u64> {
        self.num(key).map(|v| v as u64)
    }

    fn str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}` with string / number /
/// bool / null values — the exact shape [`crate::TraceEvent::to_json`]
/// emits). Nested objects and arrays are rejected: the trace format is
/// flat by construction, and a parser that guesses would misattribute.
fn parse_flat_object(line: &str) -> Result<Fields, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}", i = *i));
        }
        *i += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*i) else {
                return Err("unterminated string".to_owned());
            };
            *i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = bytes.get(*i) else {
                        return Err("unterminated escape".to_owned());
                    };
                    *i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = line
                                .get(*i..*i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            *i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = *i - 1;
                    let mut end = *i;
                    while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(&line[start..end]);
                    *i = end;
                }
            }
        }
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{'".to_owned());
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        return Ok(Fields(fields));
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let value = match bytes.get(i) {
            Some(b'"') => Value::Str(parse_string(&mut i)?),
            Some(b't') if line[i..].starts_with("true") => {
                i += 4;
                Value::Bool(true)
            }
            Some(b'f') if line[i..].starts_with("false") => {
                i += 5;
                Value::Bool(false)
            }
            Some(b'n') if line[i..].starts_with("null") => {
                i += 4;
                Value::Null
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                let text = &line[start..i];
                Value::Num(
                    text.parse::<f64>()
                        .map_err(|_| format!("bad number {text:?}"))?,
                )
            }
            _ => {
                return Err(format!(
                    "unsupported value for key {key:?} (flat JSON only)"
                ))
            }
        };
        fields.push((key, value));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => break,
            _ => return Err("expected ',' or '}'".to_owned()),
        }
    }
    Ok(Fields(fields))
}

/// Why a deadline miss happened, by fixed precedence (first match wins),
/// so every miss lands in exactly one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissCause {
    /// The stream was quarantined: service ran in safe mode at the
    /// nominal level, deliberately trading misses for containment.
    QuarantineSafeMode,
    /// A non-switch injected fault hit this job (trace spike, slice
    /// corruption/timeout, clock jitter, arrival burst, spurious done).
    InjectedFault,
    /// A level switch was rejected, stalled, retried, or abandoned while
    /// serving this job.
    SwitchStall,
    /// The job waited in the admission queue long enough that service
    /// alone would have met the deadline.
    QueueingDelay,
    /// The execution-time prediction under-shot (or the controller was
    /// in its degraded fallback) and the chosen level was too slow.
    Mispredict,
    /// None of the above explains the miss.
    Unattributed,
}

impl MissCause {
    /// All causes in precedence (and report) order.
    pub const ALL: [MissCause; 6] = [
        MissCause::QuarantineSafeMode,
        MissCause::InjectedFault,
        MissCause::SwitchStall,
        MissCause::QueueingDelay,
        MissCause::Mispredict,
        MissCause::Unattributed,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MissCause::QuarantineSafeMode => "quarantine_safe_mode",
            MissCause::InjectedFault => "injected_fault",
            MissCause::SwitchStall => "switch_stall",
            MissCause::QueueingDelay => "queueing_delay",
            MissCause::Mispredict => "mispredict",
            MissCause::Unattributed => "unattributed",
        }
    }

    fn index(self) -> usize {
        MissCause::ALL
            .iter()
            .position(|&c| c == self)
            .expect("listed")
    }
}

/// One reconstructed job timeline.
#[derive(Debug, Clone)]
pub struct JobTimeline {
    /// Job index within its stream.
    pub job: u64,
    /// Arrival (admission) time, virtual seconds.
    pub arrival_s: f64,
    /// Completion time, virtual seconds.
    pub done_s: f64,
    /// Arrival-to-completion latency, seconds.
    pub response_s: f64,
    /// Time spent waiting in the admission queue, seconds.
    pub queue_s: f64,
    /// Relative deadline the job was served under, seconds.
    pub deadline_s: f64,
    /// Deadline slack (negative = missed), seconds.
    pub slack_s: f64,
    /// Whether the deadline was missed.
    pub missed: bool,
    /// Whether admission stretched the deadline.
    pub relaxed: bool,
    /// Whether the controller was in its degraded fallback.
    pub degraded: bool,
    /// Whether the deadline watchdog escalated the job mid-flight.
    pub escalated: bool,
    /// Whether the job ran in quarantine safe mode.
    pub safe_mode: bool,
    /// Level ordinal the job executed at.
    pub level: u64,
    /// Total job energy, picojoules.
    pub energy_pj: f64,
    /// Feature-slice share of the energy, picojoules.
    pub slice_pj: f64,
    /// Raw model prediction, cycles (absent in safe mode / PID).
    pub predicted_cycles: Option<f64>,
    /// Ground-truth cycles as served.
    pub actual_cycles: u64,
    /// Names of injected faults that fired on this job.
    pub faults: Vec<String>,
    /// Switch retries / abandons observed while serving this job.
    pub switch_events: u32,
    /// Root cause, populated for missed jobs.
    pub cause: Option<MissCause>,
}

impl JobTimeline {
    /// Applies the fixed-precedence classification. The if-else chain is
    /// the determinism argument: exactly one branch assigns.
    fn classify(&self) -> MissCause {
        let switch_fault = self
            .faults
            .iter()
            .any(|f| f == "switch_reject" || f == "switch_stall");
        let other_fault = self
            .faults
            .iter()
            .any(|f| f != "switch_reject" && f != "switch_stall");
        if self.safe_mode {
            MissCause::QuarantineSafeMode
        } else if other_fault {
            MissCause::InjectedFault
        } else if switch_fault || self.switch_events > 0 {
            MissCause::SwitchStall
        } else if self.queue_s > 0.0 && self.response_s - self.queue_s <= self.deadline_s {
            MissCause::QueueingDelay
        } else if self.degraded
            || self
                .predicted_cycles
                .is_some_and(|p| (self.actual_cycles as f64) > p)
        {
            MissCause::Mispredict
        } else {
            MissCause::Unattributed
        }
    }
}

/// Per-stream aggregation of a trace.
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    /// Stream name (the event scope).
    pub name: String,
    /// Arrivals observed.
    pub arrivals: usize,
    /// Jobs that completed service.
    pub jobs_done: usize,
    /// Completed jobs that missed their deadline.
    pub missed: usize,
    /// Arrivals dropped by the shed policy.
    pub shed: usize,
    /// Arrivals admitted with a stretched deadline.
    pub relaxed: usize,
    /// Injected faults that fired.
    pub faults: usize,
    /// Quarantine engagements.
    pub quarantines: usize,
    /// Total energy across completed jobs, picojoules.
    pub energy_pj: f64,
    /// Feature-slice share of that energy, picojoules.
    pub slice_pj: f64,
    /// Energy spent on jobs that went on to miss, picojoules.
    pub missed_energy_pj: f64,
    /// Miss counts by [`MissCause`] precedence order.
    pub cause_counts: [usize; 6],
    /// Completed-job timelines, job-ordered.
    pub jobs: Vec<JobTimeline>,
    /// `level → virtual seconds resident`, from switch events.
    pub residency_s: BTreeMap<u64, f64>,
    /// `level → completed jobs executed there`.
    pub level_jobs: BTreeMap<u64, usize>,
}

impl StreamSummary {
    /// Slack quantile over completed jobs by linear interpolation on the
    /// sorted samples (`None` when no jobs completed).
    pub fn slack_quantile(&self, q: f64) -> Option<f64> {
        let mut slack: Vec<f64> = self.jobs.iter().map(|j| j.slack_s).collect();
        if slack.is_empty() {
            return None;
        }
        slack.sort_by(|a, b| a.partial_cmp(b).expect("slack is finite"));
        let pos = q.clamp(0.0, 1.0) * (slack.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(slack[lo] + (slack[hi] - slack[lo]) * frac)
    }
}

/// A fully ingested trace, ready to report on.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Per-stream summaries, name-sorted.
    pub streams: BTreeMap<String, StreamSummary>,
    /// Events ingested (excluding the truncation meta event).
    pub events: usize,
    /// Events the producer's ring evicted before export, if its
    /// `trace_truncated` meta event was present.
    pub truncated_dropped: Option<u64>,
    /// Latest event timestamp, virtual seconds.
    pub horizon_s: f64,
}

/// Per-stream transient state while ingesting.
#[derive(Debug, Default)]
struct StreamScratch {
    /// `job → arrival time` for jobs whose completion is pending.
    arrivals: BTreeMap<u64, f64>,
    /// `job → fault kind names` fired on that job.
    faults: BTreeMap<u64, Vec<String>>,
    /// `job → switch retry/abandon count`.
    switches: BTreeMap<u64, u32>,
    /// `(time, level)` change points for residency.
    level_points: Vec<(f64, u64)>,
    /// Level before the first recorded switch.
    initial_level: Option<u64>,
}

impl TraceAnalysis {
    /// Ingests a JSONL trace (one event object per line; blank lines are
    /// skipped).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line. Unknown event kinds are ignored
    /// — forward compatibility — but a line that is not a flat JSON
    /// event object is an error, not a skip: silently dropping lines
    /// would corrupt every count downstream.
    pub fn from_jsonl(text: &str) -> Result<TraceAnalysis, AnalyzeError> {
        Self::from_reader(text.as_bytes())
    }

    /// Streaming variant of [`TraceAnalysis::from_jsonl`]: reads the
    /// trace line by line through one reused buffer, so resident memory
    /// tracks the analysis state (streams × jobs), not the file size —
    /// million-event traces ingest without ever holding the whole file.
    ///
    /// # Errors
    ///
    /// Same contract as [`TraceAnalysis::from_jsonl`]; an I/O failure is
    /// reported against the line at which the read stopped.
    pub fn from_reader<R: BufRead>(mut reader: R) -> Result<TraceAnalysis, AnalyzeError> {
        let ingest = span::span("analyze.ingest");
        let mut out = TraceAnalysis::default();
        let mut scratch: BTreeMap<String, StreamScratch> = BTreeMap::new();
        let mut line = String::new();
        let mut lineno = 0usize;
        loop {
            line.clear();
            lineno += 1;
            let n = reader.read_line(&mut line).map_err(|e| AnalyzeError {
                line: lineno,
                message: format!("read error: {e}"),
            })?;
            if n == 0 {
                break;
            }
            out.ingest_line(&mut scratch, lineno, line.trim_end_matches(['\r', '\n']))?;
        }
        drop(ingest);
        let _residency = span::span("analyze.residency");
        out.finish_residency(scratch);
        Ok(out)
    }

    /// Ingests one trace line (`lineno` is 1-based, for errors).
    fn ingest_line(
        &mut self,
        scratch: &mut BTreeMap<String, StreamScratch>,
        lineno: usize,
        line: &str,
    ) -> Result<(), AnalyzeError> {
        if line.trim().is_empty() {
            return Ok(());
        }
        {
            let fields = parse_flat_object(line).map_err(|message| AnalyzeError {
                line: lineno,
                message,
            })?;
            let err = |message: &str| AnalyzeError {
                line: lineno,
                message: message.to_owned(),
            };
            let t_s = fields.num("t_s").ok_or_else(|| err("missing t_s"))?;
            let scope = fields.str("scope").ok_or_else(|| err("missing scope"))?;
            let kind = fields.str("event").ok_or_else(|| err("missing event"))?;
            if kind == kinds::TRACE_TRUNCATED {
                let dropped = fields.u64("dropped").unwrap_or(0);
                self.truncated_dropped =
                    Some(self.truncated_dropped.unwrap_or(0).saturating_add(dropped));
                return Ok(());
            }
            self.events += 1;
            self.horizon_s = self.horizon_s.max(t_s);
            let stream = self
                .streams
                .entry(scope.to_owned())
                .or_insert_with(|| StreamSummary {
                    name: scope.to_owned(),
                    ..StreamSummary::default()
                });
            let sc = scratch.entry(scope.to_owned()).or_default();
            match kind {
                kinds::ARRIVAL => {
                    stream.arrivals += 1;
                    if let Some(job) = fields.u64("job") {
                        sc.arrivals.insert(job, t_s);
                    }
                }
                kinds::SHED => stream.shed += 1,
                kinds::RELAX => stream.relaxed += 1,
                kinds::FAULT => {
                    stream.faults += 1;
                    let fault = fields
                        .str("kind")
                        .ok_or_else(|| err("fault without kind"))?;
                    let job = fields.u64("job").ok_or_else(|| err("fault without job"))?;
                    sc.faults.entry(job).or_default().push(fault.to_owned());
                }
                kinds::SWITCH_RETRY | kinds::SWITCH_FAILED => {
                    let job = fields.u64("job").ok_or_else(|| err("switch without job"))?;
                    *sc.switches.entry(job).or_insert(0) += 1;
                }
                kinds::LEVEL_SWITCH | kinds::WATCHDOG_BOOST => {
                    if let (Some(from), Some(to)) =
                        (fields.u64("from_level"), fields.u64("to_level"))
                    {
                        if sc.initial_level.is_none() {
                            sc.initial_level = Some(from);
                        }
                        sc.level_points.push((t_s, to));
                    }
                    // A watchdog escalation also changes the level; the
                    // classification sees it through the job_done
                    // `escalated` flag, so nothing job-specific to track.
                }
                kinds::QUARANTINE if fields.bool_or("engaged", false) => {
                    stream.quarantines += 1;
                }
                kinds::JOB_DONE => {
                    let job = fields
                        .u64("job")
                        .ok_or_else(|| err("job_done without job"))?;
                    let response_s = fields
                        .num("response_s")
                        .ok_or_else(|| err("job_done without response_s"))?;
                    let slack_s = fields
                        .num("slack_s")
                        .ok_or_else(|| err("job_done without slack_s"))?;
                    // Older traces lack queue_s/deadline_s; derive what
                    // is derivable and default the rest conservatively.
                    let deadline_s = fields.num("deadline_s").unwrap_or(response_s + slack_s);
                    let queue_s = fields.num("queue_s").unwrap_or(0.0);
                    let arrival_s = sc.arrivals.remove(&job).unwrap_or(t_s - response_s);
                    let mut timeline = JobTimeline {
                        job,
                        arrival_s,
                        done_s: t_s,
                        response_s,
                        queue_s,
                        deadline_s,
                        slack_s,
                        missed: fields.bool_or("missed", false),
                        relaxed: fields.bool_or("relaxed", false),
                        degraded: fields.bool_or("degraded", false),
                        escalated: fields.bool_or("escalated", false),
                        safe_mode: fields.bool_or("safe_mode", false),
                        level: fields.u64("level").unwrap_or(0),
                        energy_pj: fields.num("energy_pj").unwrap_or(0.0),
                        slice_pj: fields.num("slice_pj").unwrap_or(0.0),
                        predicted_cycles: fields.num("predicted_cycles"),
                        actual_cycles: fields.u64("actual_cycles").unwrap_or(0),
                        faults: sc.faults.remove(&job).unwrap_or_default(),
                        switch_events: sc.switches.remove(&job).unwrap_or(0),
                        cause: None,
                    };
                    stream.jobs_done += 1;
                    stream.energy_pj += timeline.energy_pj;
                    stream.slice_pj += timeline.slice_pj;
                    *stream.level_jobs.entry(timeline.level).or_insert(0) += 1;
                    if timeline.missed {
                        stream.missed += 1;
                        stream.missed_energy_pj += timeline.energy_pj;
                        let cause = timeline.classify();
                        timeline.cause = Some(cause);
                        stream.cause_counts[cause.index()] += 1;
                    }
                    stream.jobs.push(timeline);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Level residency: walks each stream's change points over
    /// `[0, horizon]` once ingestion is complete.
    fn finish_residency(&mut self, scratch: BTreeMap<String, StreamScratch>) {
        for (name, sc) in scratch {
            let stream = self.streams.get_mut(&name).expect("scratch implies stream");
            let start_level = sc
                .initial_level
                .or_else(|| stream.jobs.first().map(|j| j.level));
            let Some(start_level) = start_level else {
                continue;
            };
            let mut level = start_level;
            let mut t = 0.0f64;
            for &(at, to) in &sc.level_points {
                *stream.residency_s.entry(level).or_insert(0.0) += (at - t).max(0.0);
                level = to;
                t = at;
            }
            *stream.residency_s.entry(level).or_insert(0.0) += (self.horizon_s - t).max(0.0);
        }
    }

    /// Total deadline misses across streams.
    pub fn total_misses(&self) -> usize {
        self.streams.values().map(|s| s.missed).sum()
    }

    /// Renders the deterministic plain-text report.
    pub fn report(&self) -> String {
        let _span = span::span("analyze.report");
        let mut out = String::new();
        let _ = writeln!(out, "# trace analysis");
        let _ = writeln!(
            out,
            "events: {}  streams: {}  horizon_s: {:.6}",
            self.events,
            self.streams.len(),
            self.horizon_s
        );
        if let Some(dropped) = self.truncated_dropped {
            let _ = writeln!(
                out,
                "WARNING: trace truncated at the source ({dropped} events evicted); \
                 counts below undercount the full run"
            );
        }
        let total_misses = self.total_misses();
        let mut total_causes = [0usize; 6];
        for s in self.streams.values() {
            for (acc, c) in total_causes.iter_mut().zip(s.cause_counts.iter()) {
                *acc += c;
            }
        }
        let _ = writeln!(out, "\n## miss root causes (all streams)");
        let _ = writeln!(out, "misses: {total_misses}");
        for cause in MissCause::ALL {
            let _ = writeln!(
                out,
                "  {:<22} {}",
                cause.name(),
                total_causes[cause.index()]
            );
        }
        for s in self.streams.values() {
            let _ = writeln!(out, "\n## stream {}", s.name);
            let _ = writeln!(
                out,
                "arrivals: {}  done: {}  missed: {}  shed: {}  relaxed: {}  \
                 faults: {}  quarantines: {}",
                s.arrivals, s.jobs_done, s.missed, s.shed, s.relaxed, s.faults, s.quarantines
            );
            if let (Some(p50), Some(p95), Some(p99)) = (
                s.slack_quantile(0.5),
                s.slack_quantile(0.05),
                s.slack_quantile(0.01),
            ) {
                // Slack is "good when high": the tail quantiles of
                // interest are the *low* ones (worst 5 % / 1 %).
                let _ = writeln!(
                    out,
                    "slack_s: p50={p50:.6}  worst5%={p95:.6}  worst1%={p99:.6}"
                );
            }
            let _ = writeln!(
                out,
                "energy_pj: total={:.3}  slice={:.3} ({:.1}%)  on_missed={:.3} ({:.1}%)",
                s.energy_pj,
                s.slice_pj,
                percent(s.slice_pj, s.energy_pj),
                s.missed_energy_pj,
                percent(s.missed_energy_pj, s.energy_pj),
            );
            if !s.residency_s.is_empty() {
                let total: f64 = s.residency_s.values().sum();
                let _ = writeln!(out, "level residency:");
                for (level, dwell) in &s.residency_s {
                    let _ = writeln!(
                        out,
                        "  level {:<3} {:>12.6}s  {:>5.1}%  jobs {}",
                        level,
                        dwell,
                        percent(*dwell, total),
                        s.level_jobs.get(level).copied().unwrap_or(0)
                    );
                }
            }
            if s.missed > 0 {
                let _ = writeln!(out, "miss causes:");
                for cause in MissCause::ALL {
                    let n = s.cause_counts[cause.index()];
                    if n > 0 {
                        let _ = writeln!(out, "  {:<22} {n}", cause.name());
                    }
                }
                let missed_jobs: Vec<String> = s
                    .jobs
                    .iter()
                    .filter(|j| j.missed)
                    .map(|j| {
                        format!(
                            "job {} t={:.6} cause={}",
                            j.job,
                            j.done_s,
                            j.cause.map_or("?", MissCause::name)
                        )
                    })
                    .collect();
                for line in missed_jobs {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }

    /// Exports the reconstructed timelines as Chrome trace-event JSON
    /// (the format Perfetto and `chrome://tracing` load): one complete
    /// (`ph:"X"`) slice per job on its stream's track, plus instant
    /// events for faults and alert edges. Timestamps are microseconds of
    /// virtual time.
    pub fn to_perfetto(&self) -> String {
        let _span = span::span("analyze.perfetto");
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, item: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&item);
        };
        for (tid, stream) in self.streams.values().enumerate() {
            let tid = tid + 1;
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    stream.name
                ),
            );
            for job in &stream.jobs {
                let cause = job
                    .cause
                    .map_or(String::new(), |c| format!(",\"cause\":\"{}\"", c.name()));
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"job {}\",\"cat\":\"{}\",\"ph\":\"X\",\
                         \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{tid},\
                         \"args\":{{\"missed\":{},\"level\":{},\"energy_pj\":{:.3}{cause}}}}}",
                        job.job,
                        if job.missed { "miss" } else { "ok" },
                        job.arrival_s * 1e6,
                        job.response_s * 1e6,
                        job.missed,
                        job.level,
                        job.energy_pj,
                    ),
                );
                for fault in &job.faults {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{fault}\",\"cat\":\"fault\",\"ph\":\"i\",\
                             \"ts\":{:.3},\"pid\":0,\"tid\":{tid},\"s\":\"t\"}}",
                            job.arrival_s * 1e6,
                        ),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn percent(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn done(
        t: f64,
        scope: &str,
        job: u64,
        missed: bool,
        queue_s: f64,
        deadline_s: f64,
    ) -> TraceEvent {
        let response_s = queue_s + 0.001; // queue wait plus 1 ms service
        TraceEvent::new(t, scope, kinds::JOB_DONE)
            .with_u64("job", job)
            .with_f64("response_s", response_s)
            .with_f64("queue_s", queue_s)
            .with_f64("deadline_s", deadline_s)
            .with_f64("slack_s", deadline_s - response_s)
            .with_bool("missed", missed)
            .with_bool("relaxed", false)
            .with_bool("degraded", false)
            .with_u64("level", 2)
            .with_f64("volts", 0.8)
            .with_f64("energy_pj", 10.0)
            .with_f64("slice_pj", 1.0)
            .with_u64("actual_cycles", 1000)
    }

    fn jsonl(events: &[TraceEvent]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    #[test]
    fn parser_round_trips_event_json() {
        let e = TraceEvent::new(1.5, "sha", "job_done")
            .with_u64("job", 3)
            .with_f64("slack_s", -2.5e-3)
            .with_bool("missed", true)
            .with_str("note", "a\"b\\c");
        let f = parse_flat_object(&e.to_json()).unwrap();
        assert_eq!(f.num("t_s"), Some(1.5));
        assert_eq!(f.str("scope"), Some("sha"));
        assert_eq!(f.u64("job"), Some(3));
        assert_eq!(f.num("slack_s"), Some(-2.5e-3));
        assert!(f.bool_or("missed", false));
        assert_eq!(f.str("note"), Some("a\"b\\c"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"k\":").is_err());
        assert!(parse_flat_object("{\"k\":[1]}").is_err());
        let analysis = TraceAnalysis::from_jsonl("{\"broken\"\n");
        assert!(analysis.is_err());
        assert_eq!(analysis.unwrap_err().line, 1);
    }

    #[test]
    fn classification_precedence_is_exhaustive_and_exclusive() {
        let mk = |safe_mode, faults: &[&str], switches, queue_s, degraded| JobTimeline {
            job: 0,
            arrival_s: 0.0,
            done_s: 0.02,
            response_s: 0.02,
            queue_s,
            deadline_s: 0.0167,
            slack_s: 0.0167 - 0.02,
            missed: true,
            relaxed: false,
            degraded,
            escalated: false,
            safe_mode,
            level: 0,
            energy_pj: 0.0,
            slice_pj: 0.0,
            predicted_cycles: Some(100.0),
            actual_cycles: 200,
            faults: faults.iter().map(|s| (*s).to_owned()).collect(),
            switch_events: switches,
            cause: None,
        };
        // Safe mode beats everything, even co-occurring faults.
        assert_eq!(
            mk(true, &["trace_spike"], 1, 0.01, true).classify(),
            MissCause::QuarantineSafeMode
        );
        assert_eq!(
            mk(false, &["trace_spike"], 1, 0.01, true).classify(),
            MissCause::InjectedFault
        );
        assert_eq!(
            mk(false, &["switch_reject"], 0, 0.01, true).classify(),
            MissCause::SwitchStall
        );
        assert_eq!(
            mk(false, &[], 2, 0.01, true).classify(),
            MissCause::SwitchStall
        );
        // Queueing: service alone (0.02 − 0.01 = 0.01) fits the 0.0167
        // deadline, so the wait is what killed it.
        assert_eq!(
            mk(false, &[], 0, 0.01, false).classify(),
            MissCause::QueueingDelay
        );
        // No queue, actual above predicted: the model under-shot.
        assert_eq!(
            mk(false, &[], 0, 0.0, false).classify(),
            MissCause::Mispredict
        );
        let mut covered = mk(false, &[], 0, 0.0, false);
        covered.predicted_cycles = Some(300.0);
        assert_eq!(covered.classify(), MissCause::Unattributed);
    }

    #[test]
    fn per_class_counts_sum_to_total_misses() {
        let events = vec![
            TraceEvent::new(0.0, "sha", kinds::ARRIVAL).with_u64("job", 0),
            TraceEvent::new(0.001, "sha", kinds::FAULT)
                .with_str("kind", "trace_spike")
                .with_u64("job", 0),
            done(0.02, "sha", 0, true, 0.0, 0.0167),
            TraceEvent::new(0.02, "sha", kinds::ARRIVAL).with_u64("job", 1),
            done(0.06, "sha", 1, true, 0.025, 0.0167),
            TraceEvent::new(0.06, "sha", kinds::ARRIVAL).with_u64("job", 2),
            done(0.08, "sha", 2, false, 0.0, 0.0167),
            TraceEvent::new(0.0, "md", kinds::ARRIVAL).with_u64("job", 0),
            done(0.03, "md", 0, true, 0.0, 0.0167),
        ];
        let a = TraceAnalysis::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(a.total_misses(), 3);
        let class_sum: usize = a.streams.values().flat_map(|s| s.cause_counts.iter()).sum();
        assert_eq!(
            class_sum,
            a.total_misses(),
            "every miss has exactly one class"
        );
        let sha = &a.streams["sha"];
        assert_eq!(sha.cause_counts[MissCause::InjectedFault.index()], 1);
        assert_eq!(sha.cause_counts[MissCause::QueueingDelay.index()], 1);
        assert_eq!(sha.jobs_done, 3);
        assert_eq!(sha.missed, 2);
    }

    #[test]
    fn report_is_deterministic_and_notes_truncation() {
        let mut events = vec![
            TraceEvent::new(0.0, "sha", kinds::ARRIVAL).with_u64("job", 0),
            done(0.02, "sha", 0, true, 0.0, 0.0167),
        ];
        events.push(
            TraceEvent::new(0.02, "trace", kinds::TRACE_TRUNCATED)
                .with_u64("dropped", 7)
                .with_u64("kept", 2),
        );
        let text = jsonl(&events);
        let a = TraceAnalysis::from_jsonl(&text).unwrap();
        let b = TraceAnalysis::from_jsonl(&text).unwrap();
        assert_eq!(a.report(), b.report());
        assert_eq!(a.truncated_dropped, Some(7));
        assert!(a.report().contains("WARNING: trace truncated"));
        assert_eq!(a.events, 2, "meta event is not a real event");
    }

    #[test]
    fn level_residency_covers_the_horizon() {
        let events = vec![
            TraceEvent::new(0.0, "sha", kinds::ARRIVAL).with_u64("job", 0),
            TraceEvent::new(0.25, "sha", kinds::LEVEL_SWITCH)
                .with_u64("from_level", 3)
                .with_u64("to_level", 1),
            done(0.5, "sha", 0, false, 0.0, 1.0),
            TraceEvent::new(0.75, "sha", kinds::LEVEL_SWITCH)
                .with_u64("from_level", 1)
                .with_u64("to_level", 3),
            TraceEvent::new(1.0, "sha", kinds::ARRIVAL).with_u64("job", 1),
            done(1.0, "sha", 1, false, 0.0, 1.0),
        ];
        let a = TraceAnalysis::from_jsonl(&jsonl(&events)).unwrap();
        let r = &a.streams["sha"].residency_s;
        assert!(
            (r[&3] - 0.5).abs() < 1e-12,
            "0-0.25 and 0.75-1.0 at level 3"
        );
        assert!((r[&1] - 0.5).abs() < 1e-12, "0.25-0.75 at level 1");
        let total: f64 = r.values().sum();
        assert!((total - a.horizon_s).abs() < 1e-12);
    }

    #[test]
    fn perfetto_export_is_json_with_one_slice_per_job() {
        let events = vec![
            TraceEvent::new(0.0, "sha", kinds::ARRIVAL).with_u64("job", 0),
            done(0.02, "sha", 0, true, 0.0, 0.0167),
        ];
        let a = TraceAnalysis::from_jsonl(&jsonl(&events)).unwrap();
        let p = a.to_perfetto();
        assert!(p.starts_with("{\"traceEvents\":["));
        assert!(p.ends_with("]}"));
        assert_eq!(p.matches("\"ph\":\"X\"").count(), 1);
        assert!(p.contains("\"cat\":\"miss\""));
        assert!(p.contains("\"thread_name\""));
    }
}
