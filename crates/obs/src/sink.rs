//! The [`ObsSink`] trait, the recording implementation, and the
//! process-wide sink used by components too deep to thread a sink
//! through (the trainer, the trace cache).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::registry::{Histogram, MetricsRegistry};
use crate::ring::{TraceEvent, TraceRing};

/// Where instrumentation points send their observations.
///
/// Every method defaults to a no-op, so `impl ObsSink for NullSink {}`
/// is the whole disabled path; instrumented code should guard any
/// payload *construction* (string formatting, event building) behind
/// [`ObsSink::enabled`], which is the single branch the hot path pays
/// when observability is off.
pub trait ObsSink: Sync {
    /// Whether observations are recorded at all. Callers may skip
    /// building payloads when this is false.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the counter named `name`.
    fn counter_add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge named `name`.
    fn gauge_set(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Adds `delta` to the counter series `name{labels}`.
    fn counter_add_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let _ = (name, labels, delta);
    }

    /// Sets the gauge series `name{labels}`.
    fn gauge_set_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = (name, labels, value);
    }

    /// Records `value` into the histogram named `name`.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Appends a structured trace event.
    fn emit(&self, event: TraceEvent) {
        let _ = event;
    }

    /// Records a phase duration (wall-clock nanoseconds) under
    /// `{name}_seconds`.
    fn phase_ns(&self, name: &str, ns: u64) {
        let _ = (name, ns);
    }
}

/// The disabled sink: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A recording sink: a [`MetricsRegistry`] plus a bounded [`TraceRing`].
pub struct Recorder {
    registry: MetricsRegistry,
    ring: TraceRing,
}

impl Recorder {
    /// A recorder whose trace ring holds `trace_capacity` events.
    pub fn new(trace_capacity: usize) -> Recorder {
        Recorder {
            registry: MetricsRegistry::new(),
            ring: TraceRing::new(trace_capacity),
        }
    }

    /// The metrics half.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The tracing half.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }
}

impl ObsSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn counter_add_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.registry.counter_with(name, labels).add(delta);
    }

    fn gauge_set_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.registry.gauge_with(name, labels).set(value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.registry
            .histogram(name, &Histogram::default_bounds())
            .observe(value);
    }

    fn emit(&self, event: TraceEvent) {
        self.ring.push(event);
    }

    fn phase_ns(&self, name: &str, ns: u64) {
        self.observe(&format!("{name}_seconds"), ns as f64 * 1e-9);
    }
}

/// Measures wall-clock time from construction to drop and reports it to
/// the sink as a phase duration.
///
/// Follows the span layer's zero-cost-when-off rule: when the sink is
/// disabled the timer holds no state at all — the clock is never read
/// and `Drop` emits nothing, so the disabled path is one `enabled()`
/// branch at construction.
pub struct PhaseTimer<'a> {
    inner: Option<PhaseTimerInner<'a>>,
}

struct PhaseTimerInner<'a> {
    sink: &'a dyn ObsSink,
    name: &'a str,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    /// Starts timing `name` against `sink` (free when the sink is off).
    pub fn start(sink: &'a dyn ObsSink, name: &'a str) -> PhaseTimer<'a> {
        PhaseTimer {
            inner: sink.enabled().then(|| PhaseTimerInner {
                sink,
                name,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.sink.phase_ns(inner.name, ns);
        }
    }
}

static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();
static NULL: NullSink = NullSink;

/// Installs `recorder` as the process-wide sink. Returns false (leaving
/// the existing sink in place) if one was already installed.
pub fn install(rec: Arc<Recorder>) -> bool {
    GLOBAL.set(rec).is_ok()
}

/// The process-wide sink: the installed [`Recorder`], or a no-op until
/// [`install`] is called. Costs one atomic load plus one branch.
pub fn global() -> &'static dyn ObsSink {
    match GLOBAL.get() {
        Some(rec) => rec.as_ref(),
        None => &NULL,
    }
}

/// The installed recorder, if any (for exporters).
pub fn recorder() -> Option<&'static Arc<Recorder>> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.counter_add("c", 1);
        sink.emit(TraceEvent::new(0.0, "s", "e"));
        // Nothing to assert beyond "does not panic": there is no state.
    }

    #[test]
    fn recorder_routes_all_channels() {
        let rec = Recorder::new(8);
        assert!(rec.enabled());
        rec.counter_add("jobs_total", 2);
        rec.gauge_set("objective", 0.5);
        rec.counter_add_with("stream_jobs_total", &[("stream", "sha")], 3);
        rec.gauge_set_with("burn", &[("stream", "sha")], 1.5);
        rec.observe("slack_seconds", 1e-3);
        rec.phase_ns("fit", 2_000_000_000);
        rec.emit(TraceEvent::new(1.0, "sha", "arrival"));
        assert_eq!(rec.registry().counter("jobs_total").get(), 2);
        assert_eq!(rec.registry().gauge("objective").get(), 0.5);
        assert_eq!(
            rec.registry()
                .counter_with("stream_jobs_total", &[("stream", "sha")])
                .get(),
            3
        );
        assert_eq!(
            rec.registry()
                .gauge_with("burn", &[("stream", "sha")])
                .get(),
            1.5
        );
        let summaries = rec.registry().histogram_summaries();
        assert!(summaries
            .iter()
            .any(|(n, c, _)| n == "slack_seconds" && *c == 1));
        assert!(summaries
            .iter()
            .any(|(n, c, s)| n == "fit_seconds" && *c == 1 && (*s - 2.0).abs() < 1e-9));
        assert_eq!(rec.ring().len(), 1);
    }

    #[test]
    fn phase_timer_records_on_drop_only_when_enabled() {
        let rec = Recorder::new(1);
        {
            let _t = PhaseTimer::start(&rec, "phase");
        }
        assert!(rec
            .registry()
            .histogram_summaries()
            .iter()
            .any(|(n, c, _)| n == "phase_seconds" && *c == 1));
        {
            let _t = PhaseTimer::start(&NullSink, "phase");
        } // no-op; nothing observable, but must not panic
    }

    #[test]
    fn phase_timer_holds_no_state_when_disabled() {
        // The zero-cost-when-off contract: a disabled timer never read
        // the clock and has nothing to emit on drop.
        let t = PhaseTimer::start(&NullSink, "phase");
        assert!(t.inner.is_none());
        let rec = Recorder::new(1);
        let t = PhaseTimer::start(&rec, "phase");
        assert!(t.inner.is_some());
    }

    #[test]
    fn global_defaults_to_noop() {
        // Installation is covered by the CLI integration path; this test
        // only pins the uninstalled default (tests share the process, so
        // installing here would leak into other tests).
        if recorder().is_none() {
            assert!(!global().enabled());
        }
    }
}
