//! Well-known trace-event kind names.
//!
//! The serve engine (and anything that post-processes its JSONL traces)
//! refers to event kinds through these constants instead of scattered
//! string literals, so a renamed event is a compile error rather than a
//! silently broken dashboard query.

/// A job entered admission.
pub const ARRIVAL: &str = "arrival";
/// An arrival was dropped by the shed policy.
pub const SHED: &str = "shed";
/// An arrival was admitted with a stretched deadline.
pub const RELAX: &str = "relax";
/// The feature slice finished.
pub const SLICE_DONE: &str = "slice_done";
/// The regulator settled at a new operating point.
pub const LEVEL_SWITCH: &str = "level_switch";
/// A job completed service.
pub const JOB_DONE: &str = "job_done";
/// An adaptive controller engaged or cleared its drift fallback.
pub const DRIFT_FALLBACK: &str = "drift_fallback";
/// An adaptive controller installed an online refit.
pub const REFIT: &str = "refit";
/// A fault-injection plan fired at some site.
pub const FAULT: &str = "fault";
/// The deadline watchdog escalated an in-flight job.
pub const WATCHDOG_BOOST: &str = "watchdog_boost";
/// The deadline watchdog requested a budgeted escalation (sharded tier:
/// the grant decision belongs to the coordinator, not the shard).
pub const BOOST_REQUEST: &str = "boost_request";
/// A rejected level switch was retried with backoff.
pub const SWITCH_RETRY: &str = "switch_retry";
/// A level switch was abandoned after exhausting its retries.
pub const SWITCH_FAILED: &str = "switch_failed";
/// A stream entered or left quarantine (safe mode).
pub const QUARANTINE: &str = "quarantine";
/// The engine detected an inconsistent event it contained.
pub const INTERNAL_ERROR: &str = "internal_error";
/// Prediction-quality coverage fell below the calibration floor.
pub const CALIBRATION_ALERT: &str = "calibration_alert";
/// A stream's multi-window SLO burn rate engaged or cleared its alert.
pub const SLO_BURN: &str = "slo_burn";
/// Meta event appended at export when the trace ring evicted events.
pub const TRACE_TRUNCATED: &str = "trace_truncated";
/// A shard persisted an epoch-boundary checkpoint of its full state.
pub const CHECKPOINT: &str = "checkpoint";
/// A shard lost its in-memory state during an epoch (injected crash).
pub const SHARD_CRASH: &str = "shard_crash";
/// A crashed shard finished rebuilding from checkpoint + journal replay.
pub const RECOVER: &str = "recover";
/// A shard was slow reaching an epoch barrier (observational fault).
pub const EPOCH_STALL: &str = "epoch_stall";
/// A dropped migration transfer was retransmitted from the retained copy.
pub const TRANSFER_RETRANSMIT: &str = "transfer_retransmit";
