//! Hierarchical span profiling: scoped timers that build deterministic
//! span trees, aggregated into a process-wide [`SelfProfile`].
//!
//! ## Model
//!
//! A [`SpanGuard`] measures wall time from construction to drop and
//! attributes it to a node in a per-thread span tree; the node's position
//! is determined by the guard nesting (a thread-local parent stack), so
//! `span("epoch") → span("transfer")` produces the path `epoch;transfer`.
//! When a thread's outermost guard drops, the thread's tree is merged
//! into the global [`SelfProfile`] (one short mutex hold per *root* span,
//! never per span), which keeps hot loops lock-free.
//!
//! Two time domains are kept strictly apart:
//!
//! * **Wall** spans ([`SpanGuard`]) measure host wall-clock time. Their
//!   durations vary run to run; their *structure* (paths, counts) does
//!   not.
//! * **Virtual** spans ([`record_virtual`]) carry durations measured on a
//!   producer's virtual clock (e.g. the serve engine's). They are fully
//!   deterministic: for a deterministic workload the virtual collapsed
//!   output is byte-identical across thread and shard counts, which the
//!   determinism suites pin.
//!
//! ## Cost discipline
//!
//! Profiling follows the same no-op-default rule as
//! [`ObsSink`](crate::ObsSink): until [`set_profiling`]`(true)` is
//! called, entering a span is **one relaxed atomic load** — no
//! `Instant::now()`, no thread-local access, no allocation — and the
//! guard's `Drop` does nothing. `BENCH_obs.json` records the measured
//! disabled-path overhead on the serve hot path (budget: < 1%).
//!
//! ## Exports
//!
//! [`SelfProfile::collapsed`] renders the classic collapsed-stack
//! flamegraph text format (`a;b;c <self-nanoseconds>` per line, sorted),
//! [`SelfProfile::perfetto`] renders Chrome trace-event JSON (synthetic
//! timeline laid out from the aggregate tree) for Perfetto, and
//! [`SelfProfile::report`] renders a plain-text table.
//!
//! ```
//! use predvfs_obs::span;
//!
//! span::profile().reset();
//! span::set_profiling(true);
//! {
//!     let _outer = span::span("fit");
//!     let _inner = span::span("iteration");
//! }
//! span::set_profiling(false);
//! let folded = span::profile().collapsed(span::SpanDomain::Wall);
//! assert!(folded.contains("fit;iteration "));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Process-wide profiling switch (off by default).
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns span profiling on or off for the whole process.
///
/// Spans entered while profiling is off are inert forever (toggling the
/// switch mid-span does not resurrect them); spans entered while it is
/// on record normally even if the switch is cleared before they drop.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether span profiling is currently enabled. One relaxed atomic load:
/// this is the single branch a disabled span callsite pays.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Which clock a span tree's durations were measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanDomain {
    /// Host wall-clock time ([`SpanGuard`]).
    Wall,
    /// Producer-supplied virtual time ([`record_virtual`]); deterministic
    /// for deterministic workloads.
    Virtual,
}

/// One aggregated node of a span tree: call count, total (inclusive)
/// nanoseconds, total bytes allocated (zero unless the `alloc-profile`
/// feature is enabled), and children keyed by span name.
#[derive(Debug, Default)]
struct SpanNode {
    count: u64,
    ns: u64,
    bytes: u64,
    children: BTreeMap<&'static str, SpanNode>,
}

/// A `SpanNode` literal usable in `const` context.
const EMPTY_NODE: SpanNode = SpanNode {
    count: 0,
    ns: 0,
    bytes: 0,
    children: BTreeMap::new(),
};

/// The process-wide aggregated profile: one span tree per
/// [`SpanDomain`]. Obtain it with [`profile`].
pub struct SelfProfile {
    wall: Mutex<SpanNode>,
    virt: Mutex<SpanNode>,
}

static PROFILE: SelfProfile = SelfProfile {
    wall: Mutex::new(EMPTY_NODE),
    virt: Mutex::new(EMPTY_NODE),
};

/// The process-wide [`SelfProfile`].
pub fn profile() -> &'static SelfProfile {
    &PROFILE
}

// ---------------------------------------------------------------------
// Thread-local span collection.

/// One node of a thread's private span tree. Children are kept as a
/// small index vector (trees are shallow and narrow, so a linear name
/// scan beats map overhead on the hot path).
struct LocalNode {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    ns: u64,
    bytes: u64,
}

struct LocalTree {
    /// Arena; index 0 is the synthetic root.
    nodes: Vec<LocalNode>,
    /// Indices of the currently open spans, outermost first.
    stack: Vec<usize>,
}

impl LocalTree {
    fn new() -> LocalTree {
        LocalTree {
            nodes: vec![LocalNode {
                name: "",
                children: Vec::new(),
                count: 0,
                ns: 0,
                bytes: 0,
            }],
            stack: Vec::new(),
        }
    }

    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(0);
        let mut idx = None;
        for &c in &self.nodes[parent].children {
            if self.nodes[c].name == name {
                idx = Some(c);
                break;
            }
        }
        let idx = idx.unwrap_or_else(|| {
            let i = self.nodes.len();
            self.nodes.push(LocalNode {
                name,
                children: Vec::new(),
                count: 0,
                ns: 0,
                bytes: 0,
            });
            self.nodes[parent].children.push(i);
            i
        });
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, node: usize, ns: u64, bytes: u64) {
        // Unwind to our frame. Guards drop in reverse construction order
        // (including during panic unwind), so normally `node` is the
        // top; frames above it can only come from leaked guards and are
        // closed with a count but no time (their start is unknown).
        while let Some(top) = self.stack.pop() {
            if top == node {
                break;
            }
            self.nodes[top].count += 1;
        }
        let n = &mut self.nodes[node];
        n.count = n.count.saturating_add(1);
        n.ns = n.ns.saturating_add(ns);
        n.bytes = n.bytes.saturating_add(bytes);
        if self.stack.is_empty() {
            self.flush();
        }
    }

    /// Merges the accumulated counts into the global wall tree and zeroes
    /// them (node structure is kept so re-entry allocates nothing).
    fn flush(&mut self) {
        let mut g = lock(&PROFILE.wall);
        merge_into(&self.nodes, 0, &mut g);
        drop(g);
        for n in &mut self.nodes {
            n.count = 0;
            n.ns = 0;
            n.bytes = 0;
        }
    }
}

fn subtree_live(nodes: &[LocalNode], idx: usize) -> bool {
    nodes[idx].count > 0 || nodes[idx].children.iter().any(|&c| subtree_live(nodes, c))
}

fn merge_into(nodes: &[LocalNode], idx: usize, g: &mut SpanNode) {
    for &c in &nodes[idx].children {
        if !subtree_live(nodes, c) {
            continue;
        }
        let child = &nodes[c];
        let gc = g.children.entry(child.name).or_default();
        gc.count = gc.count.saturating_add(child.count);
        gc.ns = gc.ns.saturating_add(child.ns);
        gc.bytes = gc.bytes.saturating_add(child.bytes);
        merge_into(nodes, c, gc);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalTree> = RefCell::new(LocalTree::new());
}

/// Recovers from poisoning: span trees are add-only aggregates, so a
/// snapshot abandoned by a panicking flusher is still consistent.
fn lock(m: &Mutex<SpanNode>) -> MutexGuard<'_, SpanNode> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Guards and recording.

/// A scoped wall-clock span: measures from construction to drop and
/// attributes the time to the node named `name` under the thread's
/// current span stack. Inert (no clock read, no thread-local access)
/// when profiling is disabled at construction.
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

struct GuardInner {
    node: usize,
    start: Instant,
    bytes0: u64,
}

impl SpanGuard {
    /// Opens a span named `name`. `name` should be a literal: it is the
    /// tree key, and the hot path never allocates for it.
    ///
    /// Both halves of the guard keep the disabled path branch-and-load
    /// only: the enabled open/close bodies are outlined `#[cold]` so a
    /// callsite in a hot loop inlines to a relaxed load, a predicted
    /// branch, and a `None`.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !profiling_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(GuardInner::open(name)),
        }
    }

    /// An inert guard that records nothing. For callsites that check
    /// [`profiling_enabled`] themselves (e.g. to also pick a span name):
    /// the disabled arm gets a guard of the same type without paying a
    /// second atomic load inside [`SpanGuard::enter`].
    #[inline]
    pub const fn inert() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// Whether this guard is actually recording (profiling was enabled
    /// when it was constructed).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl GuardInner {
    #[cold]
    fn open(name: &'static str) -> GuardInner {
        GuardInner {
            node: LOCAL.with(|l| l.borrow_mut().enter(name)),
            start: Instant::now(),
            bytes0: thread_allocated_bytes(),
        }
    }

    #[cold]
    fn close(self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let bytes = thread_allocated_bytes().saturating_sub(self.bytes0);
        // A guard may outlive its thread-local tree only during thread
        // teardown; losing that one span is acceptable.
        let _ = LOCAL.try_with(|l| l.borrow_mut().exit(self.node, ns, bytes));
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.close();
        }
    }
}

/// Shorthand for [`SpanGuard::enter`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Records one occurrence of the virtual-clock span at `path` lasting
/// `seconds` of virtual time (clamped at zero; non-finite records as
/// zero). Virtual spans carry their full path explicitly instead of
/// using the thread's wall stack, so their trees are identical no matter
/// how work was spread across threads or shards.
///
/// No-op unless profiling is enabled. Callers on deterministic hot paths
/// should additionally gate on their sink being enabled so replay paths
/// (which run against a null sink) never double-record.
pub fn record_virtual(path: &[&'static str], seconds: f64) {
    if !profiling_enabled() || path.is_empty() {
        return;
    }
    let ns = if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9).round() as u64
    } else {
        0
    };
    let mut g = lock(&PROFILE.virt);
    let mut node: &mut SpanNode = &mut g;
    for seg in path {
        node = node.children.entry(seg).or_default();
    }
    node.count = node.count.saturating_add(1);
    node.ns = node.ns.saturating_add(ns);
}

// ---------------------------------------------------------------------
// Exports.

impl SelfProfile {
    fn tree(&self, domain: SpanDomain) -> &Mutex<SpanNode> {
        match domain {
            SpanDomain::Wall => &self.wall,
            SpanDomain::Virtual => &self.virt,
        }
    }

    /// Clears both domains' aggregated trees. Open spans on other
    /// threads flush whenever their root guard drops, so reset between
    /// runs only while no spans are in flight.
    pub fn reset(&self) {
        lock(&self.wall).children.clear();
        lock(&self.virt).children.clear();
    }

    /// Total recorded calls across all span paths in one domain — the
    /// denominator for overhead accounting (spans per unit of work).
    pub fn total_calls(&self, domain: SpanDomain) -> u64 {
        fn sum(node: &SpanNode) -> u64 {
            node.children.values().fold(0u64, |a, c| {
                a.saturating_add(c.count).saturating_add(sum(c))
            })
        }
        sum(&lock(self.tree(domain)))
    }

    /// Renders one domain in the collapsed-stack flamegraph format: one
    /// line per recorded span path, `a;b;c <self-nanoseconds>`, in
    /// lexicographic path order. Self time is the span's inclusive time
    /// minus its children's (clamped at zero), so the rendered values
    /// sum to total root time — exactly what `flamegraph.pl` / inferno
    /// expect. For the virtual domain the output is deterministic:
    /// byte-identical across thread and shard counts.
    pub fn collapsed(&self, domain: SpanDomain) -> String {
        let root = lock(self.tree(domain));
        let mut out = String::new();
        let mut path = String::new();
        collapse_into(&root, &mut path, &mut out);
        out
    }

    /// Renders both domains as Chrome trace-event JSON (Perfetto-
    /// loadable). The aggregate tree has no per-occurrence timestamps,
    /// so the timeline is synthetic: each node is a complete (`X`)
    /// event, children laid out sequentially inside their parent, wall
    /// spans on track 1 and virtual spans on track 2.
    pub fn perfetto(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (domain, cat, tid) in [
            (SpanDomain::Wall, "wall", 1),
            (SpanDomain::Virtual, "virtual", 2),
        ] {
            let root = lock(self.tree(domain));
            perfetto_into(&root, 0, cat, tid, &mut out, &mut first);
        }
        out.push_str("]\n");
        out
    }

    /// Renders one domain as an aligned plain-text table (span path,
    /// calls, total/self milliseconds, bytes).
    pub fn report(&self, domain: SpanDomain) -> String {
        let root = lock(self.tree(domain));
        let mut rows: Vec<(String, u64, u64, u64, u64)> = Vec::new();
        report_rows(&root, 0, &mut rows);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<48} {:>10} {:>12} {:>12} {:>12}",
            "span", "calls", "total_ms", "self_ms", "bytes"
        );
        for (name, count, ns, self_ns, bytes) in rows {
            let _ = writeln!(
                out,
                "{name:<48} {count:>10} {:>12.3} {:>12.3} {bytes:>12}",
                ns as f64 / 1e6,
                self_ns as f64 / 1e6,
            );
        }
        out
    }
}

fn children_ns(node: &SpanNode) -> u64 {
    node.children
        .values()
        .fold(0u64, |a, c| a.saturating_add(c.ns))
}

fn collapse_into(node: &SpanNode, path: &mut String, out: &mut String) {
    for (name, child) in &node.children {
        let len0 = path.len();
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(name);
        if child.count > 0 {
            let _ = writeln!(
                out,
                "{path} {}",
                child.ns.saturating_sub(children_ns(child))
            );
        }
        collapse_into(child, path, out);
        path.truncate(len0);
    }
}

fn perfetto_into(
    node: &SpanNode,
    start_ns: u64,
    cat: &str,
    tid: u32,
    out: &mut String,
    first: &mut bool,
) {
    let mut cursor = start_ns;
    for (name, child) in &node.children {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"count\":{},\"bytes\":{}}}}}",
            cursor as f64 / 1e3,
            child.ns as f64 / 1e3,
            child.count,
            child.bytes,
        );
        perfetto_into(child, cursor, cat, tid, out, first);
        cursor = cursor.saturating_add(child.ns);
    }
}

fn report_rows(node: &SpanNode, depth: usize, rows: &mut Vec<(String, u64, u64, u64, u64)>) {
    for (name, child) in &node.children {
        rows.push((
            format!("{}{name}", "  ".repeat(depth)),
            child.count,
            child.ns,
            child.ns.saturating_sub(children_ns(child)),
            child.bytes,
        ));
        report_rows(child, depth + 1, rows);
    }
}

// ---------------------------------------------------------------------
// Optional allocation accounting.

#[cfg(feature = "alloc-profile")]
mod alloc_count {
    //! A counting wrapper around the system allocator. Binaries opt in:
    //!
    //! ```ignore
    //! #[global_allocator]
    //! static A: predvfs_obs::span::CountingAllocator =
    //!     predvfs_obs::span::CountingAllocator;
    //! ```
    //!
    //! With the wrapper installed, every [`super::SpanGuard`] also
    //! attributes the bytes allocated on its thread between enter and
    //! drop.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// The counting global allocator (see the module docs).
    pub struct CountingAllocator;

    // SAFETY: delegates every operation to `System`; the side counter is
    // thread-local and touched with non-reentrant Cell operations.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = BYTES.try_with(|b| b.set(b.get().saturating_add(layout.size() as u64)));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let grown = new_size.saturating_sub(layout.size()) as u64;
            let _ = BYTES.try_with(|b| b.set(b.get().saturating_add(grown)));
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Total bytes allocated on the calling thread since it started.
    pub fn thread_allocated_bytes() -> u64 {
        BYTES.try_with(Cell::get).unwrap_or(0)
    }
}

#[cfg(feature = "alloc-profile")]
pub use alloc_count::{thread_allocated_bytes, CountingAllocator};

/// Bytes-allocated accounting is compiled out without the
/// `alloc-profile` feature; spans record zero bytes.
#[cfg(not(feature = "alloc-profile"))]
#[inline]
fn thread_allocated_bytes() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Unit tests share the process-global profile; serialize them.
    static GATE: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        profile().reset();
        set_profiling(false);
        {
            let _a = span("never");
            let _b = span("ever");
        }
        record_virtual(&["quiet"], 1.0);
        assert_eq!(profile().collapsed(SpanDomain::Wall), "");
        assert_eq!(profile().collapsed(SpanDomain::Virtual), "");
    }

    #[test]
    fn nested_spans_build_paths_and_counts() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        profile().reset();
        set_profiling(true);
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _solo = span("outer");
        }
        set_profiling(false);
        let folded = profile().collapsed(SpanDomain::Wall);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "unexpected output:\n{folded}");
        assert!(lines[0].starts_with("outer "));
        assert!(lines[1].starts_with("outer;inner "));
        let rep = profile().report(SpanDomain::Wall);
        assert!(rep.contains("outer"), "{rep}");
    }

    #[test]
    fn virtual_spans_are_explicit_paths_with_exact_ns() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        profile().reset();
        set_profiling(true);
        record_virtual(&["serve", "job"], 1.5e-3);
        record_virtual(&["serve", "job"], 0.5e-3);
        record_virtual(&["serve", "arrival"], 0.0);
        record_virtual(&["serve", "bad"], f64::NAN);
        set_profiling(false);
        let folded = profile().collapsed(SpanDomain::Virtual);
        assert_eq!(
            folded, "serve;arrival 0\nserve;bad 0\nserve;job 2000000\n",
            "virtual collapsed output must be exact and sorted"
        );
    }

    #[test]
    fn perfetto_is_json_with_both_tracks() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        profile().reset();
        set_profiling(true);
        {
            let _a = span("compile");
        }
        record_virtual(&["dispatch"], 1e-6);
        set_profiling(false);
        let json = profile().perfetto();
        assert!(json.starts_with('[') && json.ends_with("]\n"));
        assert!(json.contains("\"name\":\"compile\""));
        assert!(json.contains("\"cat\":\"virtual\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn toggling_mid_span_is_safe() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        profile().reset();
        set_profiling(true);
        let live = span("live");
        set_profiling(false);
        // Entered while enabled: still records on drop.
        let inert = span("inert");
        drop(inert);
        drop(live);
        let folded = profile().collapsed(SpanDomain::Wall);
        assert!(folded.contains("live "), "{folded}");
        assert!(!folded.contains("inert"), "{folded}");
    }
}
