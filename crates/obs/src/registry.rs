//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with a Prometheus text exporter.
//!
//! All metric cells are atomics, so recording never blocks and is safe
//! from parallel stages; the registry maps are behind short-lived mutexes
//! taken only to *look up or create* a metric, and handles are `Arc`s a
//! caller may retain to skip the lookup entirely on a hot path.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers a possibly poisoned guard: the registry maps are only
/// inserted into, so a snapshot taken by a panicking thread is still
/// internally consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Atomically adds `delta` to an `f64` stored as bits in `cell`.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A histogram over fixed, sorted bucket upper bounds (the `+Inf` bucket
/// is implicit), tracking per-bucket counts plus the sum and count of
/// observations — exactly the Prometheus histogram data model.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One cell per bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// The default bucket layout: powers of ten from `1e-9` to `1e12`,
    /// wide enough for seconds-scale phase timings and picojoule-scale
    /// energies alike.
    pub fn default_bounds() -> Vec<f64> {
        (-9..=12).map(|e| 10f64.powi(e)).collect()
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, value);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// `(upper bound, cumulative count)` pairs in bound order, ending
    /// with the `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, cell) in self.buckets.iter().enumerate() {
            acc += cell.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// A process- or run-scoped collection of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls keep the original bucket layout).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshot of every counter as `(name, value)`, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every gauge as `(name, value)`, name-sorted.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram as `(name, count, sum)`, name-sorted.
    pub fn histogram_summaries(&self) -> Vec<(String, u64, f64)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.count(), v.sum()))
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// metrics sorted by name so the output is stable.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in self.gauges() {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", fmt_f64(value));
        }
        let hists: Vec<(String, Arc<Histogram>)> = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, h) in hists {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cum) in h.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_owned()
                } else {
                    fmt_f64(bound)
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// Formats a float the way the exporters need: finite shortest-roundtrip,
/// with non-finite values spelled the Prometheus way.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(2);
        reg.counter("a_total").add(3);
        reg.gauge("g").set(1.5);
        assert_eq!(reg.counters(), vec![("a_total".to_owned(), 5)]);
        assert_eq!(reg.gauges(), vec![("g".to_owned(), 1.5)]);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1.0, 2), (10.0, 3), (f64::INFINITY, 4)]
        );
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 56.2).abs() < 1e-12);
        assert!((h.mean() - 14.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn prometheus_text_is_stable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.counter("a_total").add(2);
        reg.gauge("obj").set(0.25);
        reg.histogram("lat_seconds", &[0.1, 1.0]).observe(0.05);
        let text = reg.prometheus_text();
        let a = text.find("a_total 2").expect("a_total");
        let z = text.find("z_total 1").expect("z_total");
        assert!(a < z, "counters must be name-sorted");
        assert!(text.contains("# TYPE obj gauge\nobj 0.25"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_count 1"));
        assert_eq!(text, reg.prometheus_text(), "export must be idempotent");
    }

    #[test]
    fn parallel_counting_is_exact() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
