//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms — optionally labeled — with a Prometheus text exporter.
//!
//! All metric cells are atomics, so recording never blocks and is safe
//! from parallel stages; the registry maps are behind short-lived mutexes
//! taken only to *look up or create* a metric, and handles are `Arc`s a
//! caller may retain to skip the lookup entirely on a hot path.
//!
//! A metric series is identified by its name plus an optional set of
//! label pairs (e.g. `predvfs_slo_burn_fast{stream="sha"}`); the
//! unlabeled accessors are the common case and map to an empty label
//! set. Labels render per the Prometheus exposition rules: sorted by
//! key, values escaped, and for histograms the `le` label appended last.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recovers a possibly poisoned guard: the registry maps are only
/// inserted into, so a snapshot taken by a panicking thread is still
/// internally consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A series identity: metric name plus sorted label pairs. Ordering is
/// lexicographic on `(name, labels)`, so a `BTreeMap` keyed by it groups
/// every series of one metric together — exactly what the exporter needs
/// to emit a single `# TYPE` line per metric name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// The exposition-format series name: `name` or `name{k="v",...}`.
    fn render(&self) -> String {
        render_series(&self.name, &self.labels, None)
    }
}

/// Renders `name{labels...}` with an optional extra trailing label (the
/// histogram exporter's `le`). Label values are escaped per the
/// exposition rules: backslash, double quote, and newline.
fn render_series(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    let mut first = true;
    let push_pair = |out: &mut String, first: &mut bool, k: &str, v: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    };
    for (k, v) in labels {
        push_pair(&mut out, &mut first, k, v);
    }
    if let Some((k, v)) = extra {
        push_pair(&mut out, &mut first, k, v);
    }
    out.push('}');
    out
}

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Atomically adds `delta` to an `f64` stored as bits in `cell`.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A histogram over fixed, sorted bucket upper bounds (the `+Inf` bucket
/// is implicit), tracking per-bucket counts plus the sum and count of
/// observations — exactly the Prometheus histogram data model.
///
/// `NaN` observations are counted separately ([`Histogram::nan_count`])
/// and excluded from the buckets, sum, and count: a single NaN would
/// otherwise poison `_sum` forever and land in the `+Inf` bucket, where
/// it would silently skew every tail-quantile estimate.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One cell per bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    nan_count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
            nan_count: AtomicU64::new(0),
        }
    }

    /// The default bucket layout: powers of ten from `1e-9` to `1e12`,
    /// wide enough for seconds-scale phase timings and picojoule-scale
    /// energies alike.
    pub fn default_bounds() -> Vec<f64> {
        (-9..=12).map(|e| 10f64.powi(e)).collect()
    }

    /// Records one observation. `NaN` values go to the separate NaN
    /// counter instead of the buckets and sum.
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            self.nan_count.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, value);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of (non-NaN) observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// NaN observations rejected from the buckets and sum.
    pub fn nan_count(&self) -> u64 {
        self.nan_count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// `(upper bound, cumulative count)` pairs in bound order, ending
    /// with the `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, cell) in self.buckets.iter().enumerate() {
            acc += cell.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) from the
    /// bucket counts by linear interpolation within the containing
    /// bucket — the same estimator as PromQL's `histogram_quantile`.
    ///
    /// Returns `None` when the histogram is empty. The first bucket
    /// interpolates from a lower edge of 0 when its upper bound is
    /// positive (observations are assumed non-negative there), and a
    /// quantile landing in the `+Inf` bucket reports the largest finite
    /// bound — the estimate cannot be better than "beyond the layout".
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let buckets = self.cumulative_buckets();
        let mut prev_cum = 0u64;
        for (i, &(bound, cum)) in buckets.iter().enumerate() {
            if (cum as f64) >= rank && cum > prev_cum {
                if bound.is_infinite() {
                    return self.bounds.last().copied();
                }
                let lower = if i == 0 {
                    if bound > 0.0 {
                        0.0
                    } else {
                        return Some(bound);
                    }
                } else {
                    buckets[i - 1].0
                };
                let in_bucket = (cum - prev_cum) as f64;
                let pos = ((rank - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
                return Some(lower + (bound - lower) * pos);
            }
            prev_cum = cum;
        }
        self.bounds.last().copied()
    }

    /// The median estimate ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A process- or run-scoped collection of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The unlabeled counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels}`, created on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(
            map.entry(SeriesKey::new(name, labels))
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The unlabeled gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge series `name{labels}`, created on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(
            map.entry(SeriesKey::new(name, labels))
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The unlabeled histogram named `name`, created with `bounds` on
    /// first use (later calls keep the original bucket layout).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// The histogram series `name{labels}`, created with `bounds` on
    /// first use (later calls keep the original bucket layout).
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(
            map.entry(SeriesKey::new(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshot of every counter as `(series, value)`, series-sorted;
    /// labeled series render as `name{k="v"}`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.render(), v.get()))
            .collect()
    }

    /// Snapshot of every gauge as `(series, value)`, series-sorted.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.render(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram as `(series, count, sum)`,
    /// series-sorted.
    pub fn histogram_summaries(&self) -> Vec<(String, u64, f64)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.render(), v.count(), v.sum()))
            .collect()
    }

    /// Snapshot of every histogram as `(series, p50, p90, p99)` for
    /// summary display, series-sorted; empty histograms report zeros.
    pub fn histogram_quantiles(&self) -> Vec<(String, f64, f64, f64)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| {
                (
                    k.render(),
                    v.p50().unwrap_or(0.0),
                    v.p90().unwrap_or(0.0),
                    v.p99().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Series are sorted by `(name, labels)` and one `# TYPE` line is
    /// emitted per metric name, so the output is stable and parseable.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let counters: Vec<(SeriesKey, u64)> = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut last_name = None::<String>;
        for (key, value) in counters {
            if last_name.as_deref() != Some(&key.name) {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_name = Some(key.name.clone());
            }
            let _ = writeln!(out, "{} {value}", key.render());
        }
        let gauges: Vec<(SeriesKey, f64)> = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut last_name = None::<String>;
        for (key, value) in gauges {
            if last_name.as_deref() != Some(&key.name) {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_name = Some(key.name.clone());
            }
            let _ = writeln!(out, "{} {}", key.render(), fmt_f64(value));
        }
        let hists: Vec<(SeriesKey, Arc<Histogram>)> = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        let mut last_name = None::<String>;
        for (key, h) in hists {
            if last_name.as_deref() != Some(&key.name) {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_name = Some(key.name.clone());
            }
            for (bound, cum) in h.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_owned()
                } else {
                    fmt_f64(bound)
                };
                let series = render_series(
                    &format!("{}_bucket", key.name),
                    &key.labels,
                    Some(("le", &le)),
                );
                let _ = writeln!(out, "{series} {cum}");
            }
            let _ = writeln!(
                out,
                "{} {}",
                render_series(&format!("{}_sum", key.name), &key.labels, None),
                fmt_f64(h.sum())
            );
            let _ = writeln!(
                out,
                "{} {}",
                render_series(&format!("{}_count", key.name), &key.labels, None),
                h.count()
            );
        }
        out
    }
}

/// Formats a float the way the exporters need: finite shortest-roundtrip,
/// with non-finite values spelled the Prometheus way.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(2);
        reg.counter("a_total").add(3);
        reg.gauge("g").set(1.5);
        assert_eq!(reg.counters(), vec![("a_total".to_owned(), 5)]);
        assert_eq!(reg.gauges(), vec![("g".to_owned(), 1.5)]);
    }

    #[test]
    fn labeled_series_are_distinct_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter_with("jobs_total", &[("stream", "sha")]).add(3);
        reg.counter_with("jobs_total", &[("stream", "md")]).add(4);
        reg.counter("jobs_total").add(1);
        // Label order at the call site must not matter.
        reg.gauge_with("burn", &[("window", "fast"), ("stream", "sha")])
            .set(2.0);
        reg.gauge_with("burn", &[("stream", "sha"), ("window", "fast")])
            .set(3.0);
        assert_eq!(
            reg.counters(),
            vec![
                ("jobs_total".to_owned(), 1),
                ("jobs_total{stream=\"md\"}".to_owned(), 4),
                ("jobs_total{stream=\"sha\"}".to_owned(), 3),
            ]
        );
        assert_eq!(
            reg.gauges(),
            vec![("burn{stream=\"sha\",window=\"fast\"}".to_owned(), 3.0)]
        );
        let text = reg.prometheus_text();
        // One TYPE line per metric name, not per series.
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert!(text.contains("jobs_total{stream=\"sha\"} 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c_total", &[("k", "a\"b\\c\nd")]).add(1);
        let text = reg.prometheus_text();
        assert!(text.contains("c_total{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1.0, 2), (10.0, 3), (f64::INFINITY, 4)]
        );
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 56.2).abs() < 1e-12);
        assert!((h.mean() - 14.05).abs() < 1e-12);
    }

    #[test]
    fn nan_observations_do_not_poison_sum_or_buckets() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(f64::NAN);
        h.observe(5.0);
        assert_eq!(h.count(), 2, "NaN must not count as an observation");
        assert_eq!(h.nan_count(), 1);
        assert!((h.sum() - 5.5).abs() < 1e-12, "sum must stay finite");
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1.0, 1), (10.0, 2), (f64::INFINITY, 2)],
            "NaN must not land in the +Inf bucket"
        );
        assert!(h.quantile(0.99).is_some());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn labeled_histogram_renders_le_last() {
        let reg = MetricsRegistry::new();
        reg.histogram_with("lat_seconds", &[("stream", "sha")], &[0.1, 1.0])
            .observe(0.05);
        let text = reg.prometheus_text();
        assert!(text.contains("lat_seconds_bucket{stream=\"sha\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{stream=\"sha\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_sum{stream=\"sha\"} 0.05"));
        assert!(text.contains("lat_seconds_count{stream=\"sha\"} 1"));
    }

    #[test]
    fn prometheus_text_is_stable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(1);
        reg.counter("a_total").add(2);
        reg.gauge("obj").set(0.25);
        reg.histogram("lat_seconds", &[0.1, 1.0]).observe(0.05);
        let text = reg.prometheus_text();
        let a = text.find("a_total 2").expect("a_total");
        let z = text.find("z_total 1").expect("z_total");
        assert!(a < z, "counters must be name-sorted");
        assert!(text.contains("# TYPE obj gauge\nobj 0.25"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_count 1"));
        assert_eq!(text, reg.prometheus_text(), "export must be idempotent");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 30.0]);
        // 10 observations in (10, 20]: the median ranks 5 of 10 in that
        // bucket, interpolating to 10 + 20·(5/10)... over width 10 → 15.
        for _ in 0..10 {
            h.observe(15.0);
        }
        assert!((h.p50().unwrap() - 15.0).abs() < 1e-12);
        assert!((h.p90().unwrap() - 19.0).abs() < 1e-12);
        // All mass in one bucket: q=1 reaches the upper bound.
        assert!((h.quantile(1.0).unwrap() - 20.0).abs() < 1e-12);
        // q=0 reaches the lower edge of the first non-empty bucket.
        assert!((h.quantile(0.0).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.p99(), Some(2.0));
    }

    #[test]
    fn parallel_counting_is_exact() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
