//! Bounded structured event tracing.
//!
//! A [`TraceEvent`] is a timestamped, named event with typed key/value
//! fields; a [`TraceRing`] keeps the most recent `capacity` events and
//! counts what it had to drop. Events render as JSON lines with fields in
//! insertion order, so a producer that emits from a serial loop (the
//! serve engine) gets byte-identical output for identical runs.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::registry::fmt_f64;

/// A typed trace-event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered shortest-roundtrip; non-finite renders as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on export).
    Str(String),
}

/// One structured event: a virtual-clock timestamp, the scope it belongs
/// to (stream or component name), the event kind, and ordered fields.
///
/// Kinds and field keys are `&'static str`: every producer names them
/// with literals (usually the [`crate::kinds`] constants), so the hot
/// path allocates only for the scope and any dynamic string values —
/// not for the event's own structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp, seconds.
    pub t_s: f64,
    /// Emitting scope (e.g. the stream name).
    pub scope: String,
    /// Event kind (e.g. `arrival`, `job_done`).
    pub kind: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// An event with no payload fields.
    pub fn new(t_s: f64, scope: &str, kind: &'static str) -> TraceEvent {
        TraceEvent {
            t_s,
            scope: scope.to_owned(),
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends an unsigned-integer field.
    #[must_use]
    pub fn with_u64(mut self, key: &'static str, value: u64) -> TraceEvent {
        self.fields.push((key, FieldValue::U64(value)));
        self
    }

    /// Appends a float field.
    #[must_use]
    pub fn with_f64(mut self, key: &'static str, value: f64) -> TraceEvent {
        self.fields.push((key, FieldValue::F64(value)));
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn with_bool(mut self, key: &'static str, value: bool) -> TraceEvent {
        self.fields.push((key, FieldValue::Bool(value)));
        self
    }

    /// Appends a string field.
    #[must_use]
    pub fn with_str(mut self, key: &'static str, value: &str) -> TraceEvent {
        self.fields.push((key, FieldValue::Str(value.to_owned())));
        self
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        self.write_json(&mut out);
        out
    }

    /// Appends the event's JSON rendering to `out` — the allocation-free
    /// path bulk exporters use so one buffer serves the whole trace.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t_s\":");
        write_json_f64(out, self.t_s);
        out.push_str(",\"scope\":\"");
        escape_into(out, &self.scope);
        out.push_str("\",\"event\":\"");
        escape_into(out, self.kind);
        out.push('"');
        for (key, value) in &self.fields {
            out.push_str(",\"");
            escape_into(out, key);
            out.push_str("\":");
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => write_json_f64(out, *v),
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::Str(v) => {
                    out.push('"');
                    escape_into(out, v);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
}

/// JSON has no non-finite numbers; render them as `null`.
fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&fmt_f64(v));
    } else {
        out.push_str("null");
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Merges per-source event streams (each internally ordered) into one
/// globally ordered stream.
///
/// `rank` maps an event to its merge rank — typically the global index
/// of the stream named by its scope — or `None` to exclude the event
/// (source-local meta events, coordinator chatter). The merge sorts
/// **stably** by `(t_s, rank)`: events of one scope at one instant keep
/// their source order, so as long as each scope's events at any single
/// timestamp come from a single source, the merged order is independent
/// of how scopes were distributed across sources. This is the property
/// the sharded serve tier's trace-determinism contract rests on.
pub fn merge_events<F>(sources: Vec<Vec<TraceEvent>>, mut rank: F) -> Vec<TraceEvent>
where
    F: FnMut(&TraceEvent) -> Option<u64>,
{
    let mut ranked: Vec<(u64, TraceEvent)> = sources
        .into_iter()
        .flatten()
        .filter_map(|e| rank(&e).map(|r| (r, e)))
        .collect();
    ranked.sort_by(|a, b| a.1.t_s.total_cmp(&b.1.t_s).then_with(|| a.0.cmp(&b.0)));
    ranked.into_iter().map(|(_, e)| e).collect()
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s keeping the most recent `capacity`.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        // Push-only state: a snapshot from a panicked pusher is intact.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut inner = self.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Renders the buffered events as JSON lines (one event per line,
    /// each line terminated by `\n`), oldest first.
    ///
    /// When events were evicted, a final `trace_truncated` meta event is
    /// appended so downstream analyzers know the head of the timeline is
    /// missing instead of silently computing statistics over a hole.
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for event in &inner.events {
            event.write_json(&mut out);
            out.push('\n');
        }
        if inner.dropped > 0 {
            let t_s = inner.events.back().map_or(0.0, |e| e.t_s);
            let meta = TraceEvent::new(t_s, "trace", crate::kinds::TRACE_TRUNCATED)
                .with_u64("dropped", inner.dropped)
                .with_u64("kept", inner.events.len() as u64);
            meta.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_fields_in_order() {
        let e = TraceEvent::new(0.5, "sha", "job_done")
            .with_u64("job", 3)
            .with_f64("energy_pj", 1.25)
            .with_bool("missed", true)
            .with_str("note", "a\"b");
        assert_eq!(
            e.to_json(),
            "{\"t_s\":0.5,\"scope\":\"sha\",\"event\":\"job_done\",\
             \"job\":3,\"energy_pj\":1.25,\"missed\":true,\"note\":\"a\\\"b\"}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let e = TraceEvent::new(f64::NAN, "x", "k").with_f64("v", f64::INFINITY);
        assert_eq!(
            e.to_json(),
            "{\"t_s\":null,\"scope\":\"x\",\"event\":\"k\",\"v\":null}"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\nb\tc\u{1}");
        assert_eq!(out, "a\\nb\\tc\\u0001");
    }

    #[test]
    fn merge_orders_by_time_then_rank_stably() {
        let a = vec![
            TraceEvent::new(1.0, "s0", "x").with_u64("n", 0),
            TraceEvent::new(1.0, "s0", "x").with_u64("n", 1),
            TraceEvent::new(2.0, "s0", "x"),
        ];
        let b = vec![
            TraceEvent::new(1.0, "s1", "x"),
            TraceEvent::new(1.5, "meta", "x"),
            TraceEvent::new(1.5, "s1", "x"),
        ];
        let merged = merge_events(vec![b, a], |e| match e.scope.as_str() {
            "s0" => Some(0),
            "s1" => Some(1),
            _ => None,
        });
        let got: Vec<(f64, &str)> = merged.iter().map(|e| (e.t_s, e.scope.as_str())).collect();
        assert_eq!(
            got,
            vec![
                (1.0, "s0"),
                (1.0, "s0"),
                (1.0, "s1"),
                (1.5, "s1"),
                (2.0, "s0")
            ],
            "meta scope excluded; ties ordered by rank; same-scope order kept"
        );
        // Stability within (t, rank): the two s0 events at t=1 keep
        // their source order.
        assert_eq!(merged[0].fields[0].1, FieldValue::U64(0));
        assert_eq!(merged[1].fields[0].1, FieldValue::U64(1));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = TraceRing::new(2);
        for i in 0..5 {
            ring.push(TraceEvent::new(i as f64, "s", "e"));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<f64> = ring.snapshot().iter().map(|e| e.t_s).collect();
        assert_eq!(kept, vec![3.0, 4.0], "oldest events are evicted first");
        let jsonl = ring.to_jsonl();
        assert_eq!(
            jsonl.lines().count(),
            3,
            "truncation must append a meta event"
        );
        let last = jsonl.lines().last().unwrap();
        assert!(last.contains("\"event\":\"trace_truncated\""));
        assert!(last.contains("\"dropped\":3"));
        assert!(last.contains("\"kept\":2"));
    }

    #[test]
    fn untruncated_export_has_no_meta_event() {
        let ring = TraceRing::new(4);
        ring.push(TraceEvent::new(0.0, "s", "e"));
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(!jsonl.contains("trace_truncated"));
    }
}
