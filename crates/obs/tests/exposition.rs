//! A minimal Prometheus text exposition-format checker, run over the
//! registry's real export — labeled series included — plus a golden
//! byte-for-byte snapshot of a representative registry.
//!
//! The checker is deliberately small but strict about the things a
//! scraper would choke on: metric/label name charsets, label-value
//! escaping, one `# TYPE` per metric, histogram bucket monotonicity,
//! and the `+Inf` bucket equalling `_count`.

use std::collections::{BTreeMap, BTreeSet};

use predvfs_obs::{Histogram, MetricsRegistry};

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{k="v",...} value` per the exposition format, panicking
/// with a line-specific message on any violation.
fn parse_sample(line: &str) -> Sample {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line without value: {line:?}");
    });
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample value {v:?} in {line:?}")),
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            loop {
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                assert!(is_label_name(&key), "bad label name {key:?} in {line:?}");
                assert_eq!(
                    chars.next(),
                    Some('"'),
                    "label value must be quoted: {line:?}"
                );
                let mut value = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            other => panic!("bad escape {other:?} in {line:?}"),
                        },
                        Some('"') => break,
                        Some(c) => value.push(c),
                        None => panic!("unterminated label value in {line:?}"),
                    }
                }
                labels.push((key, value));
                match chars.next() {
                    Some(',') => continue,
                    None => break,
                    other => panic!("expected ',' or end after label, got {other:?} in {line:?}"),
                }
            }
            (name.to_owned(), labels)
        }
    };
    assert!(
        is_metric_name(&name),
        "bad metric name {name:?} in {line:?}"
    );
    Sample {
        name,
        labels,
        value,
    }
}

/// The checker: parses a full exposition document and enforces the
/// structural rules, returning the samples grouped by metric name.
fn check_exposition(text: &str) -> BTreeMap<String, Vec<Sample>> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let (name, kind) = meta
                .split_once(' ')
                .unwrap_or_else(|| panic!("bad TYPE line {line:?}"));
            assert!(is_metric_name(name), "bad TYPE name {name:?}");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "bad TYPE kind {kind:?}"
            );
            assert!(
                types.insert(name.to_owned(), kind.to_owned()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let sample = parse_sample(line);
        // Histogram sample names carry the _bucket/_sum/_count suffix;
        // map back to the declared metric for the TYPE check.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let stripped = sample.name.strip_suffix(suf)?;
                types
                    .get(stripped)
                    .filter(|k| *k == "histogram")
                    .map(|_| stripped.to_owned())
            })
            .unwrap_or_else(|| sample.name.clone());
        assert!(
            types.contains_key(&base),
            "sample {0} has no TYPE declaration",
            sample.name
        );
        samples.entry(base).or_default().push(sample);
    }
    // Histogram structure: per label set, buckets are cumulative
    // non-decreasing with ascending le, and +Inf equals _count.
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let group = &samples[name];
        let mut series: BTreeSet<String> = BTreeSet::new();
        for s in group {
            let mut key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            key.sort();
            series.insert(key.join(","));
        }
        for key in series {
            let of_series = |suffix: &str| -> Vec<&Sample> {
                group
                    .iter()
                    .filter(|s| s.name == format!("{name}{suffix}"))
                    .filter(|s| {
                        let mut k: Vec<String> = s
                            .labels
                            .iter()
                            .filter(|(k, _)| k != "le")
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect();
                        k.sort();
                        k.join(",") == key
                    })
                    .collect()
            };
            let buckets = of_series("_bucket");
            assert!(!buckets.is_empty(), "{name}{{{key}}} has no buckets");
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_cum = 0.0f64;
            let mut inf_cum = None;
            for b in &buckets {
                let le = b
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| match v.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v.parse::<f64>().expect("numeric le"),
                    })
                    .expect("bucket without le");
                assert!(le > prev_le, "{name}: le not ascending");
                assert!(b.value >= prev_cum, "{name}: bucket counts not cumulative");
                prev_le = le;
                prev_cum = b.value;
                if le.is_infinite() {
                    inf_cum = Some(b.value);
                }
            }
            let inf_cum = inf_cum.unwrap_or_else(|| panic!("{name}: no +Inf bucket"));
            let count = of_series("_count");
            assert_eq!(count.len(), 1, "{name}: exactly one _count");
            assert_eq!(
                count[0].value, inf_cum,
                "{name}: +Inf bucket must equal _count"
            );
            assert_eq!(of_series("_sum").len(), 1, "{name}: exactly one _sum");
        }
    }
    samples
}

/// A registry shaped like a real serve run: unlabeled totals, per-stream
/// labeled series, and a histogram.
fn serve_like_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter("predvfs_serve_jobs_done_total").add(160);
    reg.counter("predvfs_serve_misses_total").add(12);
    for (stream, jobs, misses) in [("sha", 80u64, 5u64), ("md", 80, 7)] {
        let labels = [("stream", stream)];
        reg.counter_with("predvfs_serve_stream_jobs_done_total", &labels)
            .add(jobs);
        reg.counter_with("predvfs_serve_stream_misses_total", &labels)
            .add(misses);
        reg.gauge_with("predvfs_slo_burn_fast", &labels)
            .set(misses as f64 / 4.0);
        reg.gauge_with("predvfs_calibration_coverage", &labels)
            .set(0.875);
    }
    let h = reg.histogram("predvfs_serve_slack_seconds", &[1e-3, 1e-2, 1e-1]);
    for v in [5e-4, 3e-3, 8e-3, 0.04, 0.2] {
        h.observe(v);
    }
    reg
}

#[test]
fn real_export_with_labels_passes_the_checker() {
    let reg = serve_like_registry();
    let samples = check_exposition(&reg.prometheus_text());
    assert_eq!(
        samples["predvfs_serve_stream_misses_total"].len(),
        2,
        "one series per stream label"
    );
    let sha = samples["predvfs_serve_stream_misses_total"]
        .iter()
        .find(|s| s.labels == vec![("stream".to_owned(), "sha".to_owned())])
        .expect("sha series present");
    assert_eq!(sha.value, 5.0);
    assert!(samples.contains_key("predvfs_serve_slack_seconds"));
}

#[test]
fn escaped_label_values_survive_the_round_trip() {
    let reg = MetricsRegistry::new();
    reg.counter_with("c_total", &[("k", "a\"b\\c\nd")]).add(1);
    let samples = check_exposition(&reg.prometheus_text());
    assert_eq!(
        samples["c_total"][0].labels,
        vec![("k".to_owned(), "a\"b\\c\nd".to_owned())]
    );
}

#[test]
fn golden_snapshot_of_a_small_registry() {
    let reg = MetricsRegistry::new();
    reg.counter("predvfs_jobs_total").add(3);
    reg.counter_with("predvfs_stream_jobs_total", &[("stream", "md")])
        .add(1);
    reg.counter_with("predvfs_stream_jobs_total", &[("stream", "sha")])
        .add(2);
    reg.gauge_with("predvfs_burn", &[("stream", "sha"), ("window", "fast")])
        .set(1.5);
    reg.histogram("predvfs_lat_seconds", &[0.1, 1.0])
        .observe(0.05);
    let golden = "\
# TYPE predvfs_jobs_total counter
predvfs_jobs_total 3
# TYPE predvfs_stream_jobs_total counter
predvfs_stream_jobs_total{stream=\"md\"} 1
predvfs_stream_jobs_total{stream=\"sha\"} 2
# TYPE predvfs_burn gauge
predvfs_burn{stream=\"sha\",window=\"fast\"} 1.5
# TYPE predvfs_lat_seconds histogram
predvfs_lat_seconds_bucket{le=\"0.1\"} 1
predvfs_lat_seconds_bucket{le=\"1\"} 1
predvfs_lat_seconds_bucket{le=\"+Inf\"} 1
predvfs_lat_seconds_sum 0.05
predvfs_lat_seconds_count 1
";
    assert_eq!(reg.prometheus_text(), golden);
    check_exposition(golden);
}

#[test]
fn default_bounds_histogram_is_well_formed() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("phase_seconds", &Histogram::default_bounds());
    h.observe(1e-4);
    h.observe(2.5);
    h.observe(f64::NAN); // excluded, must not break the invariants
    check_exposition(&reg.prometheus_text());
    assert_eq!(h.nan_count(), 1);
}
