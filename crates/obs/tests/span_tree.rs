//! Integration tests of the span subsystem's contracts: hierarchical
//! nesting, panic-unwind safety, the disabled fast path recording
//! nothing, and virtual-domain determinism across thread counts.
//!
//! The profile is process-global, so every test takes `GATE` first.

use std::sync::Mutex;

use predvfs_obs::{self as obs, SpanDomain};

static GATE: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh() -> std::sync::MutexGuard<'static, ()> {
    let guard = locked();
    obs::set_profiling(false);
    obs::self_profile().reset();
    guard
}

/// Collapsed paths only (values are host timings and nondeterministic).
fn wall_paths() -> Vec<String> {
    obs::self_profile()
        .collapsed(SpanDomain::Wall)
        .lines()
        .filter_map(|l| l.rsplit_once(' ').map(|(p, _)| p.to_owned()))
        .collect()
}

#[test]
fn nested_guards_build_a_hierarchy_across_call_frames() {
    let _g = fresh();
    obs::set_profiling(true);
    fn leaf() {
        let _s = obs::span("leaf");
    }
    fn middle() {
        let _s = obs::span("middle");
        leaf();
        leaf();
    }
    {
        let _root = obs::span("root");
        middle();
        middle();
        middle();
    }
    obs::set_profiling(false);
    assert_eq!(
        wall_paths(),
        ["root", "root;middle", "root;middle;leaf"],
        "collapsed:\n{}",
        obs::self_profile().collapsed(SpanDomain::Wall)
    );
    let report = obs::self_profile().report(SpanDomain::Wall);
    assert!(report.contains("leaf"), "report:\n{report}");
    assert_eq!(obs::self_profile().total_calls(SpanDomain::Wall), 1 + 3 + 6);
}

#[test]
fn panicking_span_unwinds_without_corrupting_the_tree() {
    let _g = fresh();
    obs::set_profiling(true);
    let caught = std::panic::catch_unwind(|| {
        let _outer = obs::span("unwind_outer");
        let _inner = obs::span("unwind_inner");
        panic!("die with spans open");
    });
    assert!(caught.is_err());
    // The tree must still accept new spans, and the next root-pop must
    // flush a coherent hierarchy including the unwound frames.
    {
        let _after = obs::span("after_panic");
    }
    obs::set_profiling(false);
    let paths = wall_paths();
    assert!(
        paths.iter().any(|p| p == "after_panic"),
        "post-panic span missing: {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p.starts_with("unwind_outer")),
        "unwound spans lost: {paths:?}"
    );
}

#[test]
fn disabled_spans_leave_profile_empty_like_a_null_sink() {
    let _g = fresh();
    // Overhead smoke: with profiling off, a workload full of span
    // callsites must behave exactly like uninstrumented code — the
    // profile stays empty in both domains (the NullSink analogue: no
    // state, no clock reads, nothing to flush).
    for _ in 0..10_000 {
        let _a = obs::span("disabled_outer");
        let _b = obs::span("disabled_inner");
        obs::record_virtual(&["disabled", "virtual"], 1.0);
    }
    assert_eq!(obs::self_profile().collapsed(SpanDomain::Wall), "");
    assert_eq!(obs::self_profile().collapsed(SpanDomain::Virtual), "");
    assert_eq!(obs::self_profile().total_calls(SpanDomain::Wall), 0);
    assert_eq!(obs::self_profile().total_calls(SpanDomain::Virtual), 0);
    assert_eq!(obs::self_profile().perfetto(), "[]\n");
}

#[test]
fn virtual_collapsed_output_is_identical_across_thread_counts() {
    let _g = fresh();
    // The same logical work split over 1, 2, and 4 threads must produce
    // byte-identical virtual flamegraphs: explicit paths + commutative
    // sums make the tree independent of interleaving.
    const PATHS: [&[&str]; 3] = [
        &["serve", "job", "response"],
        &["serve", "dispatch", "arrival"],
        &["shard", "epoch"],
    ];
    let work: Vec<(usize, f64)> = (0..240)
        .map(|i| (i % PATHS.len(), (i + 1) as f64 * 1e-6))
        .collect();
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        obs::self_profile().reset();
        obs::set_profiling(true);
        std::thread::scope(|s| {
            for chunk in work.chunks(work.len().div_ceil(threads)) {
                s.spawn(move || {
                    for &(which, seconds) in chunk {
                        obs::record_virtual(PATHS[which], seconds);
                    }
                });
            }
        });
        obs::set_profiling(false);
        outputs.push(obs::self_profile().collapsed(SpanDomain::Virtual));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads diverged");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads diverged");
    obs::self_profile().reset();
}
