//! Property tests for histogram quantile estimation: hand-built layouts
//! with known answers, ordering invariants, and agreement with a
//! sorted-sample oracle to within one bucket width.

use proptest::prelude::*;

use predvfs_obs::Histogram;

#[test]
fn exact_on_a_uniform_layout() {
    // 100 observations spread one per unit across (0, 100] in unit
    // buckets: the q-quantile is (up to interpolation) 100·q.
    let bounds: Vec<f64> = (1..=100).map(f64::from).collect();
    let h = Histogram::new(&bounds);
    for i in 0..100 {
        h.observe(i as f64 + 0.5);
    }
    for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99] {
        let got = h.quantile(q).unwrap();
        let want = 100.0 * q;
        assert!(
            (got - want).abs() <= 1.0 + 1e-9,
            "q={q}: {got} vs {want} (within one bucket)"
        );
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let h = Histogram::new(&Histogram::default_bounds());
    for v in [1e-6, 3e-4, 0.02, 0.02, 1.5, 7.0, 7.0, 42.0, 900.0] {
        h.observe(v);
    }
    let p50 = h.p50().unwrap();
    let p90 = h.p90().unwrap();
    let p99 = h.p99().unwrap();
    assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
    assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::new(&[1.0, 2.0]);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.p50(), None);
    assert_eq!(h.p90(), None);
    assert_eq!(h.p99(), None);
}

/// The oracle: the order statistic at the estimator's own rank
/// definition (rank = q·n, PromQL style). That sample provably falls in
/// the bucket the histogram interpolates within, so the estimate must
/// land within one bucket width of it.
fn oracle(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = q.clamp(0.0, 1.0) * samples.len() as f64;
    let k = (rank.ceil() as usize).max(1);
    samples[k - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn agrees_with_sorted_sample_oracle_within_one_bucket(
        samples in prop::collection::vec(0.0f64..100.0, 1..200),
        q in 0.05f64..0.95,
    ) {
        // Unit-width buckets over the sample range, so "within one
        // bucket width" means within 1.0.
        let bounds: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = Histogram::new(&bounds);
        for &v in &samples {
            h.observe(v);
        }
        let got = h.quantile(q).expect("non-empty");
        let mut samples = samples;
        let want = oracle(&mut samples, q);
        prop_assert!(
            (got - want).abs() <= 1.0 + 1e-9,
            "q={q}: histogram {got} vs oracle {want}"
        );
    }

    #[test]
    fn monotone_for_random_data(
        samples in prop::collection::vec(0.0f64..1e6, 1..100),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = Histogram::new(&Histogram::default_bounds());
        for &v in &samples {
            h.observe(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let a = h.quantile(lo).expect("non-empty");
        let b = h.quantile(hi).expect("non-empty");
        prop_assert!(a <= b + 1e-9, "q={lo}->{a} vs q={hi}->{b}");
    }

    #[test]
    fn quantile_stays_within_observed_bucket_range(
        samples in prop::collection::vec(0.0f64..100.0, 1..50),
        q in 0.0f64..1.0,
    ) {
        let bounds: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = Histogram::new(&bounds);
        for &v in &samples {
            h.observe(v);
        }
        let got = h.quantile(q).expect("non-empty");
        let max = samples.iter().fold(0.0f64, |m, &v| m.max(v));
        prop_assert!(got >= 0.0);
        // The estimate can overshoot the true max only up to its
        // bucket's upper bound.
        prop_assert!(got <= max.ceil() + 1e-9, "{got} vs max {max}");
    }
}
