//! Ergonomic construction of [`Module`]s.
//!
//! Accelerator models are written against this builder the way RTL is
//! written against Verilog: declare input fields, registers, FSMs, counters,
//! and datapath blocks, then wire up guarded updates. The builder lowers
//! everything to the flat structural representation in [`crate::module`];
//! FSMs become ordinary registers with case-structured update rules, so the
//! downstream analyses genuinely *re-discover* them, as the paper's Yosys
//! pass does on real netlists.
//!
//! # Examples
//!
//! ```
//! use predvfs_rtl::builder::{ModuleBuilder, E};
//!
//! let mut b = ModuleBuilder::new("toy");
//! let len = b.input("len", 16);
//! let fsm = b.fsm("ctrl", &["IDLE", "RUN", "DONE"]);
//! let busy = fsm.in_state("RUN");
//! b.timed(&fsm, "IDLE", "RUN", "DONE", len, E::one(), "ctrl.cnt");
//! b.datapath_compute("alu", busy, 100.0, 1.0, 50, 0);
//! b.advance_when(fsm.in_state("IDLE"));
//! b.done_when(fsm.in_state("DONE"));
//! let module = b.build()?;
//! assert_eq!(module.name, "toy");
//! # Ok::<(), predvfs_rtl::RtlError>(())
//! ```

use std::collections::HashMap;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Shl, Shr, Sub};

use crate::error::RtlError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::module::{
    Datapath, DatapathKind, InputField, InputId, Memory, Module, RegId, Register, UpdateRule,
};

/// A cheap-to-clone expression wrapper with operator overloading.
///
/// `E` exists so accelerator descriptions read like RTL (`(a + b).lt(c)`)
/// instead of nested enum constructors. Convert with [`E::expr`] or
/// `Expr::from(e)`.
#[derive(Debug, Clone, PartialEq)]
pub struct E(Expr);

impl E {
    /// Constant literal.
    pub fn k(v: u64) -> E {
        E(Expr::Const(v))
    }

    /// The constant 0.
    pub fn zero() -> E {
        E::k(0)
    }

    /// The constant 1.
    pub fn one() -> E {
        E::k(1)
    }

    /// Reads a register.
    pub fn reg(id: RegId) -> E {
        E(Expr::Reg(id))
    }

    /// Reads an input field.
    pub fn input(id: InputId) -> E {
        E(Expr::Input(id))
    }

    /// 1 when the input stream is exhausted.
    pub fn stream_empty() -> E {
        E(Expr::StreamEmpty)
    }

    /// Returns the wrapped expression.
    pub fn expr(&self) -> &Expr {
        &self.0
    }

    /// Consumes the wrapper, yielding the expression.
    pub fn into_expr(self) -> Expr {
        self.0
    }

    fn bin(op: BinOp, a: E, b: E) -> E {
        E(Expr::Bin(op, Box::new(a.0), Box::new(b.0)))
    }

    /// Unsigned `self < rhs` (yields 0/1).
    pub fn lt(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Lt, self, rhs.into())
    }

    /// Unsigned `self <= rhs` (yields 0/1).
    pub fn le(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Le, self, rhs.into())
    }

    /// Unsigned `self > rhs` (yields 0/1).
    pub fn gt(self, rhs: impl Into<E>) -> E {
        rhs.into().lt(self)
    }

    /// Unsigned `self >= rhs` (yields 0/1).
    pub fn ge(self, rhs: impl Into<E>) -> E {
        rhs.into().le(self)
    }

    /// `self == rhs` (yields 0/1). Named `eq_` to avoid clashing with
    /// [`PartialEq::eq`].
    pub fn eq_(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Eq, self, rhs.into())
    }

    /// `self != rhs` (yields 0/1).
    pub fn ne_(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Ne, self, rhs.into())
    }

    /// Integer division (division by zero yields zero).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Div, self, rhs.into())
    }

    /// Remainder (modulo zero yields zero).
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Rem, self, rhs.into())
    }

    /// Minimum of the operands.
    pub fn min(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Min, self, rhs.into())
    }

    /// Maximum of the operands.
    pub fn max(self, rhs: impl Into<E>) -> E {
        E::bin(BinOp::Max, self, rhs.into())
    }

    /// Two-way mux: `self != 0 ? then : otherwise`.
    pub fn mux(self, then: impl Into<E>, otherwise: impl Into<E>) -> E {
        E(Expr::Mux(
            Box::new(self.0),
            Box::new(then.into().0),
            Box::new(otherwise.into().0),
        ))
    }

    /// 1 when the operand is zero.
    pub fn is_zero(self) -> E {
        E(Expr::Un(UnOp::IsZero, Box::new(self.0)))
    }

    /// 1 when the operand is non-zero.
    pub fn nonzero(self) -> E {
        E(Expr::Un(UnOp::IsNonZero, Box::new(self.0)))
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> E {
        E(Expr::Un(UnOp::Not, Box::new(self.0)))
    }
}

impl From<u64> for E {
    fn from(v: u64) -> E {
        E::k(v)
    }
}

impl From<E> for Expr {
    fn from(e: E) -> Expr {
        e.0
    }
}

impl From<&E> for Expr {
    fn from(e: &E) -> Expr {
        e.0.clone()
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<T: Into<E>> $trait<T> for E {
            type Output = E;
            fn $method(self, rhs: T) -> E {
                E::bin($op, self, rhs.into())
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);
impl_binop!(Shl, shl, BinOp::Shl);
impl_binop!(Shr, shr, BinOp::Shr);

/// Handle to a register declared through the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg {
    id: RegId,
}

impl Reg {
    /// The register's id in the finished module.
    pub fn id(self) -> RegId {
        self.id
    }

    /// Reads the register as an expression.
    pub fn e(self) -> E {
        E::reg(self.id)
    }
}

impl From<Reg> for E {
    fn from(r: Reg) -> E {
        r.e()
    }
}

/// Handle to an FSM declared through the builder.
///
/// The FSM is lowered to a plain state register plus transition rules; this
/// handle just remembers the state-name encoding so transitions can be
/// declared by name.
#[derive(Debug, Clone)]
pub struct Fsm {
    reg: Reg,
    name: String,
    states: HashMap<String, u64>,
}

impl Fsm {
    /// The backing state register.
    pub fn reg(&self) -> Reg {
        self.reg
    }

    /// The FSM's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The numeric encoding of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not declared, which is a bug in the design.
    pub fn state(&self, state: &str) -> u64 {
        *self
            .states
            .get(state)
            .unwrap_or_else(|| panic!("fsm `{}` has no state `{state}`", self.name))
    }

    /// Expression that is 1 while the FSM is in `state`.
    pub fn in_state(&self, state: &str) -> E {
        self.reg.e().eq_(E::k(self.state(state)))
    }
}

/// Incremental builder for a [`Module`]; see the module-level example.
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    regs: Vec<Register>,
    datapaths: Vec<Datapath>,
    memories: Vec<Memory>,
    inputs: Vec<InputField>,
    advance: Expr,
    done: Expr,
}

impl ModuleBuilder {
    /// Starts a new design named `name`.
    pub fn new(name: &str) -> ModuleBuilder {
        ModuleBuilder {
            name: name.to_owned(),
            regs: Vec::new(),
            datapaths: Vec::new(),
            memories: Vec::new(),
            inputs: Vec::new(),
            advance: Expr::Const(0),
            done: Expr::Const(0),
        }
    }

    /// Declares an input-token field and returns an expression reading it.
    pub fn input(&mut self, name: &str, width: u32) -> E {
        let id = InputId::new(self.inputs.len());
        self.inputs.push(InputField {
            name: name.to_owned(),
            width,
        });
        E::input(id)
    }

    /// Declares a register.
    pub fn reg(&mut self, name: &str, width: u32, init: u64) -> Reg {
        let id = RegId::new(self.regs.len());
        self.regs.push(Register {
            name: name.to_owned(),
            width,
            init,
            rules: Vec::new(),
        });
        Reg { id }
    }

    /// Adds a guarded update `reg <= value when guard`. Rules are applied
    /// in the order they are added; the first firing guard wins.
    pub fn set(&mut self, reg: Reg, guard: impl Into<E>, value: impl Into<E>) {
        self.regs[reg.id.index()].rules.push(UpdateRule {
            guard: guard.into().into_expr(),
            value: value.into().into_expr(),
        });
    }

    /// Declares an FSM with the given state names (encoded 0..n in order).
    /// The FSM resets into the first state.
    pub fn fsm(&mut self, name: &str, states: &[&str]) -> Fsm {
        assert!(!states.is_empty(), "fsm `{name}` needs at least one state");
        let width = 64 - u64::leading_zeros((states.len() as u64).max(2) - 1);
        let reg = self.reg(&format!("{name}.state"), width.max(1), 0);
        let map = states
            .iter()
            .enumerate()
            .map(|(i, s)| ((*s).to_owned(), i as u64))
            .collect();
        Fsm {
            reg,
            name: name.to_owned(),
            states: map,
        }
    }

    /// Declares a transition `from -> to` taken when `cond` holds.
    pub fn trans(&mut self, fsm: &Fsm, from: &str, to: &str, cond: impl Into<E>) {
        let guard = fsm.in_state(from) & cond.into();
        let value = E::k(fsm.state(to));
        self.set(fsm.reg(), guard, value);
    }

    /// Declares a counter-timed stay: when `cond` holds in `from`, load
    /// `duration` into a fresh counter and move to `wait`; decrement there;
    /// leave for `to` when the counter drains.
    ///
    /// This is the canonical RTL idiom the paper's counter features (IC /
    /// AIV / APV) are mined from. Returns the counter register.
    #[allow(clippy::too_many_arguments)]
    pub fn timed(
        &mut self,
        fsm: &Fsm,
        from: &str,
        wait: &str,
        to: &str,
        duration: impl Into<E>,
        cond: impl Into<E>,
        counter_name: &str,
    ) -> Reg {
        let ctr = self.wait_state(fsm, wait, to, counter_name);
        self.enter_wait(fsm, from, wait, ctr, duration, cond);
        ctr
    }

    /// Declares the body of a counter-timed wait state: a fresh counter
    /// that drains one per cycle in `wait`, and the exit transition to `to`
    /// taken when it reaches zero. Entry arms are added separately with
    /// [`ModuleBuilder::enter_wait`], allowing a wait to be reachable from
    /// several states.
    pub fn wait_state(&mut self, fsm: &Fsm, wait: &str, to: &str, counter_name: &str) -> Reg {
        let ctr = self.reg(counter_name, 32, 0);
        self.set(
            ctr,
            fsm.in_state(wait) & ctr.e().gt(E::zero()),
            ctr.e() - E::one(),
        );
        self.trans(fsm, wait, to, ctr.e().eq_(E::zero()));
        ctr
    }

    /// Adds an entry arm into a wait created by
    /// [`ModuleBuilder::wait_state`]: when `cond` holds in `from`, the
    /// counter loads `duration` and the FSM moves to `wait`.
    ///
    /// To chain directly out of another wait `W0` with counter `c0`, pass
    /// `cond = c0.e().eq_(E::zero())` — the load fires on `W0`'s exit
    /// cycle, which the wait-state analysis recognises as quiescent.
    pub fn enter_wait(
        &mut self,
        fsm: &Fsm,
        from: &str,
        wait: &str,
        ctr: Reg,
        duration: impl Into<E>,
        cond: impl Into<E>,
    ) {
        let cond = cond.into();
        self.set(ctr, fsm.in_state(from) & cond.clone(), duration);
        self.trans(fsm, from, wait, cond);
    }

    /// Attaches a pure-compute datapath block (slicer removes it).
    pub fn datapath_compute(
        &mut self,
        name: &str,
        active: impl Into<E>,
        area_um2: f64,
        energy_per_cycle: f64,
        luts: u32,
        dsps: u32,
    ) {
        self.datapaths.push(Datapath {
            name: name.to_owned(),
            active: active.into().into_expr(),
            kind: DatapathKind::Compute,
            area_um2,
            energy_per_cycle,
            luts,
            dsps,
        });
    }

    /// Attaches a serial datapath block (cycle-by-cycle data dependence;
    /// never compressed, kept by the slicer when its control lives on).
    pub fn datapath_serial(
        &mut self,
        name: &str,
        active: impl Into<E>,
        area_um2: f64,
        energy_per_cycle: f64,
        luts: u32,
        dsps: u32,
    ) {
        self.datapaths.push(Datapath {
            name: name.to_owned(),
            active: active.into().into_expr(),
            kind: DatapathKind::Serial,
            area_um2,
            energy_per_cycle,
            luts,
            dsps,
        });
    }

    /// Declares a scratchpad memory.
    pub fn memory(&mut self, name: &str, bytes: u64, control: bool) {
        self.memories.push(Memory {
            name: name.to_owned(),
            bytes,
            control,
        });
    }

    /// Sets the stream-advance condition (consume the head token).
    pub fn advance_when(&mut self, cond: impl Into<E>) {
        self.advance = cond.into().into_expr();
    }

    /// Sets the job-done condition.
    pub fn done_when(&mut self, cond: impl Into<E>) {
        self.done = cond.into().into_expr();
    }

    /// Finalizes and validates the module.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] when the assembled module violates a structural
    /// invariant (see [`Module::validate`]).
    pub fn build(self) -> Result<Module, RtlError> {
        let m = Module {
            name: self.name,
            regs: self.regs,
            datapaths: self.datapaths,
            memories: self.memories,
            inputs: self.inputs,
            advance: self.advance,
            done: self.done,
        };
        m.validate()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_operators_compose() {
        let a = E::k(3) + E::k(4);
        assert_eq!(
            a.expr(),
            &Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Const(3)),
                Box::new(Expr::Const(4))
            )
        );
        let b = E::k(1).lt(2u64) & E::k(1);
        assert!(matches!(b.expr(), Expr::Bin(BinOp::And, _, _)));
        let m = E::one().mux(E::k(5), 6u64);
        assert!(matches!(m.expr(), Expr::Mux(_, _, _)));
    }

    #[test]
    fn fsm_states_encode_in_order() {
        let mut b = ModuleBuilder::new("t");
        let fsm = b.fsm("f", &["A", "B", "C"]);
        assert_eq!(fsm.state("A"), 0);
        assert_eq!(fsm.state("B"), 1);
        assert_eq!(fsm.state("C"), 2);
        assert_eq!(fsm.name(), "f");
    }

    #[test]
    #[should_panic(expected = "has no state")]
    fn unknown_state_panics() {
        let mut b = ModuleBuilder::new("t");
        let fsm = b.fsm("f", &["A"]);
        fsm.state("Z");
    }

    #[test]
    fn timed_creates_counter_with_init_and_step() {
        let mut b = ModuleBuilder::new("t");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("f", &["A", "W", "B"]);
        let ctr = b.timed(&fsm, "A", "W", "B", dur, E::one(), "f.cnt");
        b.done_when(fsm.in_state("B"));
        let m = b.build().unwrap();
        let c = &m.regs[ctr.id().index()];
        assert_eq!(c.name, "f.cnt");
        assert_eq!(c.rules.len(), 2);
        // One load rule (no self-reference) and one decrement rule.
        assert!(c.rules.iter().any(|r| !r.value.reads_reg(ctr.id())));
        assert!(c
            .rules
            .iter()
            .any(|r| r.value.as_self_step(ctr.id()) == Some(-1)));
    }

    #[test]
    fn build_validates() {
        let mut b = ModuleBuilder::new("t");
        let r = b.reg("a", 4, 0);
        b.set(r, E::one(), E::k(200)); // value masked at runtime, fine
        assert!(b.build().is_ok());
    }

    #[test]
    fn fsm_width_fits_state_count() {
        let mut b = ModuleBuilder::new("t");
        let names: Vec<String> = (0..9).map(|i| format!("S{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let fsm = b.fsm("f", &refs);
        let m = b.build().unwrap();
        assert!(m.regs[fsm.reg().id().index()].width >= 4);
    }
}
