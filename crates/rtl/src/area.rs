//! Gate-level cost models: ASIC area and FPGA resources.
//!
//! Substitutes for the paper's Synopsys (TSMC 65 nm) and Vivado (Kintex-7)
//! flows. Structural elements of a [`Module`] are priced individually:
//! register bits, combinational operator nodes, scratchpad memory bytes,
//! and the explicitly annotated datapath blocks (which dominate, as in
//! real accelerators). All downstream results are relative, so only the
//! proportions matter; defaults are chosen to sit in the right range for a
//! 65 nm standard-cell library.

use crate::module::{Module, Register};

/// Per-element ASIC area coefficients (square micrometres, 65 nm-ish).
#[derive(Debug, Clone, Copy)]
pub struct AsicAreaModel {
    /// Area per register bit (flip-flop plus local mux).
    pub um2_per_reg_bit: f64,
    /// Area per combinational operator node (averaged over op mix).
    pub um2_per_op: f64,
    /// Area per scratchpad byte (SRAM macro density).
    pub um2_per_mem_byte: f64,
}

impl Default for AsicAreaModel {
    fn default() -> Self {
        AsicAreaModel {
            um2_per_reg_bit: 12.0,
            um2_per_op: 22.0,
            um2_per_mem_byte: 1.6,
        }
    }
}

/// Area decomposition of a module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Sequential + combinational control logic (registers and rule
    /// expressions).
    pub control_um2: f64,
    /// Annotated datapath blocks.
    pub datapath_um2: f64,
    /// Scratchpad memories.
    pub memory_um2: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total_um2(&self) -> f64 {
        self.control_um2 + self.datapath_um2 + self.memory_um2
    }
}

/// True if the register still carries logic or is read by live logic; inert
/// placeholders left by the slicer are free.
fn reg_is_live(module: &Module, idx: usize, live: &[bool]) -> bool {
    !module.regs[idx].rules.is_empty() || live[idx]
}

fn control_ops(r: &Register) -> usize {
    r.rules
        .iter()
        .map(|rule| rule.guard.op_count() + rule.value.op_count())
        .sum()
}

impl AsicAreaModel {
    /// Computes the area of `module`.
    pub fn area(&self, module: &Module) -> AreaBreakdown {
        let live = module.live_regs();
        let mut control = 0.0;
        for (i, r) in module.regs.iter().enumerate() {
            if !reg_is_live(module, i, &live) {
                continue;
            }
            control += f64::from(r.width) * self.um2_per_reg_bit;
            control += control_ops(r) as f64 * self.um2_per_op;
        }
        control += (module.advance.op_count() + module.done.op_count()) as f64 * self.um2_per_op;
        for dp in &module.datapaths {
            control += dp.active.op_count() as f64 * self.um2_per_op;
        }
        let datapath: f64 = module.datapaths.iter().map(|d| d.area_um2).sum();
        let memory: f64 = module
            .memories
            .iter()
            .map(|m| m.bytes as f64 * self.um2_per_mem_byte)
            .sum();
        AreaBreakdown {
            control_um2: control,
            datapath_um2: datapath,
            memory_um2: memory,
        }
    }
}

/// FPGA resource usage (Kintex-7 style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FpgaResources {
    /// Look-up tables.
    pub luts: u64,
    /// DSP48 blocks.
    pub dsps: u64,
    /// 36 Kb block RAMs.
    pub brams: u64,
}

impl FpgaResources {
    /// Mean of the three resource shares relative to `base`, as used by
    /// the paper's Fig. 17 ("average of LUT/DSP/BRAM"). Shares with a zero
    /// denominator are skipped.
    pub fn mean_share_of(&self, base: &FpgaResources) -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for (a, b) in [
            (self.luts, base.luts),
            (self.dsps, base.dsps),
            (self.brams, base.brams),
        ] {
            if b > 0 {
                acc += a as f64 / b as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }
}

/// Per-element FPGA cost coefficients.
#[derive(Debug, Clone, Copy)]
pub struct FpgaResourceModel {
    /// LUTs per register bit (FF + routing LUT share).
    pub luts_per_reg_bit: f64,
    /// LUTs per combinational operator node.
    pub luts_per_op: f64,
    /// Bytes of scratchpad per BRAM (36 Kb = 4.5 KB).
    pub bytes_per_bram: u64,
}

impl Default for FpgaResourceModel {
    fn default() -> Self {
        FpgaResourceModel {
            luts_per_reg_bit: 1.0,
            luts_per_op: 12.0,
            bytes_per_bram: 4608,
        }
    }
}

impl FpgaResourceModel {
    /// Computes FPGA resource usage of `module`.
    pub fn resources(&self, module: &Module) -> FpgaResources {
        let live = module.live_regs();
        let mut luts = 0.0;
        let mut dsps: u64 = 0;
        for (i, r) in module.regs.iter().enumerate() {
            if !reg_is_live(module, i, &live) {
                continue;
            }
            luts += f64::from(r.width) * self.luts_per_reg_bit;
            luts += control_ops(r) as f64 * self.luts_per_op;
            dsps += r
                .rules
                .iter()
                .map(|rule| (rule.guard.mul_count() + rule.value.mul_count()) as u64)
                .sum::<u64>();
        }
        luts += (module.advance.op_count() + module.done.op_count()) as f64 * self.luts_per_op;
        for dp in &module.datapaths {
            luts += f64::from(dp.luts);
            luts += dp.active.op_count() as f64 * self.luts_per_op;
            dsps += u64::from(dp.dsps);
        }
        let brams: u64 = module
            .memories
            .iter()
            .map(|m| m.bytes.div_ceil(self.bytes_per_bram))
            .sum();
        FpgaResources {
            luts: luts.round() as u64,
            dsps,
            brams,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};

    fn sample() -> Module {
        let mut b = ModuleBuilder::new("m");
        let x = b.input("x", 16);
        let fsm = b.fsm("ctrl", &["A", "W", "B"]);
        b.timed(&fsm, "A", "W", "B", x.clone() * E::k(3), E::one(), "cnt");
        b.datapath_compute("pipe", fsm.in_state("W"), 50_000.0, 2.0, 900, 12);
        b.memory("spm", 9216, false);
        b.done_when(fsm.in_state("B"));
        b.build().unwrap()
    }

    #[test]
    fn asic_area_is_dominated_by_datapath() {
        let m = sample();
        let a = AsicAreaModel::default().area(&m);
        assert!(a.datapath_um2 > a.control_um2);
        assert!((a.total_um2() - (a.control_um2 + a.datapath_um2 + a.memory_um2)).abs() < 1e-9);
        assert!(a.memory_um2 > 0.0);
    }

    #[test]
    fn inert_registers_cost_nothing() {
        let mut m = sample();
        let full = AsicAreaModel::default().area(&m);
        // Kill the counter logic and every reader of it, making it inert.
        let c = m.reg_by_name("cnt").unwrap();
        m.regs[c.index()].rules.clear();
        let f = m.reg_by_name("ctrl.state").unwrap();
        m.regs[f.index()]
            .rules
            .retain(|r| !r.guard.reads_reg(c) && !r.value.reads_reg(c));
        let reduced = AsicAreaModel::default().area(&m);
        assert!(reduced.control_um2 < full.control_um2);
    }

    #[test]
    fn fpga_resources_count_dsps_and_brams() {
        let m = sample();
        let r = FpgaResourceModel::default().resources(&m);
        // 12 datapath DSPs; the constant multiply in the counter load is
        // strength-reduced to LUTs.
        assert_eq!(r.dsps, 12);
        assert_eq!(r.brams, 2);
        assert!(r.luts > 900);
    }

    #[test]
    fn mean_share_averages_available_resources() {
        let base = FpgaResources {
            luts: 1000,
            dsps: 10,
            brams: 0,
        };
        let s = FpgaResources {
            luts: 100,
            dsps: 1,
            brams: 0,
        };
        let share = s.mean_share_of(&base);
        assert!((share - 0.1).abs() < 1e-9);
        assert_eq!(s.mean_share_of(&FpgaResources::default()), 0.0);
    }
}
