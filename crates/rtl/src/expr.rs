//! Combinational expression AST.
//!
//! Expressions are the right-hand sides of register updates and the guards
//! that enable them. They model the combinational logic of an RTL design:
//! pure functions of the current register values and the fields of the
//! input token at the head of the job's stream.
//!
//! All values are `u64` with wrap-around arithmetic; registers declare a bit
//! width and mask their stored value on write, mirroring hardware registers.

use std::fmt;

use crate::module::{InputId, RegId};

/// Binary operators available to combinational logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Integer division; division by zero yields zero (hardware convention).
    Div,
    /// Remainder; modulo by zero yields zero.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amounts >= 64 yield zero).
    Shl,
    /// Logical shift right (shift amounts >= 64 yield zero).
    Shr,
    /// Unsigned less-than comparison; yields 0 or 1.
    Lt,
    /// Unsigned less-or-equal comparison; yields 0 or 1.
    Le,
    /// Equality comparison; yields 0 or 1.
    Eq,
    /// Inequality comparison; yields 0 or 1.
    Ne,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

impl BinOp {
    /// Applies the operator to two values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Rem => a.checked_rem(b).unwrap_or(0),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if b >= 64 {
                    0
                } else {
                    a << b
                }
            }
            BinOp::Shr => {
                if b >= 64 {
                    0
                } else {
                    a >> b
                }
            }
            BinOp::Lt => u64::from(a < b),
            BinOp::Le => u64::from(a <= b),
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Returns a short mnemonic used by the pretty printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Unary operators available to combinational logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise NOT.
    Not,
    /// Logical negation: 1 if the operand is zero, else 0.
    IsZero,
    /// Logical truth: 1 if the operand is non-zero, else 0.
    IsNonZero,
}

impl UnOp {
    /// Applies the operator to a value.
    #[inline]
    pub fn apply(self, a: u64) -> u64 {
        match self {
            UnOp::Not => !a,
            UnOp::IsZero => u64::from(a == 0),
            UnOp::IsNonZero => u64::from(a != 0),
        }
    }
}

/// A combinational expression tree.
///
/// `Expr` values are built with [`crate::builder::E`], the ergonomic wrapper
/// that provides operator overloading; this enum is the canonical
/// representation consumed by the interpreter and the static analyses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant literal.
    Const(u64),
    /// The current value of a register.
    Reg(RegId),
    /// A field of the input token currently at the head of the stream.
    ///
    /// Reading past the end of the stream yields zero, modelling a FIFO
    /// whose `empty` flag gates meaningful use.
    Input(InputId),
    /// 1 when the input stream has no more tokens, else 0.
    StreamEmpty,
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A two-way multiplexer: `cond != 0 ? then : otherwise`.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collects every register read by this expression into `out`.
    pub fn collect_regs(&self, out: &mut Vec<RegId>) {
        match self {
            Expr::Const(_) | Expr::Input(_) | Expr::StreamEmpty => {}
            Expr::Reg(r) => out.push(*r),
            Expr::Bin(_, a, b) => {
                a.collect_regs(out);
                b.collect_regs(out);
            }
            Expr::Un(_, a) => a.collect_regs(out),
            Expr::Mux(c, t, e) => {
                c.collect_regs(out);
                t.collect_regs(out);
                e.collect_regs(out);
            }
        }
    }

    /// Collects every input field read by this expression into `out`.
    pub fn collect_inputs(&self, out: &mut Vec<InputId>) {
        match self {
            Expr::Const(_) | Expr::Reg(_) | Expr::StreamEmpty => {}
            Expr::Input(i) => out.push(*i),
            Expr::Bin(_, a, b) => {
                a.collect_inputs(out);
                b.collect_inputs(out);
            }
            Expr::Un(_, a) => a.collect_inputs(out),
            Expr::Mux(c, t, e) => {
                c.collect_inputs(out);
                t.collect_inputs(out);
                e.collect_inputs(out);
            }
        }
    }

    /// Returns true if this expression reads register `reg`.
    pub fn reads_reg(&self, reg: RegId) -> bool {
        match self {
            Expr::Const(_) | Expr::Input(_) | Expr::StreamEmpty => false,
            Expr::Reg(r) => *r == reg,
            Expr::Bin(_, a, b) => a.reads_reg(reg) || b.reads_reg(reg),
            Expr::Un(_, a) => a.reads_reg(reg),
            Expr::Mux(c, t, e) => c.reads_reg(reg) || t.reads_reg(reg) || e.reads_reg(reg),
        }
    }

    /// Returns true if this expression reads any register at all.
    pub fn reads_any_reg(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Input(_) | Expr::StreamEmpty => false,
            Expr::Reg(_) => true,
            Expr::Bin(_, a, b) => a.reads_any_reg() || b.reads_any_reg(),
            Expr::Un(_, a) => a.reads_any_reg(),
            Expr::Mux(c, t, e) => c.reads_any_reg() || t.reads_any_reg() || e.reads_any_reg(),
        }
    }

    /// Returns true if this expression reads any input field or the
    /// stream-empty flag.
    pub fn reads_stream(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Reg(_) => false,
            Expr::Input(_) | Expr::StreamEmpty => true,
            Expr::Bin(_, a, b) => a.reads_stream() || b.reads_stream(),
            Expr::Un(_, a) => a.reads_stream(),
            Expr::Mux(c, t, e) => c.reads_stream() || t.reads_stream() || e.reads_stream(),
        }
    }

    /// Counts the operator nodes in the tree (used by the area model).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Reg(_) | Expr::Input(_) | Expr::StreamEmpty => 0,
            Expr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Un(_, a) => 1 + a.op_count(),
            Expr::Mux(c, t, e) => 1 + c.op_count() + t.op_count() + e.op_count(),
        }
    }

    /// Counts *variable* multiplier nodes (mapped to DSP blocks by the
    /// FPGA model). A multiply by a constant is strength-reduced to
    /// shift-add LUT logic by synthesis, so it does not count.
    pub fn mul_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Reg(_) | Expr::Input(_) | Expr::StreamEmpty => 0,
            Expr::Bin(op, a, b) => {
                let hard = matches!(op, BinOp::Mul)
                    && !matches!(a.as_ref(), Expr::Const(_))
                    && !matches!(b.as_ref(), Expr::Const(_));
                usize::from(hard) + a.mul_count() + b.mul_count()
            }
            Expr::Un(_, a) => a.mul_count(),
            Expr::Mux(c, t, e) => c.mul_count() + t.mul_count() + e.mul_count(),
        }
    }

    /// Decomposes a guard into its top-level conjuncts.
    ///
    /// RTL guards are written as chains of `&` over boolean sub-terms; the
    /// FSM and wait-state analyses inspect those conjuncts to recognise
    /// `state == K` constraints.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.push_conjuncts(&mut out);
        out
    }

    fn push_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        if let Expr::Bin(BinOp::And, a, b) = self {
            a.push_conjuncts(out);
            b.push_conjuncts(out);
        } else {
            out.push(self);
        }
    }

    /// If this expression is exactly `reg == constant`, returns the pair.
    pub fn as_reg_eq_const(&self) -> Option<(RegId, u64)> {
        if let Expr::Bin(BinOp::Eq, a, b) = self {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Reg(r), Expr::Const(k)) | (Expr::Const(k), Expr::Reg(r)) => {
                    return Some((*r, *k));
                }
                _ => {}
            }
        }
        None
    }

    /// If this expression is `reg +/- constant` (a counter step), returns
    /// the register and the signed step.
    pub fn as_self_step(&self, reg: RegId) -> Option<i64> {
        if let Expr::Bin(op, a, b) = self {
            if let (Expr::Reg(r), Expr::Const(k)) = (a.as_ref(), b.as_ref()) {
                if *r == reg {
                    match op {
                        BinOp::Add => return i64::try_from(*k).ok(),
                        BinOp::Sub => return i64::try_from(*k).ok().map(|v| -v),
                        _ => {}
                    }
                }
            }
        }
        None
    }
}

/// Pretty printer context: resolves ids to names for human-readable dumps.
pub struct ExprDisplay<'a> {
    pub(crate) expr: &'a Expr,
    pub(crate) reg_names: Vec<String>,
    pub(crate) input_names: Vec<String>,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_expr(self.expr, f)
    }
}

impl ExprDisplay<'_> {
    fn fmt_expr(&self, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            Expr::Const(k) => write!(f, "{k}"),
            Expr::Reg(r) => write!(f, "{}", self.reg_names[r.index()]),
            Expr::Input(i) => write!(f, "${}", self.input_names[i.index()]),
            Expr::StreamEmpty => write!(f, "$empty"),
            Expr::Bin(op, a, b) => {
                write!(f, "(")?;
                self.fmt_expr(a, f)?;
                write!(f, " {} ", op.mnemonic())?;
                self.fmt_expr(b, f)?;
                write!(f, ")")
            }
            Expr::Un(UnOp::Not, a) => {
                write!(f, "~")?;
                self.fmt_expr(a, f)
            }
            Expr::Un(UnOp::IsZero, a) => {
                write!(f, "iszero(")?;
                self.fmt_expr(a, f)?;
                write!(f, ")")
            }
            Expr::Un(UnOp::IsNonZero, a) => {
                write!(f, "nonzero(")?;
                self.fmt_expr(a, f)?;
                write!(f, ")")
            }
            Expr::Mux(c, t, e) => {
                write!(f, "(")?;
                self.fmt_expr(c, f)?;
                write!(f, " ? ")?;
                self.fmt_expr(t, f)?;
                write!(f, " : ")?;
                self.fmt_expr(e, f)?;
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_arithmetic_semantics() {
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(BinOp::Div.apply(7, 0), 0);
        assert_eq!(BinOp::Rem.apply(7, 0), 0);
        assert_eq!(BinOp::Shl.apply(1, 64), 0);
        assert_eq!(BinOp::Shr.apply(u64::MAX, 64), 0);
        assert_eq!(BinOp::Min.apply(3, 9), 3);
        assert_eq!(BinOp::Max.apply(3, 9), 9);
    }

    #[test]
    fn binop_comparisons_yield_bits() {
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Lt.apply(2, 2), 0);
        assert_eq!(BinOp::Le.apply(2, 2), 1);
        assert_eq!(BinOp::Eq.apply(5, 5), 1);
        assert_eq!(BinOp::Ne.apply(5, 5), 0);
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Not.apply(0), u64::MAX);
        assert_eq!(UnOp::IsZero.apply(0), 1);
        assert_eq!(UnOp::IsZero.apply(3), 0);
        assert_eq!(UnOp::IsNonZero.apply(3), 1);
    }

    #[test]
    fn conjunct_decomposition() {
        let r = RegId::new(0);
        let a = Expr::Bin(BinOp::Eq, Box::new(Expr::Reg(r)), Box::new(Expr::Const(2)));
        let b = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::Input(InputId::new(0))),
            Box::new(Expr::Const(9)),
        );
        let both = Expr::Bin(BinOp::And, Box::new(a.clone()), Box::new(b.clone()));
        let cs = both.conjuncts();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].as_reg_eq_const(), Some((r, 2)));
        assert!(cs[1].as_reg_eq_const().is_none());
    }

    #[test]
    fn self_step_detection() {
        let r = RegId::new(3);
        let dec = Expr::Bin(BinOp::Sub, Box::new(Expr::Reg(r)), Box::new(Expr::Const(1)));
        assert_eq!(dec.as_self_step(r), Some(-1));
        assert_eq!(dec.as_self_step(RegId::new(4)), None);
        let inc = Expr::Bin(BinOp::Add, Box::new(Expr::Reg(r)), Box::new(Expr::Const(2)));
        assert_eq!(inc.as_self_step(r), Some(2));
    }

    #[test]
    fn dependency_collection() {
        let e = Expr::Mux(
            Box::new(Expr::Reg(RegId::new(1))),
            Box::new(Expr::Input(InputId::new(2))),
            Box::new(Expr::StreamEmpty),
        );
        let mut regs = Vec::new();
        e.collect_regs(&mut regs);
        assert_eq!(regs, vec![RegId::new(1)]);
        let mut ins = Vec::new();
        e.collect_inputs(&mut ins);
        assert_eq!(ins, vec![InputId::new(2)]);
        assert!(e.reads_stream());
        assert!(e.reads_reg(RegId::new(1)));
        assert!(!e.reads_reg(RegId::new(0)));
    }

    #[test]
    fn op_counting() {
        let r = RegId::new(0);
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Reg(r)),
                Box::new(Expr::Const(1)),
            )),
            Box::new(Expr::Const(3)),
        );
        assert_eq!(e.op_count(), 2);
        // Constant multiply is strength-reduced: no DSP.
        assert_eq!(e.mul_count(), 0);
        let hard = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Reg(r)),
            Box::new(Expr::Input(InputId::new(0))),
        );
        assert_eq!(hard.mul_count(), 1);
    }
}
