//! Textual serialization of [`Module`]s — the repository's "RTL" format.
//!
//! The paper's flow consumes Verilog; this substrate's designs are plain
//! data, so they get a concrete syntax that can be pretty-printed, stored,
//! diffed, and parsed back. Round-tripping is lossless (checked by
//! property tests).
//!
//! ```text
//! module toy {
//!   input dur: 16;
//!   reg ctrl.state: 2 = 0 {
//!     1 when (ctrl.state == 0) & !$empty;
//!     2 when (ctrl.state == 1) & (cnt == 0);
//!   }
//!   reg cnt: 32 = 0 {
//!     $dur when (ctrl.state == 0) & !$empty;
//!     cnt - 1 when (ctrl.state == 1) & (0 < cnt);
//!   }
//!   datapath alu compute area=100 energy=1 luts=50 dsps=0 active=(ctrl.state == 1);
//!   memory spm bytes=4096 control=false;
//!   advance (ctrl.state == 2);
//!   done (ctrl.state == 0) & $empty;
//! }
//! ```
//!
//! Inputs are referenced as `$name`, the stream-empty flag as `$empty`,
//! registers by their (dotted) name. `!x` is the is-zero test, `~x`
//! bitwise NOT, and `mux(c, a, b)`, `min(a, b)`, `max(a, b)` are written
//! as calls.

use std::collections::HashMap;
use std::error::Error;
use std::fmt::Write as _;

use crate::expr::{BinOp, Expr, UnOp};
use crate::module::{
    Datapath, DatapathKind, InputField, Memory, Module, RegId, Register, UpdateRule,
};

/// A parse failure with line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for ParseError {}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

/// Renders a module in the textual RTL format.
pub fn to_text(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {} {{", module.name);
    for i in &module.inputs {
        let _ = writeln!(out, "  input {}: {};", i.name, i.width);
    }
    for r in &module.regs {
        let _ = writeln!(out, "  reg {}: {} = {} {{", r.name, r.width, r.init);
        for rule in &r.rules {
            let _ = writeln!(
                out,
                "    {} when {};",
                expr_text(&rule.value, module),
                expr_text(&rule.guard, module)
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for d in &module.datapaths {
        let kind = match d.kind {
            DatapathKind::Compute => "compute",
            DatapathKind::Serial => "serial",
        };
        let _ = writeln!(
            out,
            "  datapath {} {kind} area={} energy={} luts={} dsps={} active=({});",
            d.name,
            d.area_um2,
            d.energy_per_cycle,
            d.luts,
            d.dsps,
            expr_text(&d.active, module)
        );
    }
    for m in &module.memories {
        let _ = writeln!(
            out,
            "  memory {} bytes={} control={};",
            m.name, m.bytes, m.control
        );
    }
    let _ = writeln!(out, "  advance {};", expr_text(&module.advance, module));
    let _ = writeln!(out, "  done {};", expr_text(&module.done, module));
    let _ = writeln!(out, "}}");
    out
}

fn expr_text(e: &Expr, m: &Module) -> String {
    match e {
        Expr::Const(k) => k.to_string(),
        Expr::Reg(r) => m.regs[r.index()].name.clone(),
        Expr::Input(i) => format!("${}", m.inputs[i.index()].name),
        Expr::StreamEmpty => "$empty".into(),
        Expr::Bin(BinOp::Min, a, b) => {
            format!("min({}, {})", expr_text(a, m), expr_text(b, m))
        }
        Expr::Bin(BinOp::Max, a, b) => {
            format!("max({}, {})", expr_text(a, m), expr_text(b, m))
        }
        Expr::Bin(op, a, b) => format!(
            "({} {} {})",
            expr_text(a, m),
            op.mnemonic(),
            expr_text(b, m)
        ),
        Expr::Un(UnOp::Not, a) => format!("~{}", expr_text(a, m)),
        Expr::Un(UnOp::IsZero, a) => format!("!{}", expr_text(a, m)),
        Expr::Un(UnOp::IsNonZero, a) => format!("!!{}", expr_text(a, m)),
        Expr::Mux(c, t, f) => format!(
            "mux({}, {}, {})",
            expr_text(c, m),
            expr_text(t, m),
            expr_text(f, m)
        ),
    }
}

// ---------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Dollar(String),
    Number(u64),
    Float(String),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    column: usize,
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "!!", "{", "}", "(", ")", ";", ":", "=", ",", "+", "-",
    "*", "/", "%", "&", "|", "^", "<", ">", "!", "~",
];

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start_col = col;
        if c == '$' {
            let mut j = i + 1;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                j += 1;
            }
            let name = &src[i + 1..j];
            if name.is_empty() {
                return Err(ParseError {
                    message: "expected name after `$`".into(),
                    line,
                    column: start_col,
                });
            }
            out.push(Token {
                tok: Tok::Dollar(name.to_owned()),
                line,
                column: start_col,
            });
            col += j - i;
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            // Fractional part makes it a float token.
            if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
                j += 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                out.push(Token {
                    tok: Tok::Float(src[i..j].to_owned()),
                    line,
                    column: start_col,
                });
            } else {
                let n: u64 = src[i..j].parse().map_err(|_| ParseError {
                    message: "number too large".into(),
                    line,
                    column: start_col,
                })?;
                out.push(Token {
                    tok: Tok::Number(n),
                    line,
                    column: start_col,
                });
            }
            col += j - i;
            i = j;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                j += 1;
            }
            out.push(Token {
                tok: Tok::Ident(src[i..j].to_owned()),
                line,
                column: start_col,
            });
            col += j - i;
            i = j;
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line,
                    column: start_col,
                });
                i += p.len();
                col += p.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            message: format!("unexpected character `{c}`"),
            line,
            column: start_col,
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        column: col,
    });
    Ok(out)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    inputs: Vec<InputField>,
    input_ids: HashMap<String, usize>,
    /// Register name -> id, assigned on first sight so forward references
    /// work; bodies are resolved in a second pass.
    reg_ids: HashMap<String, usize>,
    reg_order: Vec<String>,
}

/// Unresolved expression: register references by name.
#[derive(Debug, Clone)]
enum PExpr {
    Const(u64),
    Name(String),
    Input(usize),
    StreamEmpty,
    Bin(BinOp, Box<PExpr>, Box<PExpr>),
    Un(UnOp, Box<PExpr>),
    Mux(Box<PExpr>, Box<PExpr>, Box<PExpr>),
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        (self.toks[self.pos].line, self.toks[self.pos].column)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.here();
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.bump() {
            Tok::Punct(q) if q == p => Ok(()),
            other => Err(ParseError {
                message: format!("expected `{p}`, found {other:?}"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, found {other:?}"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Tok::Number(n) => Ok(n),
            other => Err(ParseError {
                message: format!("expected number, found {other:?}"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
        }
    }

    /// Parses a float written as `int` or `int.frac`.
    fn expect_float(&mut self) -> Result<f64, ParseError> {
        match self.bump() {
            Tok::Number(n) => Ok(n as f64),
            Tok::Float(s) => s.parse().map_err(|_| ParseError {
                message: format!("bad float `{s}`"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
            other => Err(ParseError {
                message: format!("expected number, found {other:?}"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
        }
    }

    fn reg_id_of(&mut self, name: &str) -> usize {
        if let Some(&i) = self.reg_ids.get(name) {
            return i;
        }
        let id = self.reg_order.len();
        self.reg_ids.insert(name.to_owned(), id);
        self.reg_order.push(name.to_owned());
        id
    }

    // expression parsing: precedence climbing
    fn parse_expr(&mut self) -> Result<PExpr, ParseError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<PExpr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("|") => (BinOp::Or, 1),
                Tok::Punct("^") => (BinOp::Xor, 2),
                Tok::Punct("&") => (BinOp::And, 3),
                Tok::Punct("==") => (BinOp::Eq, 4),
                Tok::Punct("!=") => (BinOp::Ne, 4),
                Tok::Punct("<") => (BinOp::Lt, 5),
                Tok::Punct("<=") => (BinOp::Le, 5),
                Tok::Punct("<<") => (BinOp::Shl, 6),
                Tok::Punct(">>") => (BinOp::Shr, 6),
                Tok::Punct("+") => (BinOp::Add, 7),
                Tok::Punct("-") => (BinOp::Sub, 7),
                Tok::Punct("*") => (BinOp::Mul, 8),
                Tok::Punct("/") => (BinOp::Div, 8),
                Tok::Punct("%") => (BinOp::Rem, 8),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = PExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<PExpr, ParseError> {
        match self.peek().clone() {
            Tok::Punct("!!") => {
                self.bump();
                Ok(PExpr::Un(UnOp::IsNonZero, Box::new(self.parse_unary()?)))
            }
            Tok::Punct("!") => {
                self.bump();
                Ok(PExpr::Un(UnOp::IsZero, Box::new(self.parse_unary()?)))
            }
            Tok::Punct("~") => {
                self.bump();
                Ok(PExpr::Un(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<PExpr, ParseError> {
        match self.bump() {
            Tok::Number(n) => Ok(PExpr::Const(n)),
            Tok::Dollar(name) => {
                if name == "empty" {
                    Ok(PExpr::StreamEmpty)
                } else if let Some(&i) = self.input_ids.get(&name) {
                    Ok(PExpr::Input(i))
                } else {
                    Err(self.err(format!("unknown input `${name}`")))
                }
            }
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "mux" || name == "min" || name == "max" => {
                self.expect_punct("(")?;
                let a = self.parse_expr()?;
                self.expect_punct(",")?;
                let b = self.parse_expr()?;
                let e = if name == "mux" {
                    self.expect_punct(",")?;
                    let c = self.parse_expr()?;
                    self.expect_punct(")")?;
                    PExpr::Mux(Box::new(a), Box::new(b), Box::new(c))
                } else {
                    self.expect_punct(")")?;
                    let op = if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    };
                    PExpr::Bin(op, Box::new(a), Box::new(b))
                };
                Ok(e)
            }
            Tok::Ident(name) => Ok(PExpr::Name(name)),
            other => Err(ParseError {
                message: format!("expected expression, found {other:?}"),
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
            }),
        }
    }

    fn resolve(&self, e: &PExpr) -> Result<Expr, ParseError> {
        Ok(match e {
            PExpr::Const(k) => Expr::Const(*k),
            PExpr::Input(i) => Expr::Input(crate::module::InputId::new(*i)),
            PExpr::StreamEmpty => Expr::StreamEmpty,
            PExpr::Name(n) => {
                let id = self.reg_ids.get(n).ok_or_else(|| ParseError {
                    message: format!("unknown register `{n}`"),
                    line: 0,
                    column: 0,
                })?;
                Expr::Reg(RegId::new(*id))
            }
            PExpr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(self.resolve(a)?), Box::new(self.resolve(b)?))
            }
            PExpr::Un(op, a) => Expr::Un(*op, Box::new(self.resolve(a)?)),
            PExpr::Mux(c, t, f) => Expr::Mux(
                Box::new(self.resolve(c)?),
                Box::new(self.resolve(t)?),
                Box::new(self.resolve(f)?),
            ),
        })
    }
}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input and propagates the module
/// validation error (wrapped in a [`ParseError`]) when the parsed design
/// is structurally inconsistent.
pub fn from_text(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        inputs: Vec::new(),
        input_ids: HashMap::new(),
        reg_ids: HashMap::new(),
        reg_order: Vec::new(),
    };
    p.expect_keyword("module")?;
    let name = p.expect_ident()?;
    p.expect_punct("{")?;

    struct RawReg {
        name: String,
        width: u32,
        init: u64,
        rules: Vec<(PExpr, PExpr)>,
    }
    let mut raw_regs: Vec<RawReg> = Vec::new();
    let mut datapaths = Vec::new();
    let mut memories = Vec::new();
    let mut advance = PExpr::Const(0);
    let mut done = PExpr::Const(0);

    loop {
        match p.peek().clone() {
            Tok::Punct("}") => {
                p.bump();
                break;
            }
            Tok::Ident(kw) if kw == "input" => {
                p.bump();
                let iname = p.expect_ident()?;
                p.expect_punct(":")?;
                let width = p.expect_number()? as u32;
                p.expect_punct(";")?;
                p.input_ids.insert(iname.clone(), p.inputs.len());
                p.inputs.push(InputField { name: iname, width });
            }
            Tok::Ident(kw) if kw == "reg" => {
                p.bump();
                let rname = p.expect_ident()?;
                p.reg_id_of(&rname);
                p.expect_punct(":")?;
                let width = p.expect_number()? as u32;
                p.expect_punct("=")?;
                let init = p.expect_number()?;
                p.expect_punct("{")?;
                let mut rules = Vec::new();
                while p.peek() != &Tok::Punct("}") {
                    let value = p.parse_expr()?;
                    p.expect_keyword("when")?;
                    let guard = p.parse_expr()?;
                    p.expect_punct(";")?;
                    rules.push((value, guard));
                }
                p.expect_punct("}")?;
                raw_regs.push(RawReg {
                    name: rname,
                    width,
                    init,
                    rules,
                });
            }
            Tok::Ident(kw) if kw == "datapath" => {
                p.bump();
                let dname = p.expect_ident()?;
                let kind = match p.expect_ident()?.as_str() {
                    "compute" => DatapathKind::Compute,
                    "serial" => DatapathKind::Serial,
                    other => return Err(p.err(format!("unknown datapath kind `{other}`"))),
                };
                p.expect_keyword("area")?;
                p.expect_punct("=")?;
                let area_um2 = p.expect_float()?;
                p.expect_keyword("energy")?;
                p.expect_punct("=")?;
                let energy_per_cycle = p.expect_float()?;
                p.expect_keyword("luts")?;
                p.expect_punct("=")?;
                let luts = p.expect_number()? as u32;
                p.expect_keyword("dsps")?;
                p.expect_punct("=")?;
                let dsps = p.expect_number()? as u32;
                p.expect_keyword("active")?;
                p.expect_punct("=")?;
                p.expect_punct("(")?;
                let active = p.parse_expr()?;
                p.expect_punct(")")?;
                p.expect_punct(";")?;
                datapaths.push((dname, kind, area_um2, energy_per_cycle, luts, dsps, active));
            }
            Tok::Ident(kw) if kw == "memory" => {
                p.bump();
                let mname = p.expect_ident()?;
                p.expect_keyword("bytes")?;
                p.expect_punct("=")?;
                let bytes = p.expect_number()?;
                p.expect_keyword("control")?;
                p.expect_punct("=")?;
                let control = match p.expect_ident()?.as_str() {
                    "true" => true,
                    "false" => false,
                    other => return Err(p.err(format!("expected bool, found `{other}`"))),
                };
                p.expect_punct(";")?;
                memories.push(Memory {
                    name: mname,
                    bytes,
                    control,
                });
            }
            Tok::Ident(kw) if kw == "advance" => {
                p.bump();
                advance = p.parse_expr()?;
                p.expect_punct(";")?;
            }
            Tok::Ident(kw) if kw == "done" => {
                p.bump();
                done = p.parse_expr()?;
                p.expect_punct(";")?;
            }
            other => return Err(p.err(format!("unexpected item {other:?}"))),
        }
    }

    // Resolve register references now that all names are known.
    let mut regs: Vec<Register> = Vec::new();
    // Order registers by first-declaration order (RawReg order), but ids
    // were assigned on first *sight* (which may be a forward reference in
    // an expression). Build in id order.
    let mut by_name: HashMap<String, RawReg> =
        raw_regs.into_iter().map(|r| (r.name.clone(), r)).collect();
    for rname in p.reg_order.clone() {
        let raw = by_name.remove(&rname).ok_or_else(|| ParseError {
            message: format!("register `{rname}` referenced but never declared"),
            line: 0,
            column: 0,
        })?;
        let rules = raw
            .rules
            .iter()
            .map(|(v, g)| {
                Ok(UpdateRule {
                    guard: p.resolve(g)?,
                    value: p.resolve(v)?,
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?;
        regs.push(Register {
            name: raw.name,
            width: raw.width,
            init: raw.init,
            rules,
        });
    }
    let datapaths = datapaths
        .into_iter()
        .map(
            |(dname, kind, area_um2, energy_per_cycle, luts, dsps, active)| {
                Ok(Datapath {
                    name: dname,
                    active: p.resolve(&active)?,
                    kind,
                    area_um2,
                    energy_per_cycle,
                    luts,
                    dsps,
                })
            },
        )
        .collect::<Result<Vec<_>, ParseError>>()?;

    let module = Module {
        name,
        regs,
        datapaths,
        memories,
        inputs: p.inputs.clone(),
        advance: p.resolve(&advance)?,
        done: p.resolve(&done)?,
    };
    module.validate().map_err(|e| ParseError {
        message: format!("validation failed: {e}"),
        line: 0,
        column: 0,
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};
    use crate::interp::{ExecMode, JobInput, Simulator};

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN",
            "EMIT",
            dur * E::k(3) + E::k(5),
            E::stream_empty().is_zero(),
            "cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_compute("alu", fsm.in_state("RUN"), 512.5, 0.9, 64, 2);
        b.memory("spm", 2048, false);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = toy();
        let text = to_text(&m);
        let back = from_text(&text).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.regs.len(), m.regs.len());
        assert_eq!(back.inputs.len(), m.inputs.len());
        assert_eq!(back.datapaths.len(), m.datapaths.len());
        assert_eq!(back.memories.len(), m.memories.len());
        // The parsed module must be semantically identical: same text on
        // re-print, same simulation behaviour.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let m = toy();
        let back = from_text(&to_text(&m)).unwrap();
        let mut j = JobInput::new(1);
        j.push(&[9]);
        j.push(&[0]);
        j.push(&[250]);
        let a = Simulator::new(&m)
            .run(&j, ExecMode::FastForward, None)
            .unwrap();
        let b = Simulator::new(&back)
            .run(&j, ExecMode::FastForward, None)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dp_active, b.dp_active);
    }

    #[test]
    fn all_benchmarks_round_trip() {
        // The format must cover every construct the shipped designs use.
        // (Benchmarks live in predvfs-accel; emulate their constructs.)
        let mut b = ModuleBuilder::new("constructs");
        let x = b.input("x", 9);
        let fsm = b.fsm("ctrl", &["A", "W", "HX", "B"]);
        let c = b.wait_state(&fsm, "W", "HX", "c");
        b.enter_wait(
            &fsm,
            "A",
            "W",
            c,
            x.clone() * E::k(2) + E::k(20),
            E::stream_empty().is_zero(),
        );
        let sh = b.reg("sh", 16, 0);
        b.set(sh, fsm.in_state("W") & c.e().eq_(E::zero()), x.clone());
        b.set(
            sh,
            fsm.in_state("HX") & sh.e().ne_(E::zero()),
            sh.e() - (sh.e() >> E::k(3)) - E::one(),
        );
        b.trans(&fsm, "HX", "B", sh.e().eq_(E::zero()));
        b.trans(&fsm, "B", "A", E::one());
        b.datapath_serial("scan", fsm.in_state("HX"), 77.0, 1.0, 12, 0);
        b.advance_when(fsm.in_state("B"));
        b.done_when(fsm.in_state("A") & E::stream_empty());
        let m = b.build().unwrap();
        let back = from_text(&to_text(&m)).unwrap();
        assert_eq!(to_text(&back), to_text(&m));
    }

    #[test]
    fn errors_carry_positions() {
        let err = from_text("module broken {\n  input x 16;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected `:`"));
    }

    #[test]
    fn unknown_register_is_rejected() {
        let src =
            "module m {\n  reg a: 8 = 0 {\n    ghost + 1 when 1;\n  }\n  advance 0;\n  done 1;\n}";
        let err = from_text(src).unwrap_err();
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn comments_are_ignored() {
        let src = "# a comment\nmodule m { # trailing\n  advance 0;\n  done 1;\n}";
        let m = from_text(src).unwrap();
        assert_eq!(m.name, "m");
    }

    #[test]
    fn mux_min_max_round_trip() {
        let src = "module m {\n  input a: 8;\n  reg r: 8 = 0 {\n    mux($a < 3, min($a, 2), max($a, 7)) when 1;\n  }\n  advance 0;\n  done 1;\n}";
        let m = from_text(src).unwrap();
        let again = from_text(&to_text(&m)).unwrap();
        assert_eq!(to_text(&m), to_text(&again));
    }
}
