//! Cycle-level interpretation of [`Module`]s.
//!
//! The simulator executes a module synchronously: each cycle, every
//! register's update rules are evaluated against the *current* state and the
//! first firing rule provides the next value. Jobs are driven by a token
//! stream (the DMA-filled scratchpad of the paper's system model, §2.1);
//! `advance` consumes tokens and `done` terminates the job.
//!
//! Three execution modes are offered:
//!
//! * [`ExecMode::Step`] — pure reference semantics, one call per cycle.
//! * [`ExecMode::FastForward`] — statically detected wait states (see
//!   [`crate::analysis`]) are skipped in one step. This is *exact*: the
//!   skipped cycles are provably quiescent, so traces are identical to
//!   `Step` (a property the test suite checks).
//! * [`ExecMode::Compressed`] — hardware-slice semantics (§3.5): non-serial
//!   wait states cost a single cycle, modelling the slice whose FSM no
//!   longer waits for removed datapaths. Serial states still cost their
//!   full latency, because even a slice must do serial work (e.g. entropy
//!   decoding) cycle by cycle.

use std::collections::HashMap;

use crate::analysis::{Analysis, WaitDir};
use crate::error::RtlError;
use crate::expr::Expr;
use crate::instrument::ProbeProgram;
use crate::module::{Module, RegId};

/// A job's input: a stream of fixed-schema tokens.
///
/// Tokens model the units the accelerator consumes — macroblocks, MCUs,
/// particles, data bursts. Fields are stored flattened for locality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInput {
    fields: usize,
    data: Vec<u64>,
}

impl JobInput {
    /// Creates an empty stream whose tokens carry `fields` values each.
    pub fn new(fields: usize) -> JobInput {
        JobInput {
            fields,
            data: Vec::new(),
        }
    }

    /// Appends one token.
    ///
    /// # Panics
    ///
    /// Panics if `token.len() != fields`.
    pub fn push(&mut self, token: &[u64]) {
        assert_eq!(
            token.len(),
            self.fields,
            "token arity mismatch: expected {} fields",
            self.fields
        );
        self.data.extend_from_slice(token);
    }

    /// Number of tokens in the stream.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.fields).unwrap_or(0)
    }

    /// True when the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads field `field` of token `index`.
    #[inline]
    pub fn get(&self, index: usize, field: usize) -> u64 {
        self.data[index * self.fields + field]
    }

    /// Number of fields per token.
    pub fn fields(&self) -> usize {
        self.fields
    }
}

/// Execution semantics; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Reference cycle-by-cycle stepping.
    Step,
    /// Exact skipping of quiescent wait states.
    FastForward,
    /// Hardware-slice timing: compressible waits cost one cycle.
    Compressed,
}

/// The observable outcome of running one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Total cycles the job occupied the accelerator.
    pub cycles: u64,
    /// Active-cycle counts per datapath block (energy accounting).
    pub dp_active: Vec<u64>,
    /// Tokens consumed from the stream.
    pub tokens_consumed: usize,
    /// Cycles executed by explicit stepping.
    pub stepped_cycles: u64,
    /// Cycles covered by fast-forward/compression skips.
    pub skipped_cycles: u64,
    /// Feature values recorded by probes (empty when unprobed).
    pub features: Vec<f64>,
}

impl JobTrace {
    /// Returns the trace with execution cycles and per-block datapath
    /// activity scaled by `scale`, rounded to whole cycles. Features are
    /// left untouched: a scaled job *looks* identical to the feature
    /// slice but takes longer — the primitive behind injected workload
    /// drift and transient trace spikes.
    pub fn scaled(&self, scale: f64) -> JobTrace {
        let mut t = self.clone();
        t.cycles = (t.cycles as f64 * scale).round() as u64;
        for a in &mut t.dp_active {
            *a = (*a as f64 * scale).round() as u64;
        }
        t
    }
}

#[derive(Debug, Clone)]
struct WaitPlan {
    counter: usize,
    dir: WaitDir,
    bound: Option<Expr>,
    maybe_active_dps: Vec<usize>,
    serial: bool,
}

/// Reusable execution engine for one module.
///
/// Construction precomputes the wait-state plans; [`Simulator::run`] may
/// then be called once per job.
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    waits: HashMap<(usize, u64), WaitPlan>,
    fsm_regs: Vec<usize>,
    cycle_limit: u64,
    /// Rule schedule bucketed by the primary FSM's state: a rule whose
    /// guard carries a `state == K` conjunct on the primary FSM can only
    /// fire in state `K`, so each cycle evaluates a handful of rules
    /// instead of the whole design. Purely an interpreter optimization —
    /// semantics are identical (checked by the Step-vs-FastForward tests).
    sched: Schedule,
}

#[derive(Debug, Clone, Copy)]
struct PlanRule {
    reg: usize,
    rule: usize,
}

#[derive(Debug)]
enum Schedule {
    /// No primary FSM found: evaluate everything every cycle.
    Flat,
    /// Bucketed by primary-FSM state value.
    ByState {
        fsm: usize,
        /// Per-state rule lists (rules with no state conjunct included in
        /// every bucket), ordered by (register, declaration order).
        rules: Vec<Vec<PlanRule>>,
        /// Per-state datapath candidates (not provably inactive).
        dps: Vec<Vec<usize>>,
    },
}

impl<'m> Simulator<'m> {
    /// Builds a simulator, running the static analyses to enable
    /// fast-forwarding.
    pub fn new(module: &'m Module) -> Simulator<'m> {
        let analysis = Analysis::run(module);
        Simulator::with_analysis(module, &analysis)
    }

    /// Builds a simulator from a precomputed [`Analysis`].
    pub fn with_analysis(module: &'m Module, analysis: &Analysis) -> Simulator<'m> {
        let mut waits = HashMap::new();
        for w in &analysis.waits {
            waits.insert(
                (w.fsm.index(), w.state),
                WaitPlan {
                    counter: w.counter.index(),
                    dir: w.dir,
                    bound: w.bound.clone(),
                    maybe_active_dps: w.maybe_active_dps.clone(),
                    serial: w.serial,
                },
            );
        }
        let mut fsm_regs: Vec<usize> = analysis.fsms.iter().map(|f| f.reg.index()).collect();
        fsm_regs.sort_unstable();
        fsm_regs.dedup();
        let sched = Self::build_schedule(module, analysis);
        Simulator {
            module,
            waits,
            fsm_regs,
            cycle_limit: 1 << 34,
            sched,
        }
    }

    fn build_schedule(module: &'m Module, analysis: &Analysis) -> Schedule {
        use crate::analysis::{provably_inactive_in, provably_zero_in};
        let Some(fsm) = analysis.fsms.first() else {
            return Schedule::Flat;
        };
        let max_state = fsm.states.iter().max().copied().unwrap_or(0);
        if max_state > 4096 {
            return Schedule::Flat;
        }
        let n = (max_state + 1) as usize;
        let mut rules: Vec<Vec<PlanRule>> = vec![Vec::new(); n];
        for (ri, r) in module.regs.iter().enumerate() {
            for (i, rule) in r.rules.iter().enumerate() {
                let plan = PlanRule { reg: ri, rule: i };
                for (s, bucket) in rules.iter_mut().enumerate() {
                    if !provably_inactive_in(&rule.guard, fsm.reg, s as u64) {
                        bucket.push(plan);
                    }
                }
            }
        }
        let mut dps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (di, dp) in module.datapaths.iter().enumerate() {
            for (s, bucket) in dps.iter_mut().enumerate() {
                if !provably_zero_in(&dp.active, fsm.reg, s as u64) {
                    bucket.push(di);
                }
            }
        }
        Schedule::ByState {
            fsm: fsm.reg.index(),
            rules,
            dps,
        }
    }

    /// Overrides the default cycle budget (2³⁴) after which a job is
    /// declared hung.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// The module being simulated.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Runs one job to completion.
    ///
    /// `probes`, when given, must have been built for this module (or for a
    /// module this one was sliced from with identical register ids); feature
    /// values are accumulated into the returned trace.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CycleLimit`] if `done` never asserts within the
    /// cycle budget, and [`RtlError::UnknownRegister`] (before cycle 0) if
    /// `probes` references a register the module does not have.
    pub fn run(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<JobTrace, RtlError> {
        self.run_with_state(job, mode, probes).map(|(t, _)| t)
    }

    /// Like [`Simulator::run`], but also returns the final register file
    /// (the flattened architectural state at the cycle `done` asserted).
    ///
    /// The mode-equivalence and differential suites compare this buffer:
    /// `FastForward` and `Compressed` must agree with `Step` — and the
    /// compiled VM with the interpreter — on every register, not just on
    /// trace aggregates.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`].
    pub fn run_with_state(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<(JobTrace, Vec<u64>), RtlError> {
        let _span = predvfs_obs::span("rtl.interp.run");
        if let Some(p) = probes {
            p.validate(self.module)?;
        }
        let mut regs: Vec<u64> = self.module.regs.iter().map(|r| r.init).collect();
        let mut trace = JobTrace {
            cycles: 0,
            dp_active: vec![0; self.module.datapaths.len()],
            tokens_consumed: 0,
            stepped_cycles: 0,
            skipped_cycles: 0,
            features: probes
                .map(|p| vec![0.0; p.feature_count()])
                .unwrap_or_default(),
        };
        if let Some(p) = probes {
            // Bias feature is constant 1 for every job.
            if let Some(b) = p.bias_index() {
                trace.features[b] = 1.0;
            }
        }
        let mut tok = 0usize;
        // Deferred writes of one synchronous step: (reg, rule, new value).
        let mut changes: Vec<(usize, usize, u64)> = Vec::with_capacity(16);
        let all_dps: Vec<usize> = (0..self.module.datapaths.len()).collect();
        loop {
            if eval(&self.module.done, &regs, job, tok) != 0 {
                return Ok((trace, regs));
            }
            if trace.cycles >= self.cycle_limit {
                return Err(RtlError::CycleLimit {
                    limit: self.cycle_limit,
                });
            }
            // Try to skip a wait state.
            if mode != ExecMode::Step {
                if let Some(skip) = self.try_skip(&mut regs, job, tok, mode, &mut trace) {
                    // Saturate: a skip can cover astronomically many cycles
                    // when an adversarial WCET-style bound loads the counter
                    // near u64::MAX; wrapping here would silently reset the
                    // cycle count and defeat the hang detector below.
                    trace.cycles = trace.cycles.saturating_add(skip.0);
                    trace.skipped_cycles = trace.skipped_cycles.saturating_add(skip.1);
                    continue;
                }
            }
            // Normal synchronous step: evaluate the scheduled rules against
            // the current state, then apply.
            changes.clear();
            let bucket: Option<(&[PlanRule], &[usize])> = match &self.sched {
                Schedule::Flat => None,
                Schedule::ByState { fsm, rules, dps } => {
                    let s = regs[*fsm] as usize;
                    rules.get(s).map(|b| (b.as_slice(), dps[s].as_slice()))
                }
            };
            let dps: &[usize] = match bucket {
                Some((candidates, dps)) => {
                    let mut skip_reg = usize::MAX;
                    for pr in candidates {
                        if pr.reg == skip_reg {
                            continue;
                        }
                        let r = &self.module.regs[pr.reg];
                        let rule = &r.rules[pr.rule];
                        if eval(&rule.guard, &regs, job, tok) != 0 {
                            let v = eval(&rule.value, &regs, job, tok) & r.mask();
                            changes.push((pr.reg, pr.rule, v));
                            skip_reg = pr.reg;
                        }
                    }
                    dps
                }
                None => {
                    // Flat fallback: scan every register.
                    for (i, r) in self.module.regs.iter().enumerate() {
                        for (ri, rule) in r.rules.iter().enumerate() {
                            if eval(&rule.guard, &regs, job, tok) != 0 {
                                let v = eval(&rule.value, &regs, job, tok) & r.mask();
                                changes.push((i, ri, v));
                                break;
                            }
                        }
                    }
                    &all_dps
                }
            };
            for (di, dp) in dps.iter().map(|&d| (d, &self.module.datapaths[d])) {
                if eval(&dp.active, &regs, job, tok) != 0 {
                    trace.dp_active[di] = trace.dp_active[di].saturating_add(1);
                }
            }
            let advance = eval(&self.module.advance, &regs, job, tok) != 0;
            // Apply the synchronous writes and fire probes.
            for &(i, ri, v) in &changes {
                let old = regs[i];
                regs[i] = v;
                if let Some(p) = probes {
                    if p.is_init_rule(i, ri) {
                        p.record_counter_init(&mut trace.features, i, old, v);
                    }
                    if old != v && self.fsm_regs.contains(&i) {
                        p.record_transition(&mut trace.features, i, old, v);
                    }
                }
            }
            if advance && tok < job.len() {
                tok += 1;
                trace.tokens_consumed += 1;
            }
            trace.cycles = trace.cycles.saturating_add(1);
            trace.stepped_cycles = trace.stepped_cycles.saturating_add(1);
        }
    }

    /// If the current configuration is a skippable wait, applies the skip
    /// and returns `(cycles_charged, cycles_skipped)`.
    fn try_skip(
        &self,
        regs: &mut [u64],
        job: &JobInput,
        tok: usize,
        mode: ExecMode,
        trace: &mut JobTrace,
    ) -> Option<(u64, u64)> {
        for &f in &self.fsm_regs {
            let Some(plan) = self.waits.get(&(f, regs[f])) else {
                continue;
            };
            let cur = regs[plan.counter];
            let (remaining, terminal) = match plan.dir {
                WaitDir::Down => (cur, 0),
                WaitDir::Up => {
                    let bound = eval(plan.bound.as_ref()?, regs, job, tok);
                    (bound.saturating_sub(cur), bound)
                }
            };
            if remaining == 0 {
                return None;
            }
            let charged = match mode {
                ExecMode::FastForward => remaining,
                ExecMode::Compressed => {
                    if plan.serial {
                        remaining
                    } else {
                        1
                    }
                }
                ExecMode::Step => unreachable!("skip not attempted in Step mode"),
            };
            regs[plan.counter] = terminal;
            for &di in &plan.maybe_active_dps {
                if eval(&self.module.datapaths[di].active, regs, job, tok) != 0 {
                    trace.dp_active[di] = trace.dp_active[di].saturating_add(charged);
                }
            }
            return Some((charged, remaining));
        }
        None
    }
}

/// Evaluates an expression against the current registers and head token.
#[inline]
pub fn eval(e: &Expr, regs: &[u64], job: &JobInput, tok: usize) -> u64 {
    match e {
        Expr::Const(k) => *k,
        Expr::Reg(r) => regs[r.index()],
        Expr::Input(i) => {
            if tok < job.len() {
                job.get(tok, i.index())
            } else {
                0
            }
        }
        Expr::StreamEmpty => u64::from(tok >= job.len()),
        Expr::Bin(op, a, b) => op.apply(eval(a, regs, job, tok), eval(b, regs, job, tok)),
        Expr::Un(op, a) => op.apply(eval(a, regs, job, tok)),
        Expr::Mux(c, t, f) => {
            if eval(c, regs, job, tok) != 0 {
                eval(t, regs, job, tok)
            } else {
                eval(f, regs, job, tok)
            }
        }
    }
}

/// Convenience: the register id for a named register (used by tests and
/// examples).
///
/// # Errors
///
/// Returns [`RtlError::UnknownRegister`] when the module has no register
/// named `name`. Earlier revisions panicked here, which turned a probe
/// naming a missing register into a crash at whatever cycle first touched
/// it; callers now get a structured error up front instead.
pub fn reg_id(module: &Module, name: &str) -> Result<RegId, RtlError> {
    module.require_reg(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};

    /// A toy accelerator: for each token, waits `dur` cycles then emits.
    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN",
            "EMIT",
            dur,
            E::stream_empty().is_zero(),
            "ctrl.cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_compute("alu", fsm.in_state("RUN"), 500.0, 2.0, 100, 1);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn job(durs: &[u64]) -> JobInput {
        let mut j = JobInput::new(1);
        for &d in durs {
            j.push(&[d]);
        }
        j
    }

    #[test]
    fn step_runs_to_completion() {
        let m = toy();
        let sim = Simulator::new(&m);
        let t = sim.run(&job(&[5, 3]), ExecMode::Step, None).unwrap();
        assert_eq!(t.tokens_consumed, 2);
        assert!(t.cycles > 8);
        assert_eq!(t.skipped_cycles, 0);
        assert_eq!(t.stepped_cycles, t.cycles);
    }

    #[test]
    fn fast_forward_matches_step_exactly() {
        let m = toy();
        let sim = Simulator::new(&m);
        for durs in [&[0u64][..], &[1], &[7, 0, 3], &[100, 2, 50, 50]] {
            let (a, regs_a) = sim
                .run_with_state(&job(durs), ExecMode::Step, None)
                .unwrap();
            let (b, regs_b) = sim
                .run_with_state(&job(durs), ExecMode::FastForward, None)
                .unwrap();
            assert_eq!(a.cycles, b.cycles, "durs={durs:?}");
            assert_eq!(a.dp_active, b.dp_active, "durs={durs:?}");
            assert_eq!(a.tokens_consumed, b.tokens_consumed);
            assert!(b.skipped_cycles > 0 || durs.iter().all(|&d| d <= 1));
            assert_eq!(regs_a, regs_b, "final state must match, durs={durs:?}");
        }
    }

    #[test]
    fn all_modes_agree_on_final_register_state() {
        // Not just trace aggregates: the full flattened register file at
        // `done` must be identical across Step/FastForward/Compressed.
        // Compression rewrites *timing*, never architectural state.
        let m = toy();
        let sim = Simulator::new(&m);
        for durs in [&[0u64][..], &[5], &[9, 0, 2], &[60, 1, 60]] {
            let (_, step) = sim
                .run_with_state(&job(durs), ExecMode::Step, None)
                .unwrap();
            let (_, ff) = sim
                .run_with_state(&job(durs), ExecMode::FastForward, None)
                .unwrap();
            let (_, comp) = sim
                .run_with_state(&job(durs), ExecMode::Compressed, None)
                .unwrap();
            assert_eq!(step.len(), m.regs.len());
            assert_eq!(step, ff, "durs={durs:?}");
            assert_eq!(step, comp, "durs={durs:?}");
        }
    }

    #[test]
    fn compressed_mode_is_faster() {
        let m = toy();
        let sim = Simulator::new(&m);
        let full = sim
            .run(&job(&[100, 100]), ExecMode::FastForward, None)
            .unwrap();
        let slice = sim
            .run(&job(&[100, 100]), ExecMode::Compressed, None)
            .unwrap();
        assert!(slice.cycles < full.cycles / 2);
        assert_eq!(slice.tokens_consumed, full.tokens_consumed);
    }

    #[test]
    fn serial_states_resist_compression() {
        let mut b = ModuleBuilder::new("serial");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "SCAN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "SCAN",
            "EMIT",
            dur,
            E::stream_empty().is_zero(),
            "cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_serial("huff", fsm.in_state("SCAN"), 80.0, 0.7, 60, 0);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        let m = b.build().unwrap();
        let sim = Simulator::new(&m);
        let full = sim.run(&job(&[40]), ExecMode::FastForward, None).unwrap();
        let slice = sim.run(&job(&[40]), ExecMode::Compressed, None).unwrap();
        assert_eq!(
            full.cycles, slice.cycles,
            "serial wait must keep its cycles"
        );
    }

    #[test]
    fn cycle_limit_detects_hangs() {
        let mut b = ModuleBuilder::new("hang");
        let fsm = b.fsm("ctrl", &["SPIN"]);
        let r = b.reg("x", 8, 0);
        b.set(r, fsm.in_state("SPIN"), r.e() + E::one());
        b.done_when(E::zero());
        let m = b.build().unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_cycle_limit(100);
        let err = sim
            .run(&JobInput::new(0), ExecMode::Step, None)
            .unwrap_err();
        assert!(matches!(err, RtlError::CycleLimit { limit: 100 }));
    }

    #[test]
    fn reg_id_reports_unknown_register() {
        let m = toy();
        assert_eq!(
            reg_id(&m, "ctrl.state").unwrap(),
            m.reg_by_name("ctrl.state").unwrap()
        );
        let err = reg_id(&m, "nope").unwrap_err();
        assert_eq!(
            err,
            RtlError::UnknownRegister {
                module: "toy".into(),
                name: "nope".into(),
            }
        );
    }

    #[test]
    fn foreign_probes_rejected_before_cycle_zero() {
        use crate::analysis::Analysis;
        use crate::instrument::FeatureSchema;
        // Probes built for the toy module reference its counter register;
        // linked against a smaller module they must fail up front with
        // UnknownRegister, not at whatever cycle the probe first fires.
        let big = toy();
        let a = Analysis::run(&big);
        let p = FeatureSchema::from_analysis(&big, &a).probe_program(&a);
        let mut b = ModuleBuilder::new("small");
        let r = b.reg("x", 8, 0);
        b.set(r, E::one(), r.e() + E::one());
        b.done_when(r.e().eq_(E::k(3)));
        let small = b.build().unwrap();
        let sim = Simulator::new(&small);
        let err = sim
            .run(&JobInput::new(0), ExecMode::Step, Some(&p))
            .unwrap_err();
        assert!(
            matches!(err, RtlError::UnknownRegister { .. }),
            "got {err:?}"
        );
    }

    /// A count-up wait whose bound is an adversarial 64-bit input: the
    /// first skip charges ~2^64 cycles at once.
    fn overflow_module() -> Module {
        let mut b = ModuleBuilder::new("ovf");
        let n = b.input("n", 64);
        let fsm = b.fsm("ctrl", &["A", "W", "D"]);
        let c = b.reg("c", 64, 0);
        b.set(c, fsm.in_state("A"), E::zero());
        b.set(c, fsm.in_state("W") & c.e().lt(n.clone()), c.e() + E::one());
        b.trans(&fsm, "A", "W", E::one());
        b.trans(&fsm, "W", "D", c.e().eq_(n));
        b.done_when(fsm.in_state("D"));
        b.build().unwrap()
    }

    #[test]
    fn adversarial_wait_bound_saturates_and_hits_the_cycle_limit() {
        let m = overflow_module();
        let sim = Simulator::new(&m);
        let mut j = JobInput::new(1);
        j.push(&[u64::MAX]);
        // Before the saturation fix, `cycles += 2^64 - 1` wrapped back to
        // a tiny value and the run "succeeded" with a nonsense trace; now
        // the count pins at u64::MAX and the hang detector fires.
        let err = sim.run(&j, ExecMode::FastForward, None).unwrap_err();
        assert!(matches!(err, RtlError::CycleLimit { limit } if limit == 1 << 34));
    }

    #[test]
    fn non_terminating_guard_cannot_outrun_a_maximal_cycle_limit() {
        // done never asserts and every W visit charges ~2^64 cycles. Even
        // with the limit pushed to u64::MAX, saturation guarantees
        // `cycles >= limit` eventually holds instead of wrapping forever.
        let mut b = ModuleBuilder::new("spin");
        let n = b.input("n", 64);
        let fsm = b.fsm("ctrl", &["A", "W"]);
        let c = b.reg("c", 64, 0);
        b.set(c, fsm.in_state("A"), E::zero());
        b.set(c, fsm.in_state("W") & c.e().lt(n.clone()), c.e() + E::one());
        b.trans(&fsm, "A", "W", E::one());
        b.trans(&fsm, "W", "A", c.e().eq_(n));
        b.done_when(E::zero());
        let m = b.build().unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_cycle_limit(u64::MAX);
        let mut j = JobInput::new(1);
        j.push(&[u64::MAX]);
        let err = sim.run(&j, ExecMode::FastForward, None).unwrap_err();
        assert!(matches!(err, RtlError::CycleLimit { limit: u64::MAX }));
    }

    #[test]
    fn datapath_activity_counts_match_wait_durations() {
        let m = toy();
        let sim = Simulator::new(&m);
        let t = sim
            .run(&job(&[10, 20]), ExecMode::FastForward, None)
            .unwrap();
        // The ALU is active exactly while RUN holds: duration+1 cycles per
        // token (counter drains duration times, exit observed one cycle
        // later).
        assert_eq!(t.dp_active[0], 11 + 21);
    }

    #[test]
    fn empty_stream_finishes_immediately() {
        let m = toy();
        let sim = Simulator::new(&m);
        let t = sim
            .run(&JobInput::new(1), ExecMode::FastForward, None)
            .unwrap();
        assert_eq!(t.cycles, 0);
        assert_eq!(t.tokens_consumed, 0);
    }

    #[test]
    fn job_input_accessors() {
        let mut j = JobInput::new(2);
        assert!(j.is_empty());
        j.push(&[1, 2]);
        j.push(&[3, 4]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(1, 0), 3);
        assert_eq!(j.fields(), 2);
    }

    #[test]
    #[should_panic(expected = "token arity mismatch")]
    fn job_input_rejects_wrong_arity() {
        let mut j = JobInput::new(2);
        j.push(&[1]);
    }
}
