//! Static analyses over [`Module`]s: FSM detection, counter detection, and
//! wait-state analysis.
//!
//! These reproduce the paper's offline flow (§3.3): the accelerator's
//! structural RTL is mined for finite state machines and counters — the two
//! sources of execution-time features — without any design-specific
//! knowledge. The analyses work purely from the shape of register update
//! rules:
//!
//! * an **FSM** is a register whose every update assigns a constant and is
//!   guarded by an equality test on the register itself (a one-hot/encoded
//!   case statement);
//! * a **counter** is a register with at least one `self ± const` step rule
//!   and at least one re-initialization rule that does not read the
//!   register;
//! * a **wait state** is an FSM state whose only activity is a counter
//!   draining toward an exit condition — the pattern hardware slicing
//!   compresses (§3.5) and the simulator fast-forwards over.

use std::collections::BTreeSet;

use crate::expr::{BinOp, Expr, UnOp};
use crate::module::{Module, RegId};

/// A detected finite state machine.
#[derive(Debug, Clone)]
pub struct FsmInfo {
    /// The state register.
    pub reg: RegId,
    /// All state encodings mentioned by guards, targets, or reset.
    pub states: BTreeSet<u64>,
    /// Declared transitions `(src, dst, rule index)` with `src != dst`.
    pub transitions: Vec<(u64, u64, usize)>,
}

impl FsmInfo {
    /// Distinct `(src, dst)` transition pairs, sorted.
    pub fn transition_pairs(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = self.transitions.iter().map(|&(s, d, _)| (s, d)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// A detected counter.
#[derive(Debug, Clone)]
pub struct CounterInfo {
    /// The counter register.
    pub reg: RegId,
    /// Indices of rules that re-initialize the counter (value does not read
    /// the counter itself).
    pub init_rules: Vec<usize>,
    /// Indices of `self ± const` step rules, with their signed step.
    pub step_rules: Vec<(usize, i64)>,
}

impl CounterInfo {
    /// True if any step rule decrements.
    pub fn counts_down(&self) -> bool {
        self.step_rules.iter().any(|&(_, s)| s < 0)
    }

    /// True if any step rule increments.
    pub fn counts_up(&self) -> bool {
        self.step_rules.iter().any(|&(_, s)| s > 0)
    }
}

/// Direction of a wait-state counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDir {
    /// Counter loads a latency and drains to zero.
    Down,
    /// Counter starts at zero and climbs to a bound.
    Up,
}

/// A wait state: `(fsm, state)` whose only activity is one counter ticking.
///
/// While the FSM sits in `state` with the counter mid-range, no other
/// register changes, the stream does not advance, and `done` stays low —
/// all proven statically. The simulator may therefore skip the remaining
/// ticks in one step, and the slicer may compress or remove the state.
#[derive(Debug, Clone)]
pub struct WaitState {
    /// The FSM register.
    pub fsm: RegId,
    /// The waiting state's encoding.
    pub state: u64,
    /// The ticking counter.
    pub counter: RegId,
    /// Tick direction.
    pub dir: WaitDir,
    /// For [`WaitDir::Up`]: the exit bound expression (reads only held
    /// state, never the counter).
    pub bound: Option<Expr>,
    /// The single exit target state.
    pub exit_to: u64,
    /// Datapath indices whose activity condition may hold in this state;
    /// their activity is evaluated once per skip (it cannot change during
    /// the wait).
    pub maybe_active_dps: Vec<usize>,
    /// True if any possibly-active datapath is serial: the state's cycles
    /// are real work even for a slice, so compression must not shorten it.
    pub serial: bool,
}

/// Results of running all analyses on a module.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Detected FSMs.
    pub fsms: Vec<FsmInfo>,
    /// Detected counters.
    pub counters: Vec<CounterInfo>,
    /// Detected wait states.
    pub waits: Vec<WaitState>,
}

impl Analysis {
    /// Runs FSM, counter, and wait-state detection on `module`.
    pub fn run(module: &Module) -> Analysis {
        let fsms = find_fsms(module);
        let counters = find_counters(module, &fsms);
        let waits = find_wait_states(module, &fsms, &counters);
        Analysis {
            fsms,
            counters,
            waits,
        }
    }

    /// Looks up the wait state for `(fsm, state)`, if any.
    pub fn wait_for(&self, fsm: RegId, state: u64) -> Option<&WaitState> {
        self.waits.iter().find(|w| w.fsm == fsm && w.state == state)
    }
}

/// Returns the `reg == const` constraint on `reg` within a guard's
/// conjuncts, if present.
fn self_state_of(guard: &Expr, reg: RegId) -> Option<u64> {
    guard
        .conjuncts()
        .iter()
        .find_map(|c| match c.as_reg_eq_const() {
            Some((r, k)) if r == reg => Some(k),
            _ => None,
        })
}

/// True if `guard` is provably false whenever `fsm == state`: it contains a
/// conjunct pinning `fsm` to a different state.
pub fn provably_inactive_in(guard: &Expr, fsm: RegId, state: u64) -> bool {
    guard
        .conjuncts()
        .iter()
        .any(|c| matches!(c.as_reg_eq_const(), Some((r, k)) if r == fsm && k != state))
}

/// True if `e` is provably zero whenever `fsm == state` (constant zero, or
/// guarded by a different state of `fsm`).
pub fn provably_zero_in(e: &Expr, fsm: RegId, state: u64) -> bool {
    match e {
        Expr::Const(0) => true,
        _ => provably_inactive_in(e, fsm, state),
    }
}

/// Detects finite state machines (see module docs for the criterion).
pub fn find_fsms(module: &Module) -> Vec<FsmInfo> {
    let mut out = Vec::new();
    for (i, r) in module.regs.iter().enumerate() {
        let reg = RegId::new(i);
        if r.rules.is_empty() || r.width > 16 {
            continue;
        }
        let mut states = BTreeSet::new();
        states.insert(r.init);
        let mut transitions = Vec::new();
        let mut is_fsm = true;
        for (ri, rule) in r.rules.iter().enumerate() {
            let dst = match rule.value {
                Expr::Const(k) => k,
                _ => {
                    is_fsm = false;
                    break;
                }
            };
            let src = match self_state_of(&rule.guard, reg) {
                Some(s) => s,
                None => {
                    is_fsm = false;
                    break;
                }
            };
            states.insert(src);
            states.insert(dst);
            if src != dst {
                transitions.push((src, dst, ri));
            }
        }
        if is_fsm && !transitions.is_empty() {
            out.push(FsmInfo {
                reg,
                states,
                transitions,
            });
        }
    }
    out
}

/// Detects counters. FSM registers are excluded.
pub fn find_counters(module: &Module, fsms: &[FsmInfo]) -> Vec<CounterInfo> {
    let fsm_regs: BTreeSet<RegId> = fsms.iter().map(|f| f.reg).collect();
    let mut out = Vec::new();
    for (i, r) in module.regs.iter().enumerate() {
        let reg = RegId::new(i);
        if fsm_regs.contains(&reg) {
            continue;
        }
        let mut init_rules = Vec::new();
        let mut step_rules = Vec::new();
        let mut other = false;
        for (ri, rule) in r.rules.iter().enumerate() {
            if let Some(step) = rule.value.as_self_step(reg) {
                step_rules.push((ri, step));
            } else if !rule.value.reads_reg(reg) {
                init_rules.push(ri);
            } else {
                // Self-referencing but not a fixed step (shifts, mux
                // feedback): not a counter.
                other = true;
            }
        }
        if !other && !step_rules.is_empty() && !init_rules.is_empty() {
            out.push(CounterInfo {
                reg,
                init_rules,
                step_rules,
            });
        }
    }
    out
}

/// True if the expression is a positivity test on `c`: `c > 0`, `c != 0`,
/// or `nonzero(c)`.
fn is_positivity_test(e: &Expr, c: RegId) -> bool {
    match e {
        Expr::Un(UnOp::IsNonZero, a) => matches!(a.as_ref(), Expr::Reg(r) if *r == c),
        Expr::Bin(BinOp::Lt, a, b) => {
            matches!(a.as_ref(), Expr::Const(0)) && matches!(b.as_ref(), Expr::Reg(r) if *r == c)
        }
        Expr::Bin(BinOp::Ne, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Reg(r), Expr::Const(0)) | (Expr::Const(0), Expr::Reg(r)) => *r == c,
            _ => false,
        },
        _ => false,
    }
}

/// True if the expression is a zero test on `c`: `c == 0` or `iszero(c)`.
fn is_zero_test(e: &Expr, c: RegId) -> bool {
    match e {
        Expr::Un(UnOp::IsZero, a) => matches!(a.as_ref(), Expr::Reg(r) if *r == c),
        Expr::Bin(BinOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Reg(r), Expr::Const(0)) | (Expr::Const(0), Expr::Reg(r)) => *r == c,
            _ => false,
        },
        _ => false,
    }
}

/// If the expression is `c == bound` with `bound` not reading `c`, returns
/// the bound expression (count-up exit test).
fn as_bound_test(e: &Expr, c: RegId) -> Option<&Expr> {
    if let Expr::Bin(BinOp::Eq, a, b) = e {
        match (a.as_ref(), b.as_ref()) {
            (Expr::Reg(r), bound) if *r == c && !bound.reads_reg(c) => return Some(bound),
            (bound, Expr::Reg(r)) if *r == c && !bound.reads_reg(c) => return Some(bound),
            _ => {}
        }
    }
    None
}

/// Detects wait states (see [`WaitState`]).
pub fn find_wait_states(
    module: &Module,
    fsms: &[FsmInfo],
    counters: &[CounterInfo],
) -> Vec<WaitState> {
    let mut out = Vec::new();
    for fsm in fsms {
        for &state in &fsm.states {
            if let Some(w) = try_wait_state(module, fsm, counters, state) {
                out.push(w);
            }
        }
    }
    out
}

fn try_wait_state(
    module: &Module,
    fsm: &FsmInfo,
    counters: &[CounterInfo],
    state: u64,
) -> Option<WaitState> {
    let f = fsm.reg;
    // 1. Find the unique counter ticking in this state.
    let mut tick: Option<(RegId, WaitDir)> = None;
    for c in counters {
        let creg = c.reg;
        for &(ri, step) in &c.step_rules {
            let rule = &module.regs[creg.index()].rules[ri];
            if self_state_of(&rule.guard, f) == Some(state) {
                if step.abs() != 1 {
                    return None; // non-unit steps are not fast-forwardable
                }
                let dir = if step < 0 { WaitDir::Down } else { WaitDir::Up };
                // Remaining conjuncts must be harmless range tests on c.
                for conj in rule.guard.conjuncts() {
                    if conj.as_reg_eq_const() == Some((f, state)) {
                        continue;
                    }
                    let ok = match dir {
                        WaitDir::Down => is_positivity_test(conj, creg),
                        WaitDir::Up => {
                            // allow `c < bound` / `c != bound` style guards
                            !conj.reads_reg(f) && {
                                let mut regs = Vec::new();
                                conj.collect_regs(&mut regs);
                                regs.iter()
                                    .all(|r| *r == creg || !changes_in(module, *r, f, state))
                            }
                        }
                    };
                    if !ok {
                        return None;
                    }
                }
                if tick.is_some() {
                    return None; // two counters ticking: not a simple wait
                }
                tick = Some((creg, dir));
            }
        }
    }
    let (counter, dir) = tick?;
    // 2. The counter's init rules must be inactive here.
    let cinfo = counters.iter().find(|c| c.reg == counter)?;
    for &ri in &cinfo.init_rules {
        let rule = &module.regs[counter.index()].rules[ri];
        if !provably_inactive_in(&rule.guard, f, state) {
            return None;
        }
    }
    // 3. Every exit of the FSM from this state must test counter
    //    exhaustion, and they must all agree on a single target.
    let mut exit_to: Option<u64> = None;
    let mut bound: Option<Expr> = None;
    for &(src, dst, ri) in &fsm.transitions {
        if src != state {
            continue;
        }
        let rule = &module.regs[f.index()].rules[ri];
        let mut exhaustion_seen = false;
        for conj in rule.guard.conjuncts() {
            if conj.as_reg_eq_const() == Some((f, state)) {
                continue;
            }
            match dir {
                WaitDir::Down if is_zero_test(conj, counter) => exhaustion_seen = true,
                WaitDir::Up => {
                    if let Some(b) = as_bound_test(conj, counter) {
                        // Bound must be stable during the wait.
                        let mut regs = Vec::new();
                        b.collect_regs(&mut regs);
                        if regs.iter().any(|r| changes_in(module, *r, f, state)) {
                            return None;
                        }
                        if b.reads_stream() {
                            // Token is frozen during the wait (advance is
                            // inactive, checked below), so stream reads are
                            // stable too.
                        }
                        bound = Some(b.clone());
                        exhaustion_seen = true;
                    } else {
                        return None;
                    }
                }
                _ => return None,
            }
        }
        if !exhaustion_seen {
            return None;
        }
        match exit_to {
            None => exit_to = Some(dst),
            Some(t) if t == dst => {}
            Some(_) => return None,
        }
    }
    let exit_to = exit_to?;
    if dir == WaitDir::Up && bound.is_none() {
        return None;
    }
    // 4. No other register may change *during* the wait. A rule is safe
    //    if it is pinned to another state, or gated on this counter's
    //    exhaustion (it then fires only on the exit cycle — the chained-
    //    wait idiom), or, for count-up waits, gated on the bound being
    //    reached.
    let fires_only_on_exit = |guard: &Expr| -> bool {
        guard.conjuncts().iter().any(|conj| match dir {
            WaitDir::Down => is_zero_test(conj, counter),
            WaitDir::Up => as_bound_test(conj, counter).is_some(),
        })
    };
    for (i, r) in module.regs.iter().enumerate() {
        let reg = RegId::new(i);
        if reg == counter {
            continue;
        }
        for rule in &r.rules {
            if reg == f {
                // FSM rules were vetted above; rules for other states must
                // be pinned elsewhere.
                if self_state_of(&rule.guard, f) == Some(state) {
                    continue;
                }
            }
            if !provably_inactive_in(&rule.guard, f, state) && !fires_only_on_exit(&rule.guard) {
                return None;
            }
        }
    }
    // 5. Stream must not advance and the job must not finish mid-wait.
    if !provably_zero_in(&module.advance, f, state) {
        return None;
    }
    if !provably_zero_in(&module.done, f, state) {
        return None;
    }
    // 6. Datapath activity must be stable (must not read the counter).
    let mut maybe_active_dps = Vec::new();
    let mut serial = false;
    for (di, dp) in module.datapaths.iter().enumerate() {
        if provably_zero_in(&dp.active, f, state) {
            continue;
        }
        if dp.active.reads_reg(counter) {
            return None;
        }
        maybe_active_dps.push(di);
        if dp.kind == crate::module::DatapathKind::Serial {
            serial = true;
        }
    }
    Some(WaitState {
        fsm: f,
        state,
        counter,
        dir,
        bound,
        exit_to,
        maybe_active_dps,
        serial,
    })
}

/// True if register `reg` can change while `fsm == state` (i.e. it has a
/// rule not provably pinned to another state).
fn changes_in(module: &Module, reg: RegId, fsm: RegId, state: u64) -> bool {
    module.regs[reg.index()]
        .rules
        .iter()
        .any(|rule| !provably_inactive_in(&rule.guard, fsm, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};

    fn timed_module() -> (Module, RegId, RegId) {
        let mut b = ModuleBuilder::new("t");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["IDLE", "WAIT", "DONE"]);
        let ctr = b.timed(&fsm, "IDLE", "WAIT", "DONE", dur, E::one(), "ctrl.cnt");
        b.advance_when(fsm.in_state("IDLE"));
        b.done_when(fsm.in_state("DONE"));
        let m = b.build().unwrap();
        let f = m.reg_by_name("ctrl.state").unwrap();
        (m, f, ctr.id())
    }

    #[test]
    fn detects_fsm_from_lowered_rules() {
        let (m, f, _) = timed_module();
        let fsms = find_fsms(&m);
        assert_eq!(fsms.len(), 1);
        assert_eq!(fsms[0].reg, f);
        assert_eq!(fsms[0].states.len(), 3);
        assert_eq!(fsms[0].transition_pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn detects_counter_with_init_and_step() {
        let (m, _, c) = timed_module();
        let fsms = find_fsms(&m);
        let ctrs = find_counters(&m, &fsms);
        assert_eq!(ctrs.len(), 1);
        assert_eq!(ctrs[0].reg, c);
        assert!(ctrs[0].counts_down());
        assert!(!ctrs[0].counts_up());
    }

    #[test]
    fn detects_wait_state() {
        let (m, f, c) = timed_module();
        let a = Analysis::run(&m);
        assert_eq!(a.waits.len(), 1);
        let w = &a.waits[0];
        assert_eq!(w.fsm, f);
        assert_eq!(w.state, 1); // WAIT
        assert_eq!(w.counter, c);
        assert_eq!(w.dir, WaitDir::Down);
        assert_eq!(w.exit_to, 2); // DONE
        assert!(!w.serial);
        assert!(a.wait_for(f, 1).is_some());
        assert!(a.wait_for(f, 0).is_none());
    }

    #[test]
    fn shift_register_is_not_a_counter() {
        let mut b = ModuleBuilder::new("t");
        let bits = b.input("bits", 16);
        let fsm = b.fsm("ctrl", &["A", "B"]);
        let sh = b.reg("sh", 16, 0);
        b.set(sh, fsm.in_state("A"), bits);
        b.set(
            sh,
            fsm.in_state("B") & sh.e().gt(E::zero()),
            sh.e() >> E::one(),
        );
        b.trans(&fsm, "A", "B", E::one());
        b.trans(&fsm, "B", "A", sh.e().eq_(E::zero()));
        let m = b.build().unwrap();
        let fsms = find_fsms(&m);
        assert_eq!(fsms.len(), 1);
        let ctrs = find_counters(&m, &fsms);
        assert!(
            ctrs.is_empty(),
            "shift register must not look like a counter"
        );
        // And B must not be a wait state: nothing fast-forwardable ticks.
        let a = Analysis::run(&m);
        assert!(a.waits.is_empty());
    }

    #[test]
    fn count_up_wait_detected_with_bound() {
        let mut b = ModuleBuilder::new("t");
        let n = b.input("n", 16);
        let fsm = b.fsm("ctrl", &["A", "W", "D"]);
        let c = b.reg("c", 32, 0);
        b.set(c, fsm.in_state("A"), E::zero());
        b.set(c, fsm.in_state("W") & c.e().lt(n.clone()), c.e() + E::one());
        b.trans(&fsm, "A", "W", E::one());
        b.trans(&fsm, "W", "D", c.e().eq_(n));
        b.done_when(fsm.in_state("D"));
        let m = b.build().unwrap();
        let a = Analysis::run(&m);
        assert_eq!(a.waits.len(), 1);
        assert_eq!(a.waits[0].dir, WaitDir::Up);
        assert!(a.waits[0].bound.is_some());
    }

    #[test]
    fn state_with_other_register_activity_is_not_wait() {
        let mut b = ModuleBuilder::new("t");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["IDLE", "WAIT", "DONE"]);
        b.timed(&fsm, "IDLE", "WAIT", "DONE", dur, E::one(), "cnt");
        // An accumulator that ticks during the wait invalidates it.
        let acc = b.reg("acc", 32, 0);
        b.set(acc, fsm.in_state("WAIT"), acc.e() + E::k(2));
        b.done_when(fsm.in_state("DONE"));
        let m = b.build().unwrap();
        let a = Analysis::run(&m);
        assert!(a.waits.is_empty());
    }

    #[test]
    fn serial_datapath_marks_wait_serial() {
        let mut b = ModuleBuilder::new("t");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["IDLE", "WAIT", "DONE"]);
        b.timed(&fsm, "IDLE", "WAIT", "DONE", dur, E::one(), "cnt");
        b.datapath_serial("scan", fsm.in_state("WAIT"), 10.0, 0.5, 20, 0);
        b.done_when(fsm.in_state("DONE"));
        let m = b.build().unwrap();
        let a = Analysis::run(&m);
        assert_eq!(a.waits.len(), 1);
        assert!(a.waits[0].serial);
        assert_eq!(a.waits[0].maybe_active_dps, vec![0]);
    }

    #[test]
    fn datapath_reading_counter_blocks_wait() {
        let mut b = ModuleBuilder::new("t");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["IDLE", "WAIT", "DONE"]);
        let c = b.timed(&fsm, "IDLE", "WAIT", "DONE", dur, E::one(), "cnt");
        b.datapath_compute(
            "alu",
            fsm.in_state("WAIT") & c.e().gt(E::k(3)),
            10.0,
            0.5,
            20,
            0,
        );
        b.done_when(fsm.in_state("DONE"));
        let m = b.build().unwrap();
        let a = Analysis::run(&m);
        assert!(a.waits.is_empty());
    }

    #[test]
    fn provably_inactive_helper() {
        let f = RegId::new(0);
        let g = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::Reg(f)),
                Box::new(Expr::Const(3)),
            )),
            Box::new(Expr::Const(1)),
        );
        assert!(provably_inactive_in(&g, f, 2));
        assert!(!provably_inactive_in(&g, f, 3));
        assert!(provably_zero_in(&Expr::Const(0), f, 0));
    }
}
