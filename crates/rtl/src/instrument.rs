//! Automatic instrumentation: turning analysis results into a feature
//! schema and runtime probes.
//!
//! This mirrors the paper's offline instrumentation step (§3.3): for every
//! detected FSM transition pair a *state transition count* (STC) probe is
//! attached; for every detected counter an *initialization count* (IC),
//! *average-initial-value sum* (AIV) and *average-pre-reset-value sum*
//! (APV) probe. As the paper notes, recording sums rather than averages is
//! sufficient — the linear model absorbs the scaling.
//!
//! The probes are pure observers: attaching them never changes the design's
//! timing, which the test suite verifies.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::analysis::Analysis;
use crate::error::RtlError;
use crate::module::{Module, RegId};

/// The kind of a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Constant 1 (model intercept).
    Bias,
    /// Number of times the FSM moved `src -> dst` during the job.
    Stc {
        /// The FSM state register.
        fsm: RegId,
        /// Source state encoding.
        src: u64,
        /// Destination state encoding.
        dst: u64,
    },
    /// Number of times the counter was re-initialized.
    Ic {
        /// The counter register.
        counter: RegId,
    },
    /// Sum of the values the counter was initialized to.
    AivSum {
        /// The counter register.
        counter: RegId,
    },
    /// Sum of the counter's values immediately before re-initialization.
    ApvSum {
        /// The counter register.
        counter: RegId,
    },
}

/// A named feature column.
#[derive(Debug, Clone)]
pub struct FeatureDesc {
    /// What the column measures.
    pub kind: FeatureKind,
    /// Human-readable name, e.g. `"stc[ctrl.state:2->5]"`.
    pub name: String,
}

impl fmt::Display for FeatureDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The complete feature vector layout for one module.
#[derive(Debug, Clone)]
pub struct FeatureSchema {
    /// Name of the module the schema was extracted from.
    pub module_name: String,
    features: Vec<FeatureDesc>,
}

impl FeatureSchema {
    /// Builds the schema from a module and its analysis: bias first, then
    /// one STC column per declared transition pair, then IC/AIV/APV per
    /// counter.
    pub fn from_analysis(module: &Module, analysis: &Analysis) -> FeatureSchema {
        let mut features = vec![FeatureDesc {
            kind: FeatureKind::Bias,
            name: "bias".to_owned(),
        }];
        for fsm in &analysis.fsms {
            let fname = module.reg_name(fsm.reg);
            for (src, dst) in fsm.transition_pairs() {
                features.push(FeatureDesc {
                    kind: FeatureKind::Stc {
                        fsm: fsm.reg,
                        src,
                        dst,
                    },
                    name: format!("stc[{fname}:{src}->{dst}]"),
                });
            }
        }
        for c in &analysis.counters {
            let cname = module.reg_name(c.reg);
            features.push(FeatureDesc {
                kind: FeatureKind::Ic { counter: c.reg },
                name: format!("ic[{cname}]"),
            });
            features.push(FeatureDesc {
                kind: FeatureKind::AivSum { counter: c.reg },
                name: format!("aiv[{cname}]"),
            });
            features.push(FeatureDesc {
                kind: FeatureKind::ApvSum { counter: c.reg },
                name: format!("apv[{cname}]"),
            });
        }
        FeatureSchema {
            module_name: module.name.clone(),
            features,
        }
    }

    /// Number of feature columns (including the bias).
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the schema has no columns (never the case for schemas
    /// produced by [`FeatureSchema::from_analysis`], which always include
    /// the bias).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The feature descriptors, in column order.
    pub fn descs(&self) -> &[FeatureDesc] {
        &self.features
    }

    /// Index of the bias column, if present.
    pub fn bias_index(&self) -> Option<usize> {
        self.features
            .iter()
            .position(|f| f.kind == FeatureKind::Bias)
    }

    /// Registers that the given feature columns are measured from (probe
    /// sources). Used by the slicer as slicing criteria.
    pub fn source_regs(&self, columns: &[usize]) -> Vec<RegId> {
        let mut out = Vec::new();
        for &c in columns {
            match self.features[c].kind {
                FeatureKind::Bias => {}
                FeatureKind::Stc { fsm, .. } => out.push(fsm),
                FeatureKind::Ic { counter }
                | FeatureKind::AivSum { counter }
                | FeatureKind::ApvSum { counter } => out.push(counter),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Compiles the schema into the runtime probe tables used by the
    /// interpreter. `analysis` must be the analysis of the same module (or
    /// of a slice preserving register ids).
    pub fn probe_program(&self, analysis: &Analysis) -> ProbeProgram {
        let mut stc = HashMap::new();
        let mut counter_probes: HashMap<usize, CounterProbes> = HashMap::new();
        let mut bias = None;
        for (i, fd) in self.features.iter().enumerate() {
            match fd.kind {
                FeatureKind::Bias => bias = Some(i),
                FeatureKind::Stc { fsm, src, dst } => {
                    stc.insert((fsm.index(), src, dst), i);
                }
                FeatureKind::Ic { counter } => {
                    counter_probes.entry(counter.index()).or_default().ic = Some(i);
                }
                FeatureKind::AivSum { counter } => {
                    counter_probes.entry(counter.index()).or_default().aiv = Some(i);
                }
                FeatureKind::ApvSum { counter } => {
                    counter_probes.entry(counter.index()).or_default().apv = Some(i);
                }
            }
        }
        let mut init_rules = HashSet::new();
        for c in &analysis.counters {
            if counter_probes.contains_key(&c.reg.index()) {
                for &ri in &c.init_rules {
                    init_rules.insert((c.reg.index(), ri));
                }
            }
        }
        ProbeProgram {
            n_features: self.features.len(),
            bias,
            stc,
            counter_probes,
            init_rules,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CounterProbes {
    ic: Option<usize>,
    aiv: Option<usize>,
    apv: Option<usize>,
}

/// Compiled probe tables consumed by [`crate::interp::Simulator::run`].
#[derive(Debug, Clone)]
pub struct ProbeProgram {
    n_features: usize,
    bias: Option<usize>,
    stc: HashMap<(usize, u64, u64), usize>,
    counter_probes: HashMap<usize, CounterProbes>,
    init_rules: HashSet<(usize, usize)>,
}

impl ProbeProgram {
    /// Width of the feature vector.
    pub fn feature_count(&self) -> usize {
        self.n_features
    }

    /// Index of the bias column.
    pub fn bias_index(&self) -> Option<usize> {
        self.bias
    }

    /// True if rule `rule` of register `reg` re-initializes a probed
    /// counter.
    #[inline]
    pub fn is_init_rule(&self, reg: usize, rule: usize) -> bool {
        self.init_rules.contains(&(reg, rule))
    }

    /// Records a counter re-initialization: `old` is the pre-reset value,
    /// `new` the initial value.
    #[inline]
    pub fn record_counter_init(&self, features: &mut [f64], reg: usize, old: u64, new: u64) {
        if let Some(p) = self.counter_probes.get(&reg) {
            if let Some(ic) = p.ic {
                features[ic] += 1.0;
            }
            if let Some(aiv) = p.aiv {
                features[aiv] += new as f64;
            }
            if let Some(apv) = p.apv {
                features[apv] += old as f64;
            }
        }
    }

    /// Records an FSM transition `old -> new`.
    #[inline]
    pub fn record_transition(&self, features: &mut [f64], reg: usize, old: u64, new: u64) {
        if let Some(&i) = self.stc.get(&(reg, old, new)) {
            features[i] += 1.0;
        }
    }

    /// Checks that every register (and init rule) this program probes
    /// exists in `module`.
    ///
    /// Probe tables are built from an [`Analysis`], normally of the very
    /// module being run — but nothing ties the two together, and a probe
    /// program linked against the wrong module used to fail only when (or
    /// if) the dangling probe fired mid-job. Both execution engines call
    /// this before cycle 0, so the mismatch is a link-time error instead.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownRegister`] naming the first dangling
    /// reference (as `rN` when only the foreign index is known).
    pub fn validate(&self, module: &Module) -> Result<(), RtlError> {
        let check = |reg: usize| -> Result<(), RtlError> {
            if reg >= module.regs.len() {
                return Err(RtlError::UnknownRegister {
                    module: module.name.clone(),
                    name: format!("r{reg}"),
                });
            }
            Ok(())
        };
        for &(reg, _, _) in self.stc.keys() {
            check(reg)?;
        }
        for &reg in self.counter_probes.keys() {
            check(reg)?;
        }
        // Rule indices are deliberately NOT bounds-checked: the documented
        // contract lets probes built for a full module run against its
        // slice, which keeps register ids but prunes rules. A pruned init
        // rule simply never fires.
        for &(reg, _) in &self.init_rules {
            check(reg)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::builder::{ModuleBuilder, E};
    use crate::interp::{ExecMode, JobInput, Simulator};

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN",
            "EMIT",
            dur,
            E::stream_empty().is_zero(),
            "ctrl.cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn job(durs: &[u64]) -> JobInput {
        let mut j = JobInput::new(1);
        for &d in durs {
            j.push(&[d]);
        }
        j
    }

    #[test]
    fn schema_layout_bias_stc_counters() {
        let m = toy();
        let a = Analysis::run(&m);
        let s = FeatureSchema::from_analysis(&m, &a);
        // bias + 3 transitions (FETCH->RUN, RUN->EMIT, EMIT->FETCH) + 3
        // counter features.
        assert_eq!(s.len(), 1 + 3 + 3);
        assert_eq!(s.bias_index(), Some(0));
        assert!(!s.is_empty());
        assert!(s.descs()[1].name.starts_with("stc["));
        assert!(s.descs().iter().any(|d| d.name == "ic[ctrl.cnt]"));
        assert!(s.descs().iter().any(|d| d.name == "aiv[ctrl.cnt]"));
        assert!(s.descs().iter().any(|d| d.name == "apv[ctrl.cnt]"));
    }

    #[test]
    fn probes_count_transitions_and_inits() {
        let m = toy();
        let a = Analysis::run(&m);
        let s = FeatureSchema::from_analysis(&m, &a);
        let p = s.probe_program(&a);
        let sim = Simulator::new(&m);
        let t = sim
            .run(&job(&[5, 7, 9]), ExecMode::FastForward, Some(&p))
            .unwrap();
        let by_name = |n: &str| -> f64 {
            let i = s.descs().iter().position(|d| d.name == n).unwrap();
            t.features[i]
        };
        assert_eq!(by_name("bias"), 1.0);
        assert_eq!(by_name("ic[ctrl.cnt]"), 3.0);
        assert_eq!(by_name("aiv[ctrl.cnt]"), (5 + 7 + 9) as f64);
        // The counter always drains to zero before re-init.
        assert_eq!(by_name("apv[ctrl.cnt]"), 0.0);
        // Each token causes one full FETCH->RUN->EMIT->FETCH tour.
        for (src, dst) in [(0u64, 1u64), (1, 2), (2, 0)] {
            let name = format!("stc[ctrl.state:{src}->{dst}]");
            assert_eq!(by_name(&name), 3.0, "{name}");
        }
    }

    #[test]
    fn probing_does_not_change_timing() {
        let m = toy();
        let a = Analysis::run(&m);
        let s = FeatureSchema::from_analysis(&m, &a);
        let p = s.probe_program(&a);
        let sim = Simulator::new(&m);
        let plain = sim.run(&job(&[4, 4]), ExecMode::FastForward, None).unwrap();
        let probed = sim
            .run(&job(&[4, 4]), ExecMode::FastForward, Some(&p))
            .unwrap();
        assert_eq!(plain.cycles, probed.cycles);
        assert_eq!(plain.dp_active, probed.dp_active);
    }

    #[test]
    fn features_identical_across_modes() {
        let m = toy();
        let a = Analysis::run(&m);
        let s = FeatureSchema::from_analysis(&m, &a);
        let p = s.probe_program(&a);
        let sim = Simulator::new(&m);
        let j = job(&[5, 0, 12]);
        let step = sim.run(&j, ExecMode::Step, Some(&p)).unwrap();
        let ff = sim.run(&j, ExecMode::FastForward, Some(&p)).unwrap();
        let comp = sim.run(&j, ExecMode::Compressed, Some(&p)).unwrap();
        assert_eq!(step.features, ff.features);
        assert_eq!(
            ff.features, comp.features,
            "slice must compute identical features"
        );
    }

    #[test]
    fn source_regs_resolve_probe_targets() {
        let m = toy();
        let a = Analysis::run(&m);
        let s = FeatureSchema::from_analysis(&m, &a);
        let all: Vec<usize> = (0..s.len()).collect();
        let srcs = s.source_regs(&all);
        assert_eq!(srcs.len(), 2); // the FSM reg and the counter
        let none = s.source_regs(&[0]); // bias only
        assert!(none.is_empty());
    }
}
