//! A register-machine bytecode VM executing compiled modules.
//!
//! [`CompiledSim`] is the drop-in compiled counterpart of
//! [`crate::interp::Simulator`]: same constructor shape, same
//! [`run`](CompiledSim::run)/[`run_with_state`](CompiledSim::run_with_state)
//! signatures, same error surface, and — by contract — *byte-identical*
//! output: traces, probe streams (STC/IC/AIV/APV feature accumulation in
//! the same floating-point order), and final register state all match the
//! interpreter on every input. The interpreter is kept as the differential
//! oracle; the `differential` test suites and the proptest fuzzer enforce
//! the contract on the paper benchmarks and on randomized designs.
//!
//! Execution model per job (mirroring the interpreter's loop shape
//! exactly, including the order of the `done` and cycle-limit checks and
//! the wait-skip attempt):
//!
//! 1. Pick the program bucket for the primary FSM's current state (or the
//!    generic fallback program, as the interpreter falls back to its flat
//!    schedule).
//! 2. `done` program says stop → return trace + stable state.
//! 3. Wait-state skip (non-`Step` modes): identical plan table and
//!    arithmetic as the interpreter, with bound/activity expressions
//!    pre-compiled. In `Step` mode, runs of wait cycles are *batch
//!    retired* instead (`try_batch_step`): the analysis
//!    proves each wait cycle observationally featureless, so `m` of them
//!    fold into `counter ± m` / `dp_active += m` / `cycles += m` with
//!    Step-mode accounting (all stepped, none skipped) — byte-identical
//!    to per-cycle stepping, at fast-forward speed.
//! 4. Otherwise run the state's cycle program: guards/datapath
//!    activity/`advance` evaluate into scratch, stores land in the shadow
//!    region of the state buffer, then the commit loop moves shadow →
//!    stable in ascending register order, firing probe hooks with the same
//!    `(old, new)` pairs the interpreter produces.
//!
//! All run-time mutable state (state buffer, scratch, fired list) is
//! allocated per [`run`](CompiledSim::run) call, so one `CompiledSim` can
//! serve many threads — the same `&self` contract the interpreter offers.

use crate::analysis::{Analysis, WaitDir};
use crate::compile::{self, Compiled, ExprProgram};
use crate::error::RtlError;
use crate::expr::{BinOp, UnOp};
use crate::instrument::ProbeProgram;
use crate::interp::{ExecMode, JobInput, JobTrace};
use crate::module::Module;

/// One bytecode instruction. Operands named `dst`/`a`/`b`/`c`/`t`/`f`/`src`
/// are scratch-register indices; `slot` indexes the flattened state buffer
/// (stable region `[0, n)`, shadow region `[n, 2n)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Instr {
    /// `scratch[dst] = k`.
    Const { dst: u32, k: u64 },
    /// `scratch[dst] = state[slot]` (stable-region read).
    Load { dst: u32, slot: u32 },
    /// `scratch[dst] = job[tok].field` (0 past the end of the stream).
    Input { dst: u32, field: u32 },
    /// `scratch[dst] = (tok >= job.len())`.
    StreamEmpty { dst: u32 },
    /// `scratch[dst] = op(scratch[a], scratch[b])`.
    Bin { dst: u32, op: BinOp, a: u32, b: u32 },
    /// `scratch[dst] = op(scratch[a])`.
    Un { dst: u32, op: UnOp, a: u32 },
    /// `scratch[dst] = scratch[c] != 0 ? scratch[t] : scratch[f]`.
    Sel { dst: u32, c: u32, t: u32, f: u32 },
    /// Jump to `to` when `scratch[src] == 0`.
    Jz { src: u32, to: u32 },
    /// Unconditional jump.
    Jmp { to: u32 },
    /// `state[slot] = scratch[src] & mask`; log `(reg, rule)` as fired.
    /// `slot` is always in the shadow region.
    Store {
        slot: u32,
        reg: u32,
        rule: u32,
        src: u32,
        mask: u64,
    },
    /// `dp_active[dp] += 1` (saturating).
    IncDp { dp: u32 },
}

/// Executes one straight-line program. Returns nothing; results live in
/// `scratch`, `state` (shadow stores), `fired`, and `dp_active`.
#[inline]
fn exec(
    code: &[Instr],
    state: &mut [u64],
    scratch: &mut [u64],
    job: &JobInput,
    tok: usize,
    fired: &mut Vec<(u32, u32)>,
    dp_active: &mut [u64],
) {
    let mut pc = 0usize;
    while let Some(i) = code.get(pc) {
        pc += 1;
        match *i {
            Instr::Const { dst, k } => scratch[dst as usize] = k,
            Instr::Load { dst, slot } => scratch[dst as usize] = state[slot as usize],
            Instr::Input { dst, field } => {
                scratch[dst as usize] = if tok < job.len() {
                    job.get(tok, field as usize)
                } else {
                    0
                };
            }
            Instr::StreamEmpty { dst } => {
                scratch[dst as usize] = u64::from(tok >= job.len());
            }
            Instr::Bin { dst, op, a, b } => {
                scratch[dst as usize] = op.apply(scratch[a as usize], scratch[b as usize]);
            }
            Instr::Un { dst, op, a } => {
                scratch[dst as usize] = op.apply(scratch[a as usize]);
            }
            Instr::Sel { dst, c, t, f } => {
                scratch[dst as usize] = if scratch[c as usize] != 0 {
                    scratch[t as usize]
                } else {
                    scratch[f as usize]
                };
            }
            Instr::Jz { src, to } => {
                if scratch[src as usize] == 0 {
                    pc = to as usize;
                }
            }
            Instr::Jmp { to } => pc = to as usize,
            Instr::Store {
                slot,
                reg,
                rule,
                src,
                mask,
            } => {
                state[slot as usize] = scratch[src as usize] & mask;
                fired.push((reg, rule));
            }
            Instr::IncDp { dp } => {
                let d = &mut dp_active[dp as usize];
                *d = d.saturating_add(1);
            }
        }
    }
}

/// Evaluates a compiled single-expression program and returns its value.
#[inline]
fn exec_expr(
    p: &ExprProgram,
    state: &mut [u64],
    scratch: &mut [u64],
    job: &JobInput,
    tok: usize,
) -> u64 {
    if let Some(k) = p.konst {
        return k;
    }
    // Expression programs contain no Store/IncDp, so the fired/dp sinks
    // are never touched; empty ones keep the shared interpreter loop.
    let mut fired = Vec::new();
    let mut dp: [u64; 0] = [];
    exec(&p.code, state, scratch, job, tok, &mut fired, &mut dp);
    debug_assert!(fired.is_empty());
    scratch[p.out as usize]
}

/// Compiled execution engine for one module.
///
/// Construction compiles the module (flatten → schedule → lower, see the
/// crate-private `compile` module); [`CompiledSim::run`] may then be
/// called once per job, from any number of threads.
#[derive(Debug)]
pub struct CompiledSim<'m> {
    module: &'m Module,
    c: Compiled,
    cycle_limit: u64,
}

impl<'m> CompiledSim<'m> {
    /// Compiles `module`, running the static analyses to enable
    /// fast-forwarding.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if the module fails validation — the compiler
    /// reports dangling register/input references at compile time, where
    /// the interpreter would only hit them at the first cycle that
    /// evaluates the offending expression.
    pub fn new(module: &'m Module) -> Result<CompiledSim<'m>, RtlError> {
        let analysis = Analysis::run(module);
        CompiledSim::with_analysis(module, &analysis)
    }

    /// Compiles `module` from a precomputed [`Analysis`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledSim::new`].
    pub fn with_analysis(
        module: &'m Module,
        analysis: &Analysis,
    ) -> Result<CompiledSim<'m>, RtlError> {
        let _span = predvfs_obs::span("rtl.compile");
        let c = compile::compile(module, analysis)?;
        Ok(CompiledSim {
            module,
            c,
            cycle_limit: 1 << 34,
        })
    }

    /// Overrides the default cycle budget (2³⁴) after which a job is
    /// declared hung.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// The module being simulated.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Runs one job to completion; see [`crate::interp::Simulator::run`]
    /// for the contract — the compiled engine is observationally identical.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CycleLimit`] if `done` never asserts within the
    /// cycle budget, and [`RtlError::UnknownRegister`] (before cycle 0) if
    /// `probes` references a register the module does not have.
    pub fn run(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<JobTrace, RtlError> {
        self.run_with_state(job, mode, probes).map(|(t, _)| t)
    }

    /// Like [`CompiledSim::run`], but also returns the final register file
    /// — the stable region of the flattened state buffer at the cycle
    /// `done` asserted. Layout matches
    /// [`crate::interp::Simulator::run_with_state`] exactly: one `u64` per
    /// register, in declaration order.
    ///
    /// # Errors
    ///
    /// As for [`CompiledSim::run`].
    pub fn run_with_state(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<(JobTrace, Vec<u64>), RtlError> {
        // One span per job, never per cycle: the inner loop stays free of
        // profiling branches beyond the wait-batch retirement below.
        let _span = predvfs_obs::span("rtl.vm.run");
        if let Some(p) = probes {
            p.validate(self.module)?;
        }
        let c = &self.c;
        let n = c.n_regs;
        let mut state = c.init.clone();
        let mut scratch = vec![0u64; c.scratch];
        let mut fired: Vec<(u32, u32)> = Vec::with_capacity(16);
        let mut trace = JobTrace {
            cycles: 0,
            dp_active: vec![0; self.module.datapaths.len()],
            tokens_consumed: 0,
            stepped_cycles: 0,
            skipped_cycles: 0,
            features: probes
                .map(|p| vec![0.0; p.feature_count()])
                .unwrap_or_default(),
        };
        if let Some(p) = probes {
            if let Some(b) = p.bias_index() {
                trace.features[b] = 1.0;
            }
        }
        let mut tok = 0usize;
        loop {
            // Bucket selection mirrors the interpreter: out-of-range FSM
            // values fall back to the generic (flat-schedule) program.
            let progs = match c.fsm {
                Some(f) => c.by_state.get(state[f] as usize).unwrap_or(&c.generic),
                None => &c.generic,
            };
            if exec_expr(&progs.done, &mut state, &mut scratch, job, tok) != 0 {
                state.truncate(n);
                return Ok((trace, state));
            }
            if trace.cycles >= self.cycle_limit {
                return Err(RtlError::CycleLimit {
                    limit: self.cycle_limit,
                });
            }
            if mode != ExecMode::Step {
                if let Some(skip) =
                    self.try_skip(&mut state, &mut scratch, job, tok, mode, &mut trace)
                {
                    // Saturate exactly as the interpreter does: adversarial
                    // bounds can make one skip cover ~2^64 cycles.
                    trace.cycles = trace.cycles.saturating_add(skip.0);
                    trace.skipped_cycles = trace.skipped_cycles.saturating_add(skip.1);
                    continue;
                }
            } else if let Some(m) =
                self.try_batch_step(&mut state, &mut scratch, job, tok, &mut trace)
            {
                // Wait cycles retired in a batch still count as *stepped*:
                // Step mode's accounting is per-cycle, only its execution
                // is batched.
                trace.cycles = trace.cycles.saturating_add(m);
                trace.stepped_cycles = trace.stepped_cycles.saturating_add(m);
                continue;
            }
            fired.clear();
            exec(
                &progs.cycle.code,
                &mut state,
                &mut scratch,
                job,
                tok,
                &mut fired,
                &mut trace.dp_active,
            );
            let advance = scratch[progs.cycle.advance as usize] != 0;
            // Commit shadow → stable in ascending register order — the
            // same order the interpreter applies its `changes` list — so
            // probe streams accumulate in an identical sequence.
            for &(reg, rule) in &fired {
                let (reg, rule) = (reg as usize, rule as usize);
                let old = state[reg];
                let v = state[n + reg];
                state[reg] = v;
                if let Some(p) = probes {
                    if p.is_init_rule(reg, rule) {
                        p.record_counter_init(&mut trace.features, reg, old, v);
                    }
                    if old != v && c.is_fsm_reg[reg] {
                        p.record_transition(&mut trace.features, reg, old, v);
                    }
                }
            }
            if advance && tok < job.len() {
                tok += 1;
                trace.tokens_consumed += 1;
            }
            trace.cycles = trace.cycles.saturating_add(1);
            trace.stepped_cycles = trace.stepped_cycles.saturating_add(1);
        }
    }

    /// If the current configuration is a skippable wait, applies the skip
    /// and returns `(cycles_charged, cycles_skipped)` — the interpreter's
    /// `try_skip`, with bound/activity expressions pre-compiled.
    fn try_skip(
        &self,
        state: &mut [u64],
        scratch: &mut [u64],
        job: &JobInput,
        tok: usize,
        mode: ExecMode,
        trace: &mut JobTrace,
    ) -> Option<(u64, u64)> {
        let c = &self.c;
        for &f in &c.fsm_regs {
            let Some(plan) = c.waits.get(&(f, state[f])) else {
                continue;
            };
            let cur = state[plan.counter];
            let (remaining, terminal) = match plan.dir {
                WaitDir::Down => (cur, 0),
                WaitDir::Up => {
                    let bound = exec_expr(plan.bound.as_ref()?, state, scratch, job, tok);
                    (bound.saturating_sub(cur), bound)
                }
            };
            if remaining == 0 {
                return None;
            }
            let charged = match mode {
                ExecMode::FastForward => remaining,
                ExecMode::Compressed => {
                    if plan.serial {
                        remaining
                    } else {
                        1
                    }
                }
                ExecMode::Step => unreachable!("skip not attempted in Step mode"),
            };
            // Counter jumps to its terminal value *before* datapath
            // activity is evaluated — the activity condition may read it.
            state[plan.counter] = terminal;
            for (di, prog) in &plan.dps {
                if exec_expr(prog, state, scratch, job, tok) != 0 {
                    trace.dp_active[*di] = trace.dp_active[*di].saturating_add(charged);
                }
            }
            return Some((charged, remaining));
        }
        None
    }

    /// Step-mode analogue of [`CompiledSim::try_skip`]: retires a run of
    /// wait cycles in one batch, byte-identical to stepping them one at a
    /// time.
    ///
    /// The wait-state analysis guarantees each wait cycle is individually
    /// deterministic and observationally featureless: only the counter
    /// ticks (±1 per cycle; its tick rule is never a probe init rule, and
    /// rules of every other register are provably inactive), datapath
    /// activity conditions never read the counter (so they are constant
    /// across the wait), `advance` and `done` are provably 0, and the
    /// token stream is frozen. The per-cycle trace deltas are therefore
    /// uniform, and `m` cycles fold into `counter ± m`, `dp_active += m`,
    /// `cycles/stepped += m` — exactly what `m` interpreter steps produce.
    ///
    /// The batch is capped at the remaining cycle budget so a wait that
    /// crosses the limit still surfaces [`RtlError::CycleLimit`] at the
    /// same cycle the interpreter reports it. The exit cycle (counter
    /// exhausted) is *not* part of the batch: exit-gated rules fire there,
    /// so it runs through the ordinary per-cycle path.
    fn try_batch_step(
        &self,
        state: &mut [u64],
        scratch: &mut [u64],
        job: &JobInput,
        tok: usize,
        trace: &mut JobTrace,
    ) -> Option<u64> {
        let c = &self.c;
        for &f in &c.fsm_regs {
            let Some(plan) = c.waits.get(&(f, state[f])) else {
                continue;
            };
            if c.is_fsm_reg[plan.counter] {
                // A counter that doubles as an FSM register would emit a
                // transition probe per tick; step it cycle by cycle.
                return None;
            }
            let cur = state[plan.counter];
            let remaining = match plan.dir {
                WaitDir::Down => cur,
                WaitDir::Up => {
                    let bound = exec_expr(plan.bound.as_ref()?, state, scratch, job, tok);
                    bound.saturating_sub(cur)
                }
            };
            if remaining == 0 {
                return None;
            }
            // The span opens only once a batch is certain to retire, so
            // non-wait Step cycles pay nothing for it.
            let _span = predvfs_obs::span("rtl.vm.wait_batch");
            // `cycles < cycle_limit` was checked just above, so the cap is
            // at least 1; a capped batch leaves the counter mid-wait and
            // the next loop iteration reports `CycleLimit` exactly where
            // the interpreter would.
            let m = remaining.min(self.cycle_limit - trace.cycles);
            match plan.dir {
                WaitDir::Down => state[plan.counter] = cur - m,
                WaitDir::Up => state[plan.counter] = cur + m,
            }
            for (di, prog) in &plan.dps {
                if exec_expr(prog, state, scratch, job, tok) != 0 {
                    trace.dp_active[*di] = trace.dp_active[*di].saturating_add(m);
                }
            }
            return Some(m);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};
    use crate::instrument::FeatureSchema;
    use crate::interp::Simulator;

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN",
            "EMIT",
            dur,
            E::stream_empty().is_zero(),
            "ctrl.cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_compute("alu", fsm.in_state("RUN"), 500.0, 2.0, 100, 1);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn job(durs: &[u64]) -> JobInput {
        let mut j = JobInput::new(1);
        for &d in durs {
            j.push(&[d]);
        }
        j
    }

    fn assert_identical(m: &Module, j: &JobInput, probed: bool) {
        let a = Analysis::run(m);
        let probes = probed.then(|| {
            let s = FeatureSchema::from_analysis(m, &a);
            s.probe_program(&a)
        });
        let interp = Simulator::with_analysis(m, &a);
        let vm = CompiledSim::with_analysis(m, &a).unwrap();
        for mode in [ExecMode::Step, ExecMode::FastForward, ExecMode::Compressed] {
            let want = interp.run_with_state(j, mode, probes.as_ref()).unwrap();
            let got = vm.run_with_state(j, mode, probes.as_ref()).unwrap();
            assert_eq!(want, got, "mode {mode:?} probed={probed}");
        }
    }

    #[test]
    fn vm_matches_interpreter_on_toy_module() {
        let m = toy();
        for durs in [&[0u64][..], &[1], &[5, 3], &[7, 0, 3], &[100, 2, 50, 50]] {
            assert_identical(&m, &job(durs), false);
            assert_identical(&m, &job(durs), true);
        }
        assert_identical(&m, &JobInput::new(1), true);
    }

    #[test]
    fn vm_matches_interpreter_without_an_fsm() {
        // No detectable FSM: both engines run their flat/generic paths.
        let mut b = ModuleBuilder::new("flat");
        let x = b.reg("x", 8, 0);
        let y = b.reg("y", 16, 1);
        b.set(x, E::one(), x.e() + E::one());
        b.set(y, x.e().gt(E::k(3)), y.e() + x.e());
        b.done_when(x.e().ge(E::k(200)));
        let m = b.build().unwrap();
        assert_identical(&m, &JobInput::new(0), false);
    }

    #[test]
    fn vm_reports_cycle_limit_like_interpreter() {
        let mut b = ModuleBuilder::new("hang");
        let fsm = b.fsm("ctrl", &["SPIN"]);
        let r = b.reg("x", 8, 0);
        b.set(r, fsm.in_state("SPIN"), r.e() + E::one());
        b.done_when(E::zero());
        let m = b.build().unwrap();
        let mut vm = CompiledSim::new(&m).unwrap();
        vm.set_cycle_limit(100);
        let err = vm.run(&JobInput::new(0), ExecMode::Step, None).unwrap_err();
        assert!(matches!(err, RtlError::CycleLimit { limit: 100 }));
    }

    #[test]
    fn vm_rejects_foreign_probes_before_cycle_zero() {
        let big = toy();
        let a = Analysis::run(&big);
        let p = FeatureSchema::from_analysis(&big, &a).probe_program(&a);
        let mut b = ModuleBuilder::new("small");
        let r = b.reg("x", 8, 0);
        b.set(r, E::one(), r.e() + E::one());
        b.done_when(r.e().eq_(E::k(3)));
        let small = b.build().unwrap();
        let vm = CompiledSim::new(&small).unwrap();
        let err = vm
            .run(&JobInput::new(0), ExecMode::Step, Some(&p))
            .unwrap_err();
        assert!(matches!(err, RtlError::UnknownRegister { .. }));
    }

    #[test]
    fn batched_step_respects_the_cycle_limit_mid_wait() {
        // A 1000-cycle wait against a 50-cycle budget: the batch must be
        // capped so CycleLimit surfaces at the same cycle the interpreter
        // reports it, not after the whole wait retires.
        let m = toy();
        let mut vm = CompiledSim::new(&m).unwrap();
        vm.set_cycle_limit(50);
        let mut interp = Simulator::new(&m);
        interp.set_cycle_limit(50);
        let want = interp.run(&job(&[1000]), ExecMode::Step, None).unwrap_err();
        let got = vm.run(&job(&[1000]), ExecMode::Step, None).unwrap_err();
        assert!(matches!(got, RtlError::CycleLimit { limit: 50 }));
        assert_eq!(format!("{want}"), format!("{got}"));
    }

    #[test]
    fn vm_saturates_on_adversarial_wait_bounds() {
        let mut b = ModuleBuilder::new("ovf");
        let n = b.input("n", 64);
        let fsm = b.fsm("ctrl", &["A", "W", "D"]);
        let c = b.reg("c", 64, 0);
        b.set(c, fsm.in_state("A"), E::zero());
        b.set(c, fsm.in_state("W") & c.e().lt(n.clone()), c.e() + E::one());
        b.trans(&fsm, "A", "W", E::one());
        b.trans(&fsm, "W", "D", c.e().eq_(n));
        b.done_when(fsm.in_state("D"));
        let m = b.build().unwrap();
        let vm = CompiledSim::new(&m).unwrap();
        let mut j = JobInput::new(1);
        j.push(&[u64::MAX]);
        let err = vm.run(&j, ExecMode::FastForward, None).unwrap_err();
        assert!(matches!(err, RtlError::CycleLimit { limit } if limit == 1 << 34));
    }

    #[test]
    fn vm_is_shareable_across_threads() {
        let m = toy();
        let vm = CompiledSim::new(&m).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let t = vm.run(&job(&[9, 2]), ExecMode::FastForward, None).unwrap();
                    assert_eq!(t.tokens_consumed, 2);
                });
            }
        });
    }
}
