//! Error types for the RTL crate.

use std::error::Error;
use std::fmt;

/// Errors reported by module validation, analysis, and slicing.
#[derive(Debug, Clone, PartialEq)]
pub enum RtlError {
    /// A register declared a width outside `1..=64`.
    BadWidth {
        /// Register name.
        name: String,
        /// Offending width.
        width: u32,
    },
    /// A register's reset value does not fit its width.
    InitOutOfRange {
        /// Register name.
        name: String,
        /// Offending reset value.
        init: u64,
        /// Register width.
        width: u32,
    },
    /// Two registers share a name.
    DuplicateName {
        /// The colliding name.
        name: String,
        /// Index of the first occurrence.
        first: usize,
        /// Index of the second occurrence.
        second: usize,
    },
    /// An expression references a register id outside the module.
    DanglingReg {
        /// The out-of-range index.
        id: usize,
    },
    /// An expression references an input field id outside the module.
    DanglingInput {
        /// The out-of-range index.
        id: usize,
    },
    /// A probe or lookup referenced a register the module does not have.
    UnknownRegister {
        /// Name of the module searched.
        module: String,
        /// The missing register's name (or `rN` for an index-only
        /// reference, matching [`crate::module::RegId`]'s display form).
        name: String,
    },
    /// The interpreter exceeded its cycle budget without `done` asserting.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A slice was requested for a feature the schema does not contain.
    UnknownFeature {
        /// The requested feature index.
        index: usize,
    },
    /// Slicing removed everything (no selected feature depends on any
    /// register), which indicates a degenerate model.
    EmptySlice,
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::BadWidth { name, width } => {
                write!(f, "register `{name}` has invalid width {width}")
            }
            RtlError::InitOutOfRange { name, init, width } => write!(
                f,
                "register `{name}` reset value {init} does not fit in {width} bits"
            ),
            RtlError::DuplicateName {
                name,
                first,
                second,
            } => write!(
                f,
                "register name `{name}` used twice (indices {first} and {second})"
            ),
            RtlError::DanglingReg { id } => {
                write!(f, "expression references unknown register index {id}")
            }
            RtlError::DanglingInput { id } => {
                write!(f, "expression references unknown input field index {id}")
            }
            RtlError::UnknownRegister { module, name } => {
                write!(f, "module `{module}` has no register `{name}`")
            }
            RtlError::CycleLimit { limit } => {
                write!(f, "job did not finish within {limit} cycles")
            }
            RtlError::UnknownFeature { index } => {
                write!(f, "feature index {index} is not in the schema")
            }
            RtlError::EmptySlice => {
                write!(f, "slice is empty: no selected feature depends on state")
            }
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<RtlError> = vec![
            RtlError::BadWidth {
                name: "x".into(),
                width: 0,
            },
            RtlError::InitOutOfRange {
                name: "x".into(),
                init: 9,
                width: 2,
            },
            RtlError::DuplicateName {
                name: "x".into(),
                first: 0,
                second: 1,
            },
            RtlError::DanglingReg { id: 3 },
            RtlError::DanglingInput { id: 4 },
            RtlError::UnknownRegister {
                module: "m".into(),
                name: "x".into(),
            },
            RtlError::CycleLimit { limit: 10 },
            RtlError::UnknownFeature { index: 2 },
            RtlError::EmptySlice,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('`'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
