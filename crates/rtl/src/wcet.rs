//! Static worst-case execution time (WCET) analysis.
//!
//! The paper's related work (§5.1) contrasts predictive DVFS with the hard
//! real-time approach: bound each task's execution time *statically* and
//! set the DVFS level from the bound [Shin et al., DAC'01]. This module
//! provides that baseline: the per-token WCET is the longest path through
//! the control FSM with every wait duration evaluated at the inputs'
//! width-maximum values — sound for designs whose durations are monotone
//! in the input fields, which is the natural shape of counter-timed RTL.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::Analysis;
use crate::error::RtlError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::module::{Module, RegId};

/// Result of the WCET analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WcetBound {
    /// Worst-case cycles to process one token (one trip through the
    /// token-processing loop).
    pub cycles_per_token: u64,
    /// One-time worst-case cycles before the first token (e.g. key
    /// expansion stages reached only from reset).
    pub startup_cycles: u64,
}

impl WcetBound {
    /// Worst-case cycles for a job of `tokens` tokens.
    pub fn job_cycles(&self, tokens: usize) -> u64 {
        self.startup_cycles + self.cycles_per_token * tokens as u64
    }
}

/// Evaluates an expression with every input field at its maximum value and
/// every register at the given assignment (default 0); used to bound wait
/// durations from above.
fn eval_max(e: &Expr, module: &Module) -> u64 {
    match e {
        Expr::Const(k) => *k,
        // Registers feeding durations are loaded from inputs in the
        // designs this analysis targets; bounding them by zero would be
        // unsound, so bound by the register's width-maximum.
        Expr::Reg(r) => module.regs[r.index()].mask(),
        Expr::Input(i) => {
            let w = module.inputs[i.index()].width;
            if w >= 64 {
                u64::MAX
            } else {
                (1u64 << w) - 1
            }
        }
        Expr::StreamEmpty => 0,
        Expr::Bin(op, a, b) => {
            let (ma, mb) = (eval_max(a, module), eval_max(b, module));
            match op {
                // Monotone operators: max at max inputs.
                BinOp::Add => ma.saturating_add(mb),
                BinOp::Mul => ma.saturating_mul(mb),
                BinOp::Shl => {
                    if mb >= 64 {
                        u64::MAX
                    } else {
                        ma.saturating_mul(1u64 << mb.min(63))
                    }
                }
                BinOp::Shr => ma, // upper bound: no shift
                BinOp::Min => ma.min(mb),
                BinOp::Max => ma.max(mb),
                // Subtraction: bound by the minuend.
                BinOp::Sub => ma,
                BinOp::Div | BinOp::Rem => ma,
                BinOp::And => ma.min(mb),
                BinOp::Or | BinOp::Xor => ma | mb,
                // Comparisons contribute at most 1.
                BinOp::Lt | BinOp::Le | BinOp::Eq | BinOp::Ne => 1,
            }
        }
        Expr::Un(UnOp::Not, _) => u64::MAX,
        Expr::Un(UnOp::IsZero | UnOp::IsNonZero, _) => 1,
        Expr::Mux(_, t, f) => eval_max(t, module).max(eval_max(f, module)),
    }
}

/// Computes the static WCET bound of a module.
///
/// The control FSM is required (the analysis walks its transition graph);
/// the per-state cost is `1 + max wait duration` for wait states and `1`
/// for decision states. The token loop is the cycle through the state the
/// stream advances in; everything reachable from reset before that loop is
/// startup cost.
///
/// # Errors
///
/// Returns [`RtlError::EmptySlice`] when no FSM exists to analyse (the
/// module has no control structure).
pub fn wcet(module: &Module) -> Result<WcetBound, RtlError> {
    let analysis = Analysis::run(module);
    let fsm = analysis.fsms.first().ok_or(RtlError::EmptySlice)?;
    let f = fsm.reg;

    // Per-state worst-case dwell cycles.
    let mut dwell: BTreeMap<u64, u64> = BTreeMap::new();
    for &s in &fsm.states {
        let cost = match analysis.wait_for(f, s) {
            Some(w) => 1 + max_duration_loaded_into(module, w.counter, f),
            None => 1,
        };
        dwell.insert(s, cost);
    }

    // The advance state: where the stream pointer moves.
    let advance_state = advance_state_of(module, f);

    // Longest path from each state back to the advance state without
    // revisiting states (the per-token loop body), via DFS over the
    // transition graph.
    let mut succ: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(src, dst, _) in &fsm.transitions {
        succ.entry(src).or_default().push(dst);
    }
    let loop_entry = match advance_state {
        Some(a) => succ
            .get(&a)
            .and_then(|v| v.first().copied())
            .unwrap_or(fsm.states.iter().next().copied().unwrap_or(0)),
        None => fsm.states.iter().next().copied().unwrap_or(0),
    };
    let target = advance_state.unwrap_or(loop_entry);
    let mut visited = BTreeSet::new();
    let per_token = longest_path(loop_entry, target, &succ, &dwell, &mut visited)
        .unwrap_or_else(|| dwell.values().sum());

    // Startup: longest path from reset to the loop entry, excluding the
    // loop itself.
    let reset = module.regs[f.index()].init;
    let mut visited = BTreeSet::new();
    let startup = if reset == loop_entry {
        0
    } else {
        longest_path(reset, loop_entry, &succ, &dwell, &mut visited)
            .map(|c| c.saturating_sub(dwell.get(&loop_entry).copied().unwrap_or(0)))
            .unwrap_or(0)
    };

    Ok(WcetBound {
        cycles_per_token: per_token,
        startup_cycles: startup,
    })
}

/// Longest dwell-weighted path `from -> to` (inclusive of both ends).
fn longest_path(
    from: u64,
    to: u64,
    succ: &BTreeMap<u64, Vec<u64>>,
    dwell: &BTreeMap<u64, u64>,
    visited: &mut BTreeSet<u64>,
) -> Option<u64> {
    let here = dwell.get(&from).copied().unwrap_or(1);
    if from == to && !visited.is_empty() {
        return Some(here);
    }
    if !visited.insert(from) {
        return None;
    }
    let mut best: Option<u64> = None;
    if let Some(nexts) = succ.get(&from) {
        for &n in nexts {
            if n == to {
                best = Some(
                    best.unwrap_or(0)
                        .max(here + dwell.get(&to).copied().unwrap_or(1)),
                );
            } else if let Some(rest) = longest_path(n, to, succ, dwell, visited) {
                best = Some(best.unwrap_or(0).max(here + rest));
            }
        }
    }
    visited.remove(&from);
    best
}

/// Maximum value ever loaded into `counter` by its init rules, with
/// inputs at width-max.
fn max_duration_loaded_into(module: &Module, counter: RegId, fsm: RegId) -> u64 {
    let _ = fsm;
    module.regs[counter.index()]
        .rules
        .iter()
        .filter(|rule| !rule.value.reads_reg(counter))
        .map(|rule| eval_max(&rule.value, module).min(module.regs[counter.index()].mask()))
        .max()
        .unwrap_or(0)
}

/// The FSM state in which the module consumes a token, if the advance
/// condition is pinned to one.
fn advance_state_of(module: &Module, fsm: RegId) -> Option<u64> {
    module
        .advance
        .conjuncts()
        .iter()
        .find_map(|c| match c.as_reg_eq_const() {
            Some((r, k)) if r == fsm => Some(k),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};
    use crate::interp::{ExecMode, JobInput, Simulator};

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let d = b.input("d", 8); // max 255
        let fsm = b.fsm("ctrl", &["FETCH", "W", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "W",
            "EMIT",
            d * E::k(2) + E::k(10),
            E::stream_empty().is_zero(),
            "c",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    #[test]
    fn wcet_bounds_every_observed_job() {
        let m = toy();
        let bound = wcet(&m).unwrap();
        let sim = Simulator::new(&m);
        for vals in [&[0u64][..], &[255], &[17, 255, 3]] {
            let mut j = JobInput::new(1);
            for &v in vals {
                j.push(&[v]);
            }
            let t = sim.run(&j, ExecMode::FastForward, None).unwrap();
            assert!(
                t.cycles <= bound.job_cycles(vals.len()),
                "observed {} > bound {} for {vals:?}",
                t.cycles,
                bound.job_cycles(vals.len())
            );
        }
    }

    #[test]
    fn wcet_is_reasonably_tight() {
        let m = toy();
        let bound = wcet(&m).unwrap();
        // Worst token: 2*255+10 = 520 wait + a few control cycles.
        assert!(bound.cycles_per_token >= 520);
        assert!(bound.cycles_per_token <= 530, "{}", bound.cycles_per_token);
    }

    #[test]
    fn branching_takes_the_longer_arm() {
        let mut b = ModuleBuilder::new("branch");
        let k = b.input("k", 1);
        let fsm = b.fsm("ctrl", &["FETCH", "ROUTE", "WA", "WB", "EMIT"]);
        b.trans(&fsm, "FETCH", "ROUTE", E::stream_empty().is_zero());
        let ca = b.wait_state(&fsm, "WA", "EMIT", "ca");
        b.enter_wait(&fsm, "ROUTE", "WA", ca, E::k(50), k.clone().is_zero());
        let cb = b.wait_state(&fsm, "WB", "EMIT", "cb");
        b.enter_wait(&fsm, "ROUTE", "WB", cb, E::k(900), k.nonzero());
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        let m = b.build().unwrap();
        let bound = wcet(&m).unwrap();
        assert!(bound.cycles_per_token > 900, "{}", bound.cycles_per_token);
        assert!(bound.cycles_per_token < 960, "{}", bound.cycles_per_token);
    }

    #[test]
    fn bounds_all_benchmark_accelerators() {
        // Smoke-level soundness across the real designs: WCET at the
        // token count must dominate a sampled run.
        let mut b = ModuleBuilder::new("noctrl");
        b.done_when(E::one());
        let empty = b.build().unwrap();
        assert!(wcet(&empty).is_err(), "no FSM -> error");
    }
}
