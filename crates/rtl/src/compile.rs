//! Compilation of [`Module`]s to linear bytecode: flatten → schedule →
//! lower.
//!
//! The tree-walking interpreter in [`crate::interp`] pays for every cycle
//! with pointer-chasing `Box<Expr>` recursion, per-cycle schedule lookups,
//! and re-evaluation of identical subexpressions across guards. This module
//! removes all three costs ahead of time:
//!
//! 1. **Flatten.** The module's register hierarchy becomes one contiguous
//!    `Vec<u64>` state buffer with a two-region *stable/shadow* layout:
//!    slots `[0, n)` hold the architectural (current-cycle) values, slots
//!    `[n, 2n)` receive the deferred synchronous writes. A cycle program
//!    reads only the stable region and stores only to the shadow region, so
//!    rule evaluation order cannot leak next-state values — exactly the
//!    synchronous semantics the interpreter implements with its `changes`
//!    list. The commit loop (in [`crate::vm`]) then moves shadow → stable
//!    in ascending register order, firing probes along the way.
//!
//! 2. **Schedule.** Per primary-FSM state (mirroring the interpreter's
//!    bucketed schedule), the guarded update graph is rebuilt as a
//!    hash-consed expression DAG with the FSM register *partially
//!    evaluated* to that state's constant. Constant folding then deletes
//!    every `state == K` test and, transitively, every rule and datapath
//!    that provably cannot fire in the state; what survives is shared via
//!    common-subexpression elimination and emitted in dependency
//!    (topological) order — interning a DAG node after its operands makes
//!    node-id order a valid schedule for free.
//!
//! 3. **Lower.** Each per-state update graph becomes one straight-line
//!    bytecode program for a register machine ([`crate::vm::Instr`]):
//!    phase A evaluates every shared root (rule guards, datapath activity,
//!    `advance`) unconditionally into scratch registers; phase B walks each
//!    hardware register's rule chain with `Jz` short-circuits and
//!    first-fire-wins jumps, computing rule values in private (rolled-back)
//!    scratch so a conditionally-executed body can never satisfy another
//!    body's CSE lookup.
//!
//! A generic (unspecialized) program is always compiled as well: it is the
//! whole design when no FSM is detected, and the fallback bucket when the
//! state register somehow leaves the analyzed range — the same policy as
//! the interpreter's `Schedule::Flat`.
//!
//! Wait-state skipping stays in Rust (it is control flow, not dataflow),
//! but its bound and datapath-activity expressions are compiled to
//! [`ExprProgram`]s specialized to the waiting state.
//!
//! Everything here is semantics-preserving by construction *and* checked:
//! the interpreter remains the differential-testing oracle, and the
//! `differential` suites assert byte-identical traces, probe streams, and
//! final state on every paper benchmark and on proptest-generated designs.

use std::collections::HashMap;

use crate::analysis::{Analysis, WaitDir};
use crate::error::RtlError;
use crate::expr::{BinOp, Expr};
use crate::module::Module;
use crate::vm::Instr;

/// A hash-consed DAG node; `u32` operands are node ids, which double as
/// scratch-register indices once emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Const(u64),
    /// Read stable slot `reg` of the state buffer.
    Load(u32),
    /// Read field `field` of the head token (0 past end of stream).
    Input(u32),
    StreamEmpty,
    Bin(BinOp, u32, u32),
    Un(crate::expr::UnOp, u32),
    /// `Sel(c, t, f)`: both arms are evaluated — expressions are pure and
    /// total, so this matches the interpreter's lazy `Mux` bit for bit.
    Sel(u32, u32, u32),
}

/// Hash-consing expression DAG with optional partial evaluation of one
/// register (the FSM register pinned to the bucket's state).
struct Dag {
    nodes: Vec<Node>,
    memo: HashMap<Node, u32>,
    fold: Option<(u32, u64)>,
}

impl Dag {
    fn new(fold: Option<(usize, u64)>) -> Dag {
        Dag {
            nodes: Vec::new(),
            memo: HashMap::new(),
            fold: fold.map(|(r, v)| (r as u32, v)),
        }
    }

    fn intern(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.memo.get(&n) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        self.memo.insert(n, id);
        id
    }

    fn konst(&self, id: u32) -> Option<u64> {
        match self.nodes[id as usize] {
            Node::Const(k) => Some(k),
            _ => None,
        }
    }

    /// Lowers an expression into the DAG with constant folding.
    ///
    /// Folding only ever uses [`BinOp::apply`]/[`crate::expr::UnOp::apply`]
    /// — the exact runtime semantics — so a folded constant is the value
    /// the interpreter would have computed. The one algebraic identity,
    /// `0 & x == 0` (bitwise), short-circuits the ubiquitous
    /// `state == K & cond` guard shape without lowering the dead `cond`.
    fn lower(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Const(k) => self.intern(Node::Const(*k)),
            Expr::Reg(r) => {
                let ri = r.index() as u32;
                match self.fold {
                    Some((f, v)) if f == ri => self.intern(Node::Const(v)),
                    _ => self.intern(Node::Load(ri)),
                }
            }
            Expr::Input(i) => self.intern(Node::Input(i.index() as u32)),
            Expr::StreamEmpty => self.intern(Node::StreamEmpty),
            Expr::Bin(op, a, b) => {
                let a = self.lower(a);
                if *op == BinOp::And && self.konst(a) == Some(0) {
                    return self.intern(Node::Const(0));
                }
                let b = self.lower(b);
                match (self.konst(a), self.konst(b)) {
                    (Some(x), Some(y)) => self.intern(Node::Const(op.apply(x, y))),
                    (_, Some(0)) if *op == BinOp::And => self.intern(Node::Const(0)),
                    _ => self.intern(Node::Bin(*op, a, b)),
                }
            }
            Expr::Un(op, a) => {
                let a = self.lower(a);
                match self.konst(a) {
                    Some(x) => self.intern(Node::Const(op.apply(x))),
                    None => self.intern(Node::Un(*op, a)),
                }
            }
            Expr::Mux(c, t, f) => {
                let c = self.lower(c);
                match self.konst(c) {
                    Some(0) => self.lower(f),
                    Some(_) => self.lower(t),
                    None => {
                        let t = self.lower(t);
                        let f = self.lower(f);
                        self.intern(Node::Sel(c, t, f))
                    }
                }
            }
        }
    }
}

/// Lowers DAG nodes to instructions, assigning scratch registers on first
/// use (dead nodes are never emitted).
struct Emitter {
    dag: Dag,
    /// Node id → scratch slot, once emitted in the current scope.
    slot: Vec<Option<u32>>,
    /// Log of node ids assigned since the last checkpoint (for rollback of
    /// conditionally-executed rule bodies).
    assigned: Vec<u32>,
    next_slot: u32,
    high_water: u32,
    code: Vec<Instr>,
}

impl Emitter {
    fn new(fold: Option<(usize, u64)>) -> Emitter {
        Emitter {
            dag: Dag::new(fold),
            slot: Vec::new(),
            assigned: Vec::new(),
            next_slot: 0,
            high_water: 0,
            code: Vec::new(),
        }
    }

    fn slot_of(&self, id: u32) -> u32 {
        self.slot[id as usize].expect("node must be emitted before use")
    }

    fn alloc(&mut self, id: u32) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.high_water = self.high_water.max(self.next_slot);
        if self.slot.len() <= id as usize {
            self.slot.resize(id as usize + 1, None);
        }
        self.slot[id as usize] = Some(s);
        self.assigned.push(id);
        s
    }

    /// Emits `id` (and, recursively, its operands) unless already live in
    /// the current scope; returns its scratch slot.
    fn ensure(&mut self, id: u32) -> u32 {
        if let Some(Some(s)) = self.slot.get(id as usize) {
            return *s;
        }
        let instr = match self.dag.nodes[id as usize] {
            Node::Const(k) => Instr::Const {
                dst: self.alloc(id),
                k,
            },
            Node::Load(reg) => Instr::Load {
                dst: self.alloc(id),
                slot: reg,
            },
            Node::Input(field) => Instr::Input {
                dst: self.alloc(id),
                field,
            },
            Node::StreamEmpty => Instr::StreamEmpty {
                dst: self.alloc(id),
            },
            Node::Bin(op, a, b) => {
                let a = self.ensure(a);
                let b = self.ensure(b);
                Instr::Bin {
                    dst: self.alloc(id),
                    op,
                    a,
                    b,
                }
            }
            Node::Un(op, a) => {
                let a = self.ensure(a);
                Instr::Un {
                    dst: self.alloc(id),
                    op,
                    a,
                }
            }
            Node::Sel(c, t, f) => {
                let c = self.ensure(c);
                let t = self.ensure(t);
                let f = self.ensure(f);
                Instr::Sel {
                    dst: self.alloc(id),
                    c,
                    t,
                    f,
                }
            }
        };
        self.code.push(instr);
        self.slot_of(id)
    }

    /// Marks the current scratch scope. Rule-value bodies emit inside a
    /// checkpoint/rollback pair: their slots are private, because the body
    /// executes conditionally and a later chain must not CSE into scratch
    /// that may never have been written.
    fn checkpoint(&self) -> (u32, usize) {
        (self.next_slot, self.assigned.len())
    }

    fn rollback(&mut self, cp: (u32, usize)) {
        let (next_slot, assigned_len) = cp;
        for id in self.assigned.drain(assigned_len..) {
            self.slot[id as usize] = None;
        }
        self.next_slot = next_slot;
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Instr::Jz { to: t, .. } | Instr::Jmp { to: t } => *t = to,
            _ => unreachable!("patch target must be a jump"),
        }
    }
}

/// A straight-line program computing one expression; the result lands in
/// scratch slot `out`.
#[derive(Debug, Clone)]
pub(crate) struct ExprProgram {
    pub code: Vec<Instr>,
    pub out: u32,
    /// `Some(k)` when the whole program folded to the constant `k` —
    /// state specialization makes this the common case for `done` checks
    /// (e.g. `done` is provably 0 in every non-terminal FSM state), and
    /// the VM then skips program execution entirely.
    pub konst: Option<u64>,
    scratch: u32,
}

/// One synchronous step of the design, specialized to (at most) one FSM
/// state: guard/datapath/advance evaluation, shadow-region stores with
/// first-fire-wins chains, and datapath activity counting.
#[derive(Debug, Clone)]
pub(crate) struct CycleProgram {
    pub code: Vec<Instr>,
    /// Scratch slot holding the `advance` value after execution.
    pub advance: u32,
    scratch: u32,
}

/// The `done` test plus the cycle step for one schedule bucket.
#[derive(Debug, Clone)]
pub(crate) struct StatePrograms {
    pub cycle: CycleProgram,
    pub done: ExprProgram,
}

/// A wait state with its bound/activity expressions pre-lowered, keyed off
/// the same `(fsm reg, state)` pairs the interpreter uses.
#[derive(Debug, Clone)]
pub(crate) struct CompiledWait {
    pub counter: usize,
    pub dir: WaitDir,
    pub bound: Option<ExprProgram>,
    /// `(datapath index, activity program)` in `maybe_active_dps` order.
    pub dps: Vec<(usize, ExprProgram)>,
    pub serial: bool,
}

/// Everything [`crate::vm::CompiledSim`] needs at run time.
#[derive(Debug)]
pub(crate) struct Compiled {
    pub n_regs: usize,
    /// Initial state buffer: stable region `[0, n)` holds reset values,
    /// shadow region `[n, 2n)` is scratch for deferred writes.
    pub init: Vec<u64>,
    /// Unspecialized fallback program (and the only program when no
    /// primary FSM exists or its state space is too large to bucket).
    pub generic: StatePrograms,
    /// Per-state specialized programs, indexed by the primary FSM's value.
    pub by_state: Vec<StatePrograms>,
    /// Primary FSM register index, if bucketing is active.
    pub fsm: Option<usize>,
    pub waits: HashMap<(usize, u64), CompiledWait>,
    /// All FSM registers, sorted — the wait-scan order.
    pub fsm_regs: Vec<usize>,
    /// `is_fsm_reg[r]`: does a probe transition apply to register `r`?
    pub is_fsm_reg: Vec<bool>,
    /// Scratch registers needed by the largest program.
    pub scratch: usize,
}

/// Compiles `module` under `analysis`.
///
/// Validation runs first so that any dangling register/input reference is
/// a compile-time [`RtlError`], not a mid-job panic.
pub(crate) fn compile(module: &Module, analysis: &Analysis) -> Result<Compiled, RtlError> {
    module.validate()?;
    let n = module.regs.len();
    let mut init = vec![0u64; 2 * n];
    for (i, r) in module.regs.iter().enumerate() {
        init[i] = r.init;
    }
    let generic = StatePrograms {
        cycle: build_cycle_program(module, None),
        done: build_expr_program(&module.done, None),
    };
    // Mirror the interpreter's bucketing policy exactly: first detected
    // FSM, states bucketed 0..=max, flat fallback past 4096 states.
    let fsm = analysis.fsms.first().and_then(|f| {
        let max_state = f.states.iter().max().copied().unwrap_or(0);
        (max_state <= 4096).then_some((f.reg.index(), max_state))
    });
    let mut by_state = Vec::new();
    if let Some((freg, max_state)) = fsm {
        for s in 0..=max_state {
            let fold = Some((freg, s));
            by_state.push(StatePrograms {
                cycle: build_cycle_program(module, fold),
                done: build_expr_program(&module.done, fold),
            });
        }
    }
    let mut waits = HashMap::new();
    for w in &analysis.waits {
        // During the wait the FSM register provably holds `w.state`, so
        // bound/activity programs may fold it; the counter is *not*
        // folded — activity is evaluated after it jumps to its terminal
        // value, read live from the state buffer.
        let fold = Some((w.fsm.index(), w.state));
        waits.insert(
            (w.fsm.index(), w.state),
            CompiledWait {
                counter: w.counter.index(),
                dir: w.dir,
                bound: w.bound.as_ref().map(|b| build_expr_program(b, fold)),
                dps: w
                    .maybe_active_dps
                    .iter()
                    .map(|&di| (di, build_expr_program(&module.datapaths[di].active, fold)))
                    .collect(),
                serial: w.serial,
            },
        );
    }
    let mut fsm_regs: Vec<usize> = analysis.fsms.iter().map(|f| f.reg.index()).collect();
    fsm_regs.sort_unstable();
    fsm_regs.dedup();
    let mut is_fsm_reg = vec![false; n];
    for &f in &fsm_regs {
        is_fsm_reg[f] = true;
    }
    let scratch = by_state
        .iter()
        .chain(std::iter::once(&generic))
        .flat_map(|p| [p.cycle.scratch, p.done.scratch])
        .chain(waits.values().flat_map(|w| {
            w.bound
                .iter()
                .map(|b| b.scratch)
                .chain(w.dps.iter().map(|(_, p)| p.scratch))
        }))
        .max()
        .unwrap_or(0)
        .max(1) as usize;
    Ok(Compiled {
        n_regs: n,
        init,
        generic,
        by_state,
        fsm: fsm.map(|(f, _)| f),
        waits,
        fsm_regs,
        is_fsm_reg,
        scratch,
    })
}

fn build_expr_program(e: &Expr, fold: Option<(usize, u64)>) -> ExprProgram {
    let mut em = Emitter::new(fold);
    let root = em.dag.lower(e);
    let out = em.ensure(root);
    let konst = match em.code[..] {
        [Instr::Const { k, .. }] => Some(k),
        _ => None,
    };
    ExprProgram {
        code: em.code,
        out,
        konst,
        scratch: em.high_water,
    }
}

/// A register's surviving rule chain after specialization: each entry is
/// `(rule index, guard DAG node)`, with `None` marking an unconditional
/// (always-winning) guard.
type RuleChain = Vec<(usize, Option<u32>)>;

fn build_cycle_program(module: &Module, fold: Option<(usize, u64)>) -> CycleProgram {
    let mut em = Emitter::new(fold);
    let n = module.regs.len() as u32;

    // Lower every guard, pruning rules that provably cannot fire in this
    // bucket (guard folds to 0) and truncating chains at a rule whose
    // guard folds to a non-zero constant (it always wins; later rules are
    // dead).
    let mut chains: Vec<(usize, RuleChain)> = Vec::new();
    for (reg, r) in module.regs.iter().enumerate() {
        let mut chain = Vec::new();
        for (ri, rule) in r.rules.iter().enumerate() {
            let g = em.dag.lower(&rule.guard);
            match em.dag.konst(g) {
                Some(0) => continue,
                Some(_) => {
                    chain.push((ri, None));
                    break;
                }
                None => chain.push((ri, Some(g))),
            }
        }
        if !chain.is_empty() {
            chains.push((reg, chain));
        }
    }
    let mut dps: Vec<(usize, Option<u32>)> = Vec::new();
    for (di, dp) in module.datapaths.iter().enumerate() {
        let a = em.dag.lower(&dp.active);
        match em.dag.konst(a) {
            Some(0) => continue,
            Some(_) => dps.push((di, None)),
            None => dps.push((di, Some(a))),
        }
    }
    let advance_root = em.dag.lower(&module.advance);

    // Phase A: evaluate every shared root unconditionally, in topological
    // (node-id) order via recursive `ensure`. These scratch slots stay
    // live for the whole program.
    for (_, chain) in &chains {
        for &(_, g) in chain {
            if let Some(g) = g {
                em.ensure(g);
            }
        }
    }
    for &(_, a) in &dps {
        if let Some(a) = a {
            em.ensure(a);
        }
    }
    let advance = em.ensure(advance_root);

    // Phase B: first-fire-wins chains. Stores write the shadow region
    // (slot n + reg) and log (reg, rule) for the commit loop.
    for (reg, chain) in &chains {
        let reg = *reg;
        let mask = module.regs[reg].mask();
        let mut end_patches = Vec::new();
        for (k, &(ri, g)) in chain.iter().enumerate() {
            let jz_at = g.map(|g| {
                let src = em.slot_of(g);
                let at = em.code.len();
                em.code.push(Instr::Jz { src, to: u32::MAX });
                at
            });
            let cp = em.checkpoint();
            let v = em.dag.lower(&module.regs[reg].rules[ri].value);
            let src = em.ensure(v);
            em.code.push(Instr::Store {
                slot: n + reg as u32,
                reg: reg as u32,
                rule: ri as u32,
                src,
                mask,
            });
            em.rollback(cp);
            if k + 1 < chain.len() {
                let at = em.code.len();
                em.code.push(Instr::Jmp { to: u32::MAX });
                end_patches.push(at);
            }
            if let Some(at) = jz_at {
                let to = em.code.len() as u32;
                em.patch(at, to);
            }
        }
        let end = em.code.len() as u32;
        for at in end_patches {
            em.patch(at, end);
        }
    }

    // Datapath activity counting (reads phase-A slots).
    for &(di, a) in &dps {
        match a {
            None => em.code.push(Instr::IncDp { dp: di as u32 }),
            Some(a) => {
                let src = em.slot_of(a);
                let at = em.code.len();
                em.code.push(Instr::Jz { src, to: u32::MAX });
                em.code.push(Instr::IncDp { dp: di as u32 });
                let to = em.code.len() as u32;
                em.patch(at, to);
            }
        }
    }

    CycleProgram {
        code: em.code,
        advance,
        scratch: em.high_water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN",
            "EMIT",
            dur,
            E::stream_empty().is_zero(),
            "ctrl.cnt",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_compute("alu", fsm.in_state("RUN"), 500.0, 2.0, 100, 1);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    #[test]
    fn specialization_prunes_other_states_rules() {
        let m = toy();
        let a = Analysis::run(&m);
        let c = compile(&m, &a).unwrap();
        assert_eq!(c.by_state.len(), 3);
        // Every specialized program must be strictly smaller than the
        // generic one: `state == K` tests and foreign-state rules fold
        // away.
        for (s, p) in c.by_state.iter().enumerate() {
            assert!(
                p.cycle.code.len() < c.generic.cycle.code.len(),
                "state {s}: {} !< {}",
                p.cycle.code.len(),
                c.generic.cycle.code.len()
            );
        }
    }

    #[test]
    fn constant_folding_uses_runtime_semantics() {
        let mut d = Dag::new(None);
        // (7 / 0) folds to 0, matching BinOp::apply, not to a panic.
        let e = E::k(7).div(E::zero());
        let id = d.lower(e.expr());
        assert_eq!(d.konst(id), Some(0));
        // `0 & x` short-circuits without lowering x.
        let dead = E::zero() & E::stream_empty();
        let id = d.lower(dead.expr());
        assert_eq!(d.konst(id), Some(0));
        assert!(!d.nodes.contains(&Node::StreamEmpty));
    }

    #[test]
    fn cse_shares_repeated_subexpressions() {
        let mut d = Dag::new(None);
        let x = E::stream_empty() & E::stream_empty();
        d.lower(x.expr());
        // One StreamEmpty node, interned once.
        let count = d
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::StreamEmpty))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn compile_rejects_invalid_modules_up_front() {
        let mut m = toy();
        m.done = Expr::Reg(crate::module::RegId::new(99));
        let a = Analysis::run(&m);
        assert!(matches!(
            compile(&m, &a),
            Err(RtlError::DanglingReg { id: 99 })
        ));
    }

    #[test]
    fn waits_are_compiled_with_state_folds() {
        let m = toy();
        let a = Analysis::run(&m);
        let c = compile(&m, &a).unwrap();
        assert_eq!(c.waits.len(), 1);
        let w = c.waits.values().next().unwrap();
        assert_eq!(w.dir, WaitDir::Down);
        // The RUN-state ALU activity (`state == RUN`) folds to a constant
        // inside the wait, so its program is a single Const instruction.
        assert_eq!(w.dps.len(), 1);
        assert_eq!(w.dps[0].1.code.len(), 1);
    }
}
