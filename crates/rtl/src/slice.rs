//! Hardware slicing (§3.5): deriving the minimal feature-computing version
//! of an accelerator.
//!
//! The slicer performs three transformations, each mirroring a step of the
//! paper's flow:
//!
//! 1. **Wait-state removal** — wait states whose counter feeds no selected
//!    feature (and which no selected STC feature observes) are cut out of
//!    the FSM transition table entirely: incoming transitions are
//!    retargeted to the wait's exit state and the counter is deleted. This
//!    is the "modify the FSM transition table to remove the waiting
//!    behavior" optimization.
//! 2. **Backward dependence slicing** — starting from the registers the
//!    selected features are probed on (plus the `done`/`advance` cones so
//!    the slice still sequences itself), every register transitively read
//!    is kept; everything else is stripped of its logic.
//! 3. **Datapath pruning** — compute datapaths are always dropped (their
//!    latency is known from counters); serial datapaths survive only when
//!    their control lives on, because the slice genuinely has to re-do
//!    serial work such as entropy decoding.
//!
//! Register ids are preserved (dropped registers become inert), so probe
//! programs built for the original module remain valid for the slice — a
//! property the tests rely on.

use std::collections::{BTreeSet, HashMap};

use crate::analysis::Analysis;
use crate::error::RtlError;
use crate::expr::Expr;
use crate::instrument::{FeatureKind, FeatureSchema};
use crate::module::{DatapathKind, Module, RegId};

/// Options controlling the slicer.
#[derive(Debug, Clone, Copy)]
pub struct SliceOptions {
    /// Enables wait-state removal (step 1). Disabling it yields a slice
    /// that is small in area but as slow as the original accelerator — the
    /// inefficiency the paper calls out before introducing the FSM rewrite.
    pub rewrite_waits: bool,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            rewrite_waits: true,
        }
    }
}

/// What the slicer kept and removed.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Names of registers whose logic survived.
    pub kept_regs: Vec<String>,
    /// Names of registers reduced to inert placeholders.
    pub dropped_regs: Vec<String>,
    /// Names of datapath blocks kept (serial control-relevant logic).
    pub kept_datapaths: Vec<String>,
    /// Names of datapath blocks removed.
    pub dropped_datapaths: Vec<String>,
    /// Names of memories kept (control memories).
    pub kept_memories: Vec<String>,
    /// Wait states removed from the FSM transition table.
    pub removed_wait_states: usize,
}

/// Slices `module` down to the logic computing the `selected` feature
/// columns of `schema`.
///
/// # Errors
///
/// Returns [`RtlError::UnknownFeature`] if a selected index is out of
/// range, and [`RtlError::EmptySlice`] if nothing remains (degenerate
/// model with only a bias term still keeps the done/advance cone, so this
/// only fires for modules without control state).
pub fn slice(
    module: &Module,
    schema: &FeatureSchema,
    selected: &[usize],
    options: SliceOptions,
) -> Result<(Module, SliceReport), RtlError> {
    for &s in selected {
        if s >= schema.len() {
            return Err(RtlError::UnknownFeature { index: s });
        }
    }
    let analysis = Analysis::run(module);
    let mut sliced = module.clone();
    sliced.name = format!("{}.slice", module.name);

    // The registers feeding selected features.
    let feature_regs: BTreeSet<RegId> = schema.source_regs(selected).into_iter().collect();
    // States that selected STC features observe; waits on those states
    // cannot be removed without changing the features.
    let mut observed_states: BTreeSet<(RegId, u64)> = BTreeSet::new();
    for &s in selected {
        if let FeatureKind::Stc { fsm, src, dst } = schema.descs()[s].kind {
            observed_states.insert((fsm, src));
            observed_states.insert((fsm, dst));
        }
    }

    // -- Step 1: wait-state removal ------------------------------------
    let mut removed_wait_states = 0;
    if options.rewrite_waits {
        // Redirection map per FSM register: removed state -> exit state.
        let mut redirect: HashMap<(RegId, u64), u64> = HashMap::new();
        for w in &analysis.waits {
            if w.serial
                || feature_regs.contains(&w.counter)
                || observed_states.contains(&(w.fsm, w.state))
            {
                continue;
            }
            // The counter must be private to this wait: read only by its
            // own rules and the FSM's exit tests.
            if counter_has_other_readers(module, w.counter, w.fsm) {
                continue;
            }
            redirect.insert((w.fsm, w.state), w.exit_to);
            removed_wait_states += 1;
        }
        // Compress redirect chains (a removed wait exiting into another
        // removed wait).
        let keys: Vec<(RegId, u64)> = redirect.keys().copied().collect();
        for k in keys {
            let mut target = redirect[&k];
            let mut hops = 0;
            while let Some(&t) = redirect.get(&(k.0, target)) {
                target = t;
                hops += 1;
                assert!(hops <= redirect.len(), "redirect cycle");
            }
            redirect.insert(k, target);
        }
        // Apply: retarget incoming transitions, delete the wait's own
        // rules and its counter's rules.
        for ((fsm, state), target) in &redirect {
            let f = fsm.index();
            // Retarget rules assigning the removed state.
            for rule in &mut sliced.regs[f].rules {
                if rule.value == Expr::Const(*state) {
                    rule.value = Expr::Const(*target);
                }
            }
            // Remove the wait state's outgoing rules (guards pinned to it).
            sliced.regs[f].rules.retain(|rule| {
                !rule
                    .guard
                    .conjuncts()
                    .iter()
                    .any(|c| c.as_reg_eq_const() == Some((*fsm, *state)))
            });
        }
        // Delete counters of removed waits.
        for w in &analysis.waits {
            if redirect.contains_key(&(w.fsm, w.state)) {
                sliced.regs[w.counter.index()].rules.clear();
            }
        }
    }

    // -- Step 2: backward dependence closure ---------------------------
    let nregs = sliced.regs.len();
    let mut keep = vec![false; nregs];
    let mut work: Vec<RegId> = Vec::new();
    let seed = |e: &Expr, work: &mut Vec<RegId>| {
        let mut regs = Vec::new();
        e.collect_regs(&mut regs);
        work.extend(regs);
    };
    for &r in &feature_regs {
        work.push(r);
    }
    seed(&sliced.done, &mut work);
    seed(&sliced.advance, &mut work);
    while let Some(r) = work.pop() {
        if keep[r.index()] {
            continue;
        }
        keep[r.index()] = true;
        for rule in &sliced.regs[r.index()].rules {
            seed(&rule.guard, &mut work);
            seed(&rule.value, &mut work);
        }
    }
    if !keep.iter().any(|&k| k) {
        return Err(RtlError::EmptySlice);
    }

    let mut kept_regs = Vec::new();
    let mut dropped_regs = Vec::new();
    for (i, r) in sliced.regs.iter_mut().enumerate() {
        if keep[i] && !r.rules.is_empty() {
            kept_regs.push(r.name.clone());
        } else {
            if !module.regs[i].rules.is_empty() {
                dropped_regs.push(r.name.clone());
            }
            r.rules.clear();
        }
    }

    // -- Step 3: datapath and memory pruning ---------------------------
    let mut kept_datapaths = Vec::new();
    let mut dropped_datapaths = Vec::new();
    sliced.datapaths.retain(|dp| {
        let mut regs = Vec::new();
        dp.active.collect_regs(&mut regs);
        let deps_kept = regs.iter().all(|r| keep[r.index()]);
        if dp.kind == DatapathKind::Serial && deps_kept {
            kept_datapaths.push(dp.name.clone());
            true
        } else {
            dropped_datapaths.push(dp.name.clone());
            false
        }
    });
    let mut kept_memories = Vec::new();
    sliced.memories.retain(|m| {
        if m.control {
            kept_memories.push(m.name.clone());
            true
        } else {
            false
        }
    });

    sliced.validate()?;
    Ok((
        sliced,
        SliceReport {
            kept_regs,
            dropped_regs,
            kept_datapaths,
            dropped_datapaths,
            kept_memories,
            removed_wait_states,
        },
    ))
}

/// True if `counter` is read anywhere other than its own rules and the
/// rules of `fsm` (whose exit tests are removed together with the wait).
fn counter_has_other_readers(module: &Module, counter: RegId, fsm: RegId) -> bool {
    for (i, r) in module.regs.iter().enumerate() {
        let rid = RegId::new(i);
        if rid == counter || rid == fsm {
            continue;
        }
        for rule in &r.rules {
            if rule.guard.reads_reg(counter) || rule.value.reads_reg(counter) {
                return true;
            }
        }
    }
    for dp in &module.datapaths {
        if dp.active.reads_reg(counter) {
            return true;
        }
    }
    module.advance.reads_reg(counter) || module.done.reads_reg(counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};
    use crate::interp::{ExecMode, JobInput, Simulator};

    /// Toy with two timed stages: stage A's latency comes from the token
    /// (feature-worthy), stage B has a fixed latency (learnable from the
    /// intercept, so its wait can be sliced away).
    fn two_stage() -> Module {
        let mut b = ModuleBuilder::new("two");
        let dur = b.input("dur", 16);
        let fsm = b.fsm("ctrl", &["FETCH", "RUN_A", "GAP", "RUN_B", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "RUN_A",
            "GAP",
            dur,
            E::stream_empty().is_zero(),
            "cnt_a",
        );
        b.timed(&fsm, "GAP", "RUN_B", "EMIT", E::k(50), E::one(), "cnt_b");
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.datapath_compute("dp_a", fsm.in_state("RUN_A"), 5_000.0, 2.0, 400, 4);
        b.datapath_compute("dp_b", fsm.in_state("RUN_B"), 9_000.0, 3.0, 700, 8);
        b.memory("spm", 4096, false);
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn job(durs: &[u64]) -> JobInput {
        let mut j = JobInput::new(1);
        for &d in durs {
            j.push(&[d]);
        }
        j
    }

    fn schema_of(m: &Module) -> FeatureSchema {
        FeatureSchema::from_analysis(m, &Analysis::run(m))
    }

    fn aiv_a_index(s: &FeatureSchema) -> usize {
        s.descs()
            .iter()
            .position(|d| d.name == "aiv[cnt_a]")
            .unwrap()
    }

    #[test]
    fn slice_preserves_selected_features() {
        let m = two_stage();
        let s = schema_of(&m);
        let sel = vec![0, aiv_a_index(&s)];
        let (sl, report) = slice(&m, &s, &sel, SliceOptions::default()).unwrap();
        assert!(report.removed_wait_states >= 1, "RUN_B wait should go");
        let a_full = Analysis::run(&m);
        let p = s.probe_program(&a_full);
        let full_sim = Simulator::new(&m);
        let slice_sim = Simulator::new(&sl);
        let j = job(&[9, 3, 20]);
        let tf = full_sim.run(&j, ExecMode::FastForward, Some(&p)).unwrap();
        let ts = slice_sim.run(&j, ExecMode::Compressed, Some(&p)).unwrap();
        for &i in &sel {
            assert_eq!(tf.features[i], ts.features[i], "feature {i} must match");
        }
    }

    #[test]
    fn slice_is_much_faster() {
        let m = two_stage();
        let s = schema_of(&m);
        let sel = vec![0, aiv_a_index(&s)];
        let (sl, _) = slice(&m, &s, &sel, SliceOptions::default()).unwrap();
        let full_sim = Simulator::new(&m);
        let slice_sim = Simulator::new(&sl);
        let j = job(&[200, 300, 250]);
        let tf = full_sim.run(&j, ExecMode::FastForward, None).unwrap();
        let ts = slice_sim.run(&j, ExecMode::Compressed, None).unwrap();
        assert!(
            ts.cycles * 5 < tf.cycles,
            "slice {} vs full {}",
            ts.cycles,
            tf.cycles
        );
    }

    #[test]
    fn slice_drops_compute_datapaths_and_noncontrol_memories() {
        let m = two_stage();
        let s = schema_of(&m);
        let sel = vec![0, aiv_a_index(&s)];
        let (sl, report) = slice(&m, &s, &sel, SliceOptions::default()).unwrap();
        assert!(sl.datapaths.is_empty());
        assert!(sl.memories.is_empty());
        assert_eq!(report.dropped_datapaths.len(), 2);
    }

    #[test]
    fn wait_rewrite_respects_selected_stc() {
        let m = two_stage();
        let s = schema_of(&m);
        // Select the STC feature observing RUN_B: its wait must survive.
        let run_b = 3u64;
        let stc_b = s
            .descs()
            .iter()
            .position(|d| matches!(d.kind, FeatureKind::Stc { dst, .. } if dst == run_b))
            .unwrap();
        let (_, report) = slice(&m, &s, &[0, stc_b], SliceOptions::default()).unwrap();
        // cnt_a's wait may be removed, but RUN_B's may not.
        for w in &Analysis::run(&m).waits {
            if w.state == run_b {
                // ensured indirectly: report counts only removable waits
            }
        }
        assert!(report.removed_wait_states <= 1);
    }

    #[test]
    fn no_rewrite_option_keeps_timing() {
        let m = two_stage();
        let s = schema_of(&m);
        let sel = vec![0, aiv_a_index(&s)];
        let (sl, report) = slice(
            &m,
            &s,
            &sel,
            SliceOptions {
                rewrite_waits: false,
            },
        )
        .unwrap();
        assert_eq!(report.removed_wait_states, 0);
        // Without compression the un-rewritten slice takes as long as the
        // original, as the paper observes.
        let j = job(&[60, 10]);
        let tf = Simulator::new(&m)
            .run(&j, ExecMode::FastForward, None)
            .unwrap();
        let ts = Simulator::new(&sl)
            .run(&j, ExecMode::FastForward, None)
            .unwrap();
        assert_eq!(tf.cycles, ts.cycles);
    }

    #[test]
    fn unknown_feature_is_rejected() {
        let m = two_stage();
        let s = schema_of(&m);
        let err = slice(&m, &s, &[999], SliceOptions::default()).unwrap_err();
        assert!(matches!(err, RtlError::UnknownFeature { index: 999 }));
    }

    #[test]
    fn slice_cycles_equal_with_and_without_removed_counter_logic() {
        // The slice must still consume the whole stream and terminate.
        let m = two_stage();
        let s = schema_of(&m);
        let sel = vec![0, aiv_a_index(&s)];
        let (sl, _) = slice(&m, &s, &sel, SliceOptions::default()).unwrap();
        let j = job(&[7, 7, 7, 7]);
        let ts = Simulator::new(&sl)
            .run(&j, ExecMode::Compressed, None)
            .unwrap();
        assert_eq!(ts.tokens_consumed, 4);
    }
}
