//! Engine selection: compiled VM by default, interpreter as the oracle.
//!
//! Downstream consumers (the trace cache, the training profiler, the CLI)
//! do not care *how* a module executes — only that the trace comes back.
//! [`AnySim`] gives them one handle over both engines, and the process-wide
//! default ([`default_engine`]) makes the compiled path the standard one
//! while keeping `--interp` (and targeted tests) a one-line switch away.
//!
//! The compiled engine is behaviourally identical to the interpreter — the
//! differential suites enforce byte-equal traces — so flipping the default
//! is a pure performance decision, never a semantic one.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::analysis::Analysis;
use crate::error::RtlError;
use crate::instrument::ProbeProgram;
use crate::interp::{ExecMode, JobInput, JobTrace, Simulator};
use crate::module::Module;
use crate::vm::CompiledSim;

/// Which execution engine to use for a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// The bytecode VM (see [`crate::vm`]). Default.
    Compiled,
    /// The tree-walking reference interpreter (see [`crate::interp`]).
    Interp,
}

/// Process-wide default engine; 0 = Compiled, 1 = Interp.
static DEFAULT: AtomicU8 = AtomicU8::new(0);

/// The process-wide default engine (compiled unless overridden).
pub fn default_engine() -> SimEngine {
    match DEFAULT.load(Ordering::Relaxed) {
        1 => SimEngine::Interp,
        _ => SimEngine::Compiled,
    }
}

/// Overrides the process-wide default engine (the CLI's
/// `--compiled`/`--interp` flags land here). Tests that need a specific
/// engine should construct it explicitly instead of flipping the global.
pub fn set_default_engine(engine: SimEngine) {
    DEFAULT.store(
        match engine {
            SimEngine::Compiled => 0,
            SimEngine::Interp => 1,
        },
        Ordering::Relaxed,
    );
}

/// An execution engine for one module: either compiled or interpreted,
/// behind one `run` surface.
#[derive(Debug)]
pub enum AnySim<'m> {
    /// Compiled bytecode VM.
    Compiled(CompiledSim<'m>),
    /// Reference interpreter.
    Interp(Simulator<'m>),
}

impl<'m> AnySim<'m> {
    /// Builds the process-default engine for `module`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if the compiled engine is selected and the
    /// module fails compile-time validation.
    pub fn new(module: &'m Module) -> Result<AnySim<'m>, RtlError> {
        Self::with_engine(module, default_engine())
    }

    /// Builds a specific engine for `module`.
    ///
    /// # Errors
    ///
    /// As for [`AnySim::new`].
    pub fn with_engine(module: &'m Module, engine: SimEngine) -> Result<AnySim<'m>, RtlError> {
        let analysis = Analysis::run(module);
        Self::with_analysis(module, &analysis, engine)
    }

    /// Builds a specific engine from a precomputed [`Analysis`].
    ///
    /// # Errors
    ///
    /// As for [`AnySim::new`].
    pub fn with_analysis(
        module: &'m Module,
        analysis: &Analysis,
        engine: SimEngine,
    ) -> Result<AnySim<'m>, RtlError> {
        Ok(match engine {
            SimEngine::Compiled => AnySim::Compiled(CompiledSim::with_analysis(module, analysis)?),
            SimEngine::Interp => AnySim::Interp(Simulator::with_analysis(module, analysis)),
        })
    }

    /// Which engine this is.
    pub fn engine(&self) -> SimEngine {
        match self {
            AnySim::Compiled(_) => SimEngine::Compiled,
            AnySim::Interp(_) => SimEngine::Interp,
        }
    }

    /// The module being simulated.
    pub fn module(&self) -> &'m Module {
        match self {
            AnySim::Compiled(s) => s.module(),
            AnySim::Interp(s) => s.module(),
        }
    }

    /// Overrides the cycle budget; see
    /// [`crate::interp::Simulator::set_cycle_limit`].
    pub fn set_cycle_limit(&mut self, limit: u64) {
        match self {
            AnySim::Compiled(s) => s.set_cycle_limit(limit),
            AnySim::Interp(s) => s.set_cycle_limit(limit),
        }
    }

    /// Runs one job to completion; see [`crate::interp::Simulator::run`].
    ///
    /// # Errors
    ///
    /// As for [`crate::interp::Simulator::run`].
    pub fn run(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<JobTrace, RtlError> {
        match self {
            AnySim::Compiled(s) => s.run(job, mode, probes),
            AnySim::Interp(s) => s.run(job, mode, probes),
        }
    }

    /// Runs one job, also returning the final register file; see
    /// [`crate::interp::Simulator::run_with_state`].
    ///
    /// # Errors
    ///
    /// As for [`crate::interp::Simulator::run`].
    pub fn run_with_state(
        &self,
        job: &JobInput,
        mode: ExecMode,
        probes: Option<&ProbeProgram>,
    ) -> Result<(JobTrace, Vec<u64>), RtlError> {
        match self {
            AnySim::Compiled(s) => s.run_with_state(job, mode, probes),
            AnySim::Interp(s) => s.run_with_state(job, mode, probes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, E};

    fn tiny() -> Module {
        let mut b = ModuleBuilder::new("tiny");
        let r = b.reg("x", 8, 0);
        b.set(r, E::one(), r.e() + E::one());
        b.done_when(r.e().eq_(E::k(5)));
        b.build().unwrap()
    }

    #[test]
    fn default_engine_is_compiled() {
        // The global default may have been flipped by another test only if
        // something calls set_default_engine in-process; the library never
        // does, so the compiled default is observable here.
        let m = tiny();
        let sim = AnySim::new(&m).unwrap();
        assert_eq!(sim.engine(), SimEngine::Compiled);
    }

    #[test]
    fn both_engines_run_and_agree() {
        let m = tiny();
        let job = JobInput::new(0);
        let compiled = AnySim::with_engine(&m, SimEngine::Compiled).unwrap();
        let interp = AnySim::with_engine(&m, SimEngine::Interp).unwrap();
        assert_eq!(interp.engine(), SimEngine::Interp);
        assert_eq!(compiled.module().name, "tiny");
        let a = compiled.run_with_state(&job, ExecMode::Step, None).unwrap();
        let b = interp.run_with_state(&job, ExecMode::Step, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.1, vec![5]);
    }

    #[test]
    fn cycle_limit_passes_through() {
        let mut b = ModuleBuilder::new("hang");
        let r = b.reg("x", 8, 0);
        b.set(r, E::one(), r.e() + E::one());
        b.done_when(E::zero());
        let m = b.build().unwrap();
        for engine in [SimEngine::Compiled, SimEngine::Interp] {
            let mut sim = AnySim::with_engine(&m, engine).unwrap();
            sim.set_cycle_limit(50);
            let err = sim
                .run(&JobInput::new(0), ExecMode::Step, None)
                .unwrap_err();
            assert!(matches!(err, RtlError::CycleLimit { limit: 50 }));
        }
    }
}
