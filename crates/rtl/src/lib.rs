//! # predvfs-rtl
//!
//! An RTL-like substrate for modelling hardware accelerators, built for the
//! reproduction of *"Execution Time Prediction for Energy-Efficient
//! Hardware Accelerators"* (MICRO-48, 2015).
//!
//! Accelerators are described as FSMD designs — registers with guarded
//! synchronous update rules, finite state machines, counters, and annotated
//! datapath blocks — using the [`builder`] DSL. Everything the paper's
//! offline flow does to real RTL is then performed automatically on that
//! representation:
//!
//! * [`analysis`] mines the design for FSMs, counters, and wait states;
//! * [`instrument`] derives the feature schema (STC/IC/AIV/APV) and the
//!   runtime probes;
//! * [`interp`] executes jobs cycle-accurately, with exact fast-forwarding
//!   over wait states;
//! * [`vm`] compiles modules to flattened bytecode and executes them an
//!   order of magnitude faster, with the interpreter retained as the
//!   differential-testing oracle ([`engine`] selects between the two);
//! * [`slice()`] derives the minimal feature-computing hardware slice;
//! * [`area`] prices designs in ASIC area and FPGA resources.
//!
//! # Examples
//!
//! ```
//! use predvfs_rtl::builder::{ModuleBuilder, E};
//! use predvfs_rtl::interp::{ExecMode, JobInput, Simulator};
//!
//! // A toy accelerator: each token costs `dur` cycles of compute.
//! let mut b = ModuleBuilder::new("toy");
//! let dur = b.input("dur", 16);
//! let fsm = b.fsm("ctrl", &["FETCH", "RUN", "EMIT"]);
//! b.timed(&fsm, "FETCH", "RUN", "EMIT", dur, E::stream_empty().is_zero(), "cnt");
//! b.trans(&fsm, "EMIT", "FETCH", E::one());
//! b.advance_when(fsm.in_state("EMIT"));
//! b.done_when(fsm.in_state("FETCH") & E::stream_empty());
//! let module = b.build()?;
//!
//! let mut job = JobInput::new(1);
//! job.push(&[40]);
//! let trace = Simulator::new(&module).run(&job, ExecMode::FastForward, None)?;
//! assert!(trace.cycles > 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod area;
pub mod builder;
mod compile;
pub mod engine;
pub mod error;
pub mod expr;
pub mod format;
pub mod instrument;
pub mod interp;
pub mod module;
pub mod slice;
pub mod vm;
pub mod wcet;

pub use analysis::Analysis;
pub use area::{AreaBreakdown, AsicAreaModel, FpgaResourceModel, FpgaResources};
pub use builder::{ModuleBuilder, E};
pub use engine::{default_engine, set_default_engine, AnySim, SimEngine};
pub use error::RtlError;
pub use format::{from_text, to_text, ParseError};
pub use instrument::{FeatureDesc, FeatureKind, FeatureSchema, ProbeProgram};
pub use interp::{ExecMode, JobInput, JobTrace, Simulator};
pub use module::{Datapath, DatapathKind, InputId, Memory, Module, RegId, Register};
pub use slice::{slice, SliceOptions, SliceReport};
pub use vm::CompiledSim;
pub use wcet::{wcet, WcetBound};
