//! Structural representation of an accelerator: registers with guarded
//! update rules, datapath blocks, memories, and the input-token schema.
//!
//! A [`Module`] is the unit everything else operates on: the interpreter
//! executes it cycle by cycle, the analyses mine it for FSMs and counters,
//! the instrumentation pass attaches probes to it, and the slicer prunes it
//! down to the feature-computing subset.

use std::collections::HashMap;
use std::fmt;

use crate::error::RtlError;
use crate::expr::{Expr, ExprDisplay};

/// Identifier of a register within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(u32);

impl RegId {
    /// Creates an id from a raw index.
    pub fn new(index: usize) -> Self {
        RegId(index as u32)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an input-token field within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(u32);

impl InputId {
    /// Creates an id from a raw index.
    pub fn new(index: usize) -> Self {
        InputId(index as u32)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A guarded synchronous assignment: `reg <= value when guard`.
///
/// Rules are evaluated in declaration order each cycle against the *current*
/// register values; the first rule whose guard is non-zero provides the next
/// value. If no rule fires the register holds.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRule {
    /// Enable condition.
    pub guard: Expr,
    /// Next value when enabled.
    pub value: Expr,
}

/// A hardware register.
#[derive(Debug, Clone)]
pub struct Register {
    /// Hierarchical name, e.g. `"parser.state"`.
    pub name: String,
    /// Bit width (1..=64); stored values are masked to this width.
    pub width: u32,
    /// Reset value.
    pub init: u64,
    /// Guarded update rules, in priority order.
    pub rules: Vec<UpdateRule>,
}

impl Register {
    /// Returns the mask corresponding to this register's width.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// Classifies a datapath block for the slicer and the wait-state analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathKind {
    /// Pure computation (arithmetic pipelines, filters, transforms). Its
    /// latency is fully described by the counter that times it, so the
    /// slicer removes it and wait-state compression may skip it.
    Compute,
    /// Serial logic with cycle-by-cycle data dependence (entropy decoding,
    /// scan/binning passes). Its states can never be compressed: even a
    /// slice must spend the cycles, although the simulator may still
    /// fast-forward over them because nothing observable changes.
    Serial,
}

/// A datapath block: an area/energy annotation attached to an activity
/// condition.
///
/// Datapath internals are abstracted away — the paper's insight is that
/// execution time is determined by *control* decisions, with the datapath
/// contributing fixed-latency work timed by counters. What the model needs
/// from the datapath is its cost: silicon area, FPGA resources, and dynamic
/// energy per active cycle.
#[derive(Debug, Clone)]
pub struct Datapath {
    /// Hierarchical name, e.g. `"inter.interp_pipeline"`.
    pub name: String,
    /// Non-zero when the block is doing work this cycle.
    pub active: Expr,
    /// Behavioural class; see [`DatapathKind`].
    pub kind: DatapathKind,
    /// ASIC area in square micrometres.
    pub area_um2: f64,
    /// Relative dynamic energy drawn per active cycle (arbitrary unit,
    /// consistent within a module).
    pub energy_per_cycle: f64,
    /// FPGA resource usage: look-up tables.
    pub luts: u32,
    /// FPGA resource usage: DSP blocks.
    pub dsps: u32,
}

/// An internal scratchpad memory. Contents are not simulated (job data
/// arrives via the token stream, mirroring a DMA-filled scratchpad); the
/// memory contributes area, BRAM, and leakage.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Hierarchical name.
    pub name: String,
    /// Capacity in bytes.
    pub bytes: u64,
    /// True if the memory holds control metadata the slice still needs
    /// (e.g. a bitstream buffer feeding the parser).
    pub control: bool,
}

/// Declaration of one field of the input token.
#[derive(Debug, Clone)]
pub struct InputField {
    /// Field name, e.g. `"mb_type"`.
    pub name: String,
    /// Bit width of the field.
    pub width: u32,
}

/// A complete accelerator design.
#[derive(Debug, Clone)]
pub struct Module {
    /// Design name, e.g. `"h264"`.
    pub name: String,
    /// Registers, indexed by [`RegId`].
    pub regs: Vec<Register>,
    /// Datapath blocks.
    pub datapaths: Vec<Datapath>,
    /// Scratchpad memories.
    pub memories: Vec<Memory>,
    /// Input token schema, indexed by [`InputId`].
    pub inputs: Vec<InputField>,
    /// Non-zero when the design consumes the head token this cycle.
    pub advance: Expr,
    /// Non-zero when the job is complete.
    pub done: Expr,
}

impl Module {
    /// Looks up a register by name.
    pub fn reg_by_name(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(RegId::new)
    }

    /// Looks up a register by name, reporting a structured error when it
    /// is absent.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownRegister`] if no register is named
    /// `name`.
    pub fn require_reg(&self, name: &str) -> Result<RegId, RtlError> {
        self.reg_by_name(name)
            .ok_or_else(|| RtlError::UnknownRegister {
                module: self.name.clone(),
                name: name.to_owned(),
            })
    }

    /// Returns the name of a register.
    pub fn reg_name(&self, id: RegId) -> &str {
        &self.regs[id.index()].name
    }

    /// Returns a displayable rendering of an expression using this module's
    /// register and input names.
    pub fn display_expr<'a>(&self, expr: &'a Expr) -> ExprDisplay<'a> {
        ExprDisplay {
            expr,
            reg_names: self.regs.iter().map(|r| r.name.clone()).collect(),
            input_names: self.inputs.iter().map(|i| i.name.clone()).collect(),
        }
    }

    /// Total number of update rules across all registers.
    pub fn rule_count(&self) -> usize {
        self.regs.iter().map(|r| r.rules.len()).sum()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if a register has zero/oversized width, a rule
    /// references an out-of-range register or input, names collide, or the
    /// `advance`/`done` expressions reference unknown ids.
    pub fn validate(&self) -> Result<(), RtlError> {
        let mut seen = HashMap::new();
        for (i, r) in self.regs.iter().enumerate() {
            if r.width == 0 || r.width > 64 {
                return Err(RtlError::BadWidth {
                    name: r.name.clone(),
                    width: r.width,
                });
            }
            if r.init & !r.mask() != 0 {
                return Err(RtlError::InitOutOfRange {
                    name: r.name.clone(),
                    init: r.init,
                    width: r.width,
                });
            }
            if let Some(prev) = seen.insert(r.name.clone(), i) {
                return Err(RtlError::DuplicateName {
                    name: r.name.clone(),
                    first: prev,
                    second: i,
                });
            }
        }
        let check = |e: &Expr| -> Result<(), RtlError> {
            let mut regs = Vec::new();
            e.collect_regs(&mut regs);
            for r in regs {
                if r.index() >= self.regs.len() {
                    return Err(RtlError::DanglingReg { id: r.index() });
                }
            }
            let mut ins = Vec::new();
            e.collect_inputs(&mut ins);
            for i in ins {
                if i.index() >= self.inputs.len() {
                    return Err(RtlError::DanglingInput { id: i.index() });
                }
            }
            Ok(())
        };
        for r in &self.regs {
            for rule in &r.rules {
                check(&rule.guard)?;
                check(&rule.value)?;
            }
        }
        for d in &self.datapaths {
            check(&d.active)?;
        }
        check(&self.advance)?;
        check(&self.done)?;
        Ok(())
    }

    /// Registers read anywhere in the design (guards, values, datapath
    /// activity, `advance`, `done`).
    pub fn live_regs(&self) -> Vec<bool> {
        let mut live = vec![false; self.regs.len()];
        let mut scratch = Vec::new();
        let mark = |e: &Expr, live: &mut Vec<bool>, scratch: &mut Vec<RegId>| {
            scratch.clear();
            e.collect_regs(scratch);
            for r in scratch.iter() {
                live[r.index()] = true;
            }
        };
        for r in &self.regs {
            for rule in &r.rules {
                mark(&rule.guard, &mut live, &mut scratch);
                mark(&rule.value, &mut live, &mut scratch);
            }
        }
        for d in &self.datapaths {
            mark(&d.active, &mut live, &mut scratch);
        }
        mark(&self.advance, &mut live, &mut scratch);
        mark(&self.done, &mut live, &mut scratch);
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn tiny() -> Module {
        Module {
            name: "tiny".into(),
            regs: vec![Register {
                name: "a".into(),
                width: 8,
                init: 0,
                rules: vec![UpdateRule {
                    guard: Expr::Const(1),
                    value: Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Reg(RegId::new(0))),
                        Box::new(Expr::Const(1)),
                    ),
                }],
            }],
            datapaths: vec![],
            memories: vec![],
            inputs: vec![],
            advance: Expr::Const(0),
            done: Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::Reg(RegId::new(0))),
                Box::new(Expr::Const(10)),
            ),
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_width() {
        let mut m = tiny();
        m.regs[0].width = 0;
        assert!(matches!(m.validate(), Err(RtlError::BadWidth { .. })));
    }

    #[test]
    fn validate_rejects_oversized_init() {
        let mut m = tiny();
        m.regs[0].init = 256;
        assert!(matches!(m.validate(), Err(RtlError::InitOutOfRange { .. })));
    }

    #[test]
    fn validate_rejects_dangling_reg() {
        let mut m = tiny();
        m.done = Expr::Reg(RegId::new(7));
        assert!(matches!(m.validate(), Err(RtlError::DanglingReg { .. })));
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut m = tiny();
        let dup = m.regs[0].clone();
        m.regs.push(dup);
        assert!(matches!(m.validate(), Err(RtlError::DuplicateName { .. })));
    }

    #[test]
    fn mask_and_lookup() {
        let m = tiny();
        assert_eq!(m.regs[0].mask(), 0xff);
        assert_eq!(m.reg_by_name("a"), Some(RegId::new(0)));
        assert_eq!(m.reg_by_name("zz"), None);
        assert_eq!(m.require_reg("a"), Ok(RegId::new(0)));
        assert_eq!(
            m.require_reg("zz"),
            Err(RtlError::UnknownRegister {
                module: "tiny".into(),
                name: "zz".into(),
            })
        );
        assert_eq!(m.rule_count(), 1);
    }

    #[test]
    fn live_regs_marks_done_reference() {
        let m = tiny();
        assert_eq!(m.live_regs(), vec![true]);
    }
}
