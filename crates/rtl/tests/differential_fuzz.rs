//! Property-based differential testing: the compiled VM against the
//! interpreter oracle on randomly generated FSMD designs.
//!
//! The generator builds small but structurally varied accelerators with the
//! same [`ModuleBuilder`] idioms the benchmark designs use — chains of
//! 1..=3 wait states with input-derived, offset, constant, or scaled
//! durations, optional compute/serial datapaths per stage, and an optional
//! accumulator register that is neither an FSM nor a counter. Every design
//! runs under both engines in all three execution modes with probes
//! attached, and the full observable surface must match bit for bit:
//! [`JobTrace`] (cycles, per-datapath activity, token counts, and the
//! floating-point feature stream) and the final flattened register file.
//!
//! The same harness also checks the mode-equivalence law on the random
//! designs: `FastForward` and `Compressed` must agree with `Step` on the
//! final register state.

use proptest::prelude::*;

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{Analysis, CompiledSim, ExecMode, FeatureSchema, JobInput, Module, Simulator};

/// One wait stage of the generated pipeline.
#[derive(Debug, Clone, Copy)]
struct Stage {
    /// Duration expression: 0 = input field, 1 = input + k, 2 = constant k,
    /// 3 = input * 2.
    dur: u8,
    /// Attached datapath: 0 = none, 1 = compute, 2 = serial.
    dp: u8,
}

fn build(stages: &[Stage], with_acc: bool) -> Module {
    let mut b = ModuleBuilder::new("fuzz");
    let a = b.input("a", 8);
    let mut names: Vec<String> = vec!["FETCH".to_owned()];
    for i in 0..stages.len() {
        names.push(format!("W{i}"));
    }
    names.push("EMIT".to_owned());
    let state_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let fsm = b.fsm("ctrl", &state_refs);
    let mut counters: Vec<predvfs_rtl::builder::Reg> = Vec::new();
    for (i, stage) in stages.iter().enumerate() {
        let this = format!("W{i}");
        let next = if i + 1 == stages.len() {
            "EMIT".to_owned()
        } else {
            format!("W{}", i + 1)
        };
        let c = b.wait_state(&fsm, &this, &next, &format!("c{i}"));
        let k = 2 + i as u64;
        let dur = match stage.dur {
            0 => a.clone(),
            1 => a.clone() + E::k(k),
            2 => E::k(k),
            _ => a.clone() * E::k(2),
        };
        if i == 0 {
            b.enter_wait(&fsm, "FETCH", "W0", c, dur, E::stream_empty().is_zero());
        } else {
            let prev = counters[i - 1];
            b.set(
                c,
                fsm.in_state(&format!("W{}", i - 1)) & prev.e().eq_(E::zero()),
                dur,
            );
        }
        match stage.dp {
            0 => {}
            1 => b.datapath_compute(&format!("d{i}"), fsm.in_state(&this), 100.0, 1.0, 10, 1),
            _ => b.datapath_serial(&format!("d{i}"), fsm.in_state(&this), 50.0, 0.5, 5, 0),
        }
        counters.push(c);
    }
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    if with_acc {
        // Neither an FSM nor a counter: exercises plain-register commits
        // and specialization of a multi-term value expression.
        let acc = b.reg("acc", 32, 0);
        b.set(acc, fsm.in_state("EMIT"), acc.e() + a.clone() + E::one());
    }
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());
    b.build().expect("generated module must be valid")
}

fn job(vals: &[u64]) -> JobInput {
    let mut j = JobInput::new(1);
    for &v in vals {
        j.push(&[v]);
    }
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vm_matches_interpreter_on_random_designs(
        stages in prop::collection::vec(
            (0..4u8, 0..3u8).prop_map(|(dur, dp)| Stage { dur, dp }),
            1..4,
        ),
        with_acc in any::<bool>(),
        vals in prop::collection::vec(0..40u64, 0..6),
    ) {
        let m = build(&stages, with_acc);
        let analysis = Analysis::run(&m);
        let schema = FeatureSchema::from_analysis(&m, &analysis);
        let probes = schema.probe_program(&analysis);
        let interp = Simulator::with_analysis(&m, &analysis);
        let vm = CompiledSim::with_analysis(&m, &analysis).unwrap();
        let j = job(&vals);
        let mut final_states = Vec::new();
        for mode in [ExecMode::Step, ExecMode::FastForward, ExecMode::Compressed] {
            let (want_trace, want_state) =
                interp.run_with_state(&j, mode, Some(&probes)).unwrap();
            let (got_trace, got_state) =
                vm.run_with_state(&j, mode, Some(&probes)).unwrap();
            prop_assert_eq!(
                &want_trace, &got_trace,
                "trace diverged in {:?} (stages={:?}, acc={}, vals={:?})",
                mode, &stages, with_acc, &vals
            );
            prop_assert_eq!(
                &want_state, &got_state,
                "final state diverged in {:?}", mode
            );
            final_states.push(want_state);
        }
        // Mode-equivalence law: compression rewrites timing, never state.
        prop_assert_eq!(&final_states[0], &final_states[1], "Step vs FastForward");
        prop_assert_eq!(&final_states[0], &final_states[2], "Step vs Compressed");
    }

    #[test]
    fn unprobed_runs_also_agree(
        dur in 0..4u8,
        dp in 0..3u8,
        vals in prop::collection::vec(0..200u64, 0..5),
    ) {
        // Single-stage designs with wider duration range, no probes: the
        // probe-free fast path through both engines.
        let m = build(&[Stage { dur, dp }], false);
        let interp = Simulator::new(&m);
        let vm = CompiledSim::new(&m).unwrap();
        let j = job(&vals);
        for mode in [ExecMode::Step, ExecMode::FastForward, ExecMode::Compressed] {
            let want = interp.run_with_state(&j, mode, None).unwrap();
            let got = vm.run_with_state(&j, mode, None).unwrap();
            prop_assert_eq!(want, got, "mode {:?}", mode);
        }
    }
}
