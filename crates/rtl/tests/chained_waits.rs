//! Integration tests of the chained-wait idiom (counter loads on another
//! wait's exit cycle), multi-entry waits, count-up waits, and the pretty
//! printer — the corners the benchmark accelerators lean on.

use predvfs_rtl::analysis::WaitState;
use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{
    slice, Analysis, ExecMode, FeatureSchema, JobInput, Module, Simulator, SliceOptions,
};

/// Three chained waits with no routing states in between.
fn chain() -> Module {
    let mut b = ModuleBuilder::new("chain");
    let a = b.input("a", 8);
    let fsm = b.fsm("ctrl", &["FETCH", "W0", "W1", "W2", "EMIT"]);
    let c0 = b.wait_state(&fsm, "W0", "W1", "c0");
    b.enter_wait(
        &fsm,
        "FETCH",
        "W0",
        c0,
        a.clone() + E::k(2),
        E::stream_empty().is_zero(),
    );
    let c1 = b.wait_state(&fsm, "W1", "W2", "c1");
    b.set(
        c1,
        fsm.in_state("W0") & c0.e().eq_(E::zero()),
        a.clone() * E::k(2),
    );
    let c2 = b.wait_state(&fsm, "W2", "EMIT", "c2");
    b.set(c2, fsm.in_state("W1") & c1.e().eq_(E::zero()), E::k(7));
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());
    b.build().unwrap()
}

fn job(vals: &[u64]) -> JobInput {
    let mut j = JobInput::new(1);
    for &v in vals {
        j.push(&[v]);
    }
    j
}

#[test]
fn all_chained_states_are_waits() {
    let m = chain();
    let a = Analysis::run(&m);
    let waits: Vec<&WaitState> = a.waits.iter().collect();
    assert_eq!(waits.len(), 3, "W0, W1, W2 must all be recognized");
}

#[test]
fn chained_fast_forward_is_exact() {
    let m = chain();
    let sim = Simulator::new(&m);
    for vals in [&[0u64][..], &[1], &[5, 9], &[200, 0, 3]] {
        let a = sim.run(&job(vals), ExecMode::Step, None).unwrap();
        let b = sim.run(&job(vals), ExecMode::FastForward, None).unwrap();
        assert_eq!(a.cycles, b.cycles, "vals={vals:?}");
    }
}

#[test]
fn chained_counters_record_correct_features() {
    let m = chain();
    let an = Analysis::run(&m);
    let schema = FeatureSchema::from_analysis(&m, &an);
    let probes = schema.probe_program(&an);
    let sim = Simulator::new(&m);
    let t = sim
        .run(&job(&[10, 4]), ExecMode::FastForward, Some(&probes))
        .unwrap();
    let feat = |n: &str| {
        let i = schema.descs().iter().position(|d| d.name == n).unwrap();
        t.features[i]
    };
    assert_eq!(feat("ic[c0]"), 2.0);
    assert_eq!(feat("aiv[c0]"), (12 + 6) as f64);
    assert_eq!(feat("aiv[c1]"), (20 + 8) as f64);
    assert_eq!(feat("aiv[c2]"), 14.0);
}

#[test]
fn chained_wait_slice_preserves_features_and_timing_order() {
    let m = chain();
    let an = Analysis::run(&m);
    let schema = FeatureSchema::from_analysis(&m, &an);
    // Select only c1's AIV; c0 feeds the chain (its exit loads c1) so the
    // slicer must keep enough structure for identical feature values.
    let aiv_c1 = schema
        .descs()
        .iter()
        .position(|d| d.name == "aiv[c1]")
        .unwrap();
    let (sl, _) = slice(&m, &schema, &[aiv_c1], SliceOptions::default()).unwrap();
    let probes = schema.probe_program(&an);
    let j = job(&[33, 7, 1]);
    let full = Simulator::new(&m)
        .run(&j, ExecMode::FastForward, Some(&probes))
        .unwrap();
    let slim = Simulator::new(&sl)
        .run(&j, ExecMode::Compressed, Some(&probes))
        .unwrap();
    assert_eq!(full.features[aiv_c1], slim.features[aiv_c1]);
    assert!(slim.cycles < full.cycles);
}

#[test]
fn multi_entry_wait_counts_all_arms() {
    let mut b = ModuleBuilder::new("multi");
    let kind = b.input("kind", 1);
    let fsm = b.fsm("ctrl", &["FETCH", "ROUTE", "W", "EMIT"]);
    b.trans(&fsm, "FETCH", "ROUTE", E::stream_empty().is_zero());
    let w = b.wait_state(&fsm, "W", "EMIT", "w");
    b.enter_wait(&fsm, "ROUTE", "W", w, E::k(5), kind.clone().is_zero());
    b.enter_wait(&fsm, "ROUTE", "W", w, E::k(11), kind.nonzero());
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());
    let m = b.build().unwrap();
    let an = Analysis::run(&m);
    assert_eq!(an.waits.len(), 1);
    let schema = FeatureSchema::from_analysis(&m, &an);
    let probes = schema.probe_program(&an);
    let sim = Simulator::new(&m);
    let mut j = JobInput::new(1);
    j.push(&[0]);
    j.push(&[1]);
    j.push(&[1]);
    let t = sim.run(&j, ExecMode::FastForward, Some(&probes)).unwrap();
    let aiv = schema
        .descs()
        .iter()
        .position(|d| d.name == "aiv[w]")
        .unwrap();
    assert_eq!(t.features[aiv], (5 + 11 + 11) as f64);
}

#[test]
fn count_up_wait_fast_forward_matches_step() {
    let mut b = ModuleBuilder::new("up");
    let n = b.input("n", 10);
    let fsm = b.fsm("ctrl", &["FETCH", "W", "EMIT"]);
    let c = b.reg("c", 16, 0);
    b.set(
        c,
        fsm.in_state("FETCH") & E::stream_empty().is_zero(),
        E::zero(),
    );
    b.set(c, fsm.in_state("W") & c.e().lt(n.clone()), c.e() + E::one());
    b.trans(&fsm, "FETCH", "W", E::stream_empty().is_zero());
    b.trans(&fsm, "W", "EMIT", c.e().eq_(n));
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());
    let m = b.build().unwrap();
    let an = Analysis::run(&m);
    assert_eq!(an.waits.len(), 1, "count-up wait must be detected");
    let sim = Simulator::new(&m);
    for vals in [&[0u64][..], &[1], &[100, 3]] {
        let a = sim.run(&job(vals), ExecMode::Step, None).unwrap();
        let b2 = sim.run(&job(vals), ExecMode::FastForward, None).unwrap();
        assert_eq!(a.cycles, b2.cycles, "vals={vals:?}");
    }
    // APV of a count-up counter records the bound it climbed to.
    let schema = FeatureSchema::from_analysis(&m, &an);
    let probes = schema.probe_program(&an);
    let t = sim
        .run(&job(&[42, 17]), ExecMode::FastForward, Some(&probes))
        .unwrap();
    let apv = schema
        .descs()
        .iter()
        .position(|d| d.name == "apv[c]")
        .unwrap();
    assert_eq!(t.features[apv], 42.0, "apv sees the previous bound");
}

#[test]
fn display_expr_renders_names() {
    let m = chain();
    let f = m.reg_by_name("ctrl.state").unwrap();
    let rule = &m.regs[f.index()].rules[0];
    let s = format!("{}", m.display_expr(&rule.guard));
    assert!(s.contains("ctrl.state"), "rendered guard: {s}");
}
