//! Integration: the ordering relations the paper's figures rely on hold
//! for every benchmark at reduced scale.

use predvfs_accel::all;
use predvfs_sim::{Experiment, ExperimentConfig, Platform, Scheme};

fn experiments() -> Vec<Experiment> {
    all()
        .into_iter()
        .map(|b| Experiment::prepare(b, ExperimentConfig::quick(Platform::Asic)).unwrap())
        .collect()
}

#[test]
fn energy_and_miss_orderings_hold() {
    for e in experiments() {
        let base = e.run(Scheme::Baseline).unwrap();
        let pred = e.run(Scheme::Prediction).unwrap();
        let noovh = e.run(Scheme::PredictionNoOverhead).unwrap();
        let oracle = e.run(Scheme::Oracle).unwrap();
        let boost = e.run(Scheme::PredictionBoost).unwrap();

        // Baseline never misses and spends the most.
        assert_eq!(base.misses(), 0, "{}", e.bench.name);
        assert!(
            pred.total_energy_pj() < base.total_energy_pj(),
            "{}: prediction must save energy",
            e.bench.name
        );
        // Oracle is the lower bound; removing overheads approaches it.
        assert!(
            oracle.total_energy_pj() <= noovh.total_energy_pj() * 1.02,
            "{}",
            e.bench.name
        );
        assert!(
            noovh.total_energy_pj() <= pred.total_energy_pj() * 1.001,
            "{}",
            e.bench.name
        );
        assert_eq!(oracle.misses(), 0, "{}: oracle never misses", e.bench.name);
        assert_eq!(
            noovh.misses(),
            0,
            "{}: without overheads prediction never misses",
            e.bench.name
        );
        // Boost strictly reduces misses at negligible energy cost.
        assert!(boost.misses() <= pred.misses(), "{}", e.bench.name);
        assert!(
            boost.total_energy_pj() <= pred.total_energy_pj() * 1.05,
            "{}",
            e.bench.name
        );
    }
}

#[test]
fn table_scheme_is_conservative() {
    for e in experiments() {
        let base = e.run(Scheme::Baseline).unwrap();
        let table = e.run(Scheme::Table).unwrap();
        // The coarse table can't beat fine-grained prediction, but must
        // still be no worse than the baseline.
        assert!(
            table.total_energy_pj() <= base.total_energy_pj() * 1.001,
            "{}",
            e.bench.name
        );
    }
}

#[test]
fn longer_deadlines_save_more_energy() {
    let e = Experiment::prepare(
        predvfs_accel::by_name("cjpeg").unwrap(),
        ExperimentConfig::quick(Platform::Asic),
    )
    .unwrap();
    // Quick workloads are small; use deadlines tight enough that the
    // short one forces mid/high levels.
    let short = e.run_with_deadline(Scheme::Prediction, 2.5e-3).unwrap();
    let long = e.run_with_deadline(Scheme::Prediction, 25e-3).unwrap();
    assert!(long.total_energy_pj() < short.total_energy_pj());
}

#[test]
fn fpga_and_asic_agree_qualitatively() {
    let bench = predvfs_accel::by_name("md").unwrap();
    let asic = Experiment::prepare(bench, ExperimentConfig::quick(Platform::Asic)).unwrap();
    let fpga = Experiment::prepare(bench, ExperimentConfig::quick(Platform::Fpga)).unwrap();
    for e in [&asic, &fpga] {
        let base = e.run(Scheme::Baseline).unwrap();
        let pred = e.run(Scheme::Prediction).unwrap();
        assert!(pred.total_energy_pj() < base.total_energy_pj());
    }
}
