//! Property-based integration tests: for randomly generated pipeline
//! accelerators and random jobs, the simulator's fast-forward optimization
//! is exact, instrumentation is timing-neutral, and slices compute
//! identical features while running no slower than compression promises.

use proptest::prelude::*;

use predvfs_rtl::builder::{ModuleBuilder, E};
use predvfs_rtl::{
    slice, Analysis, ExecMode, FeatureSchema, JobInput, Module, Simulator, SliceOptions,
};

/// One pipeline stage of a generated accelerator.
#[derive(Debug, Clone)]
struct StageSpec {
    /// Cycles = `scale * field + offset`.
    scale: u64,
    offset: u64,
    /// Which token field drives the latency.
    field: usize,
    /// Whether the stage is serial (uncompressible).
    serial: bool,
}

fn build_pipeline(stages: &[StageSpec], fields: usize) -> Module {
    let mut b = ModuleBuilder::new("generated");
    let inputs: Vec<E> = (0..fields).map(|i| b.input(&format!("f{i}"), 16)).collect();
    let mut names = vec!["FETCH".to_owned()];
    for i in 0..stages.len() {
        names.push(format!("S{i}_W"));
    }
    names.push("EMIT".to_owned());
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let fsm = b.fsm("ctrl", &name_refs);

    let mut prev_ctr = None;
    for (i, s) in stages.iter().enumerate() {
        let wait = format!("S{i}_W");
        let next = if i + 1 < stages.len() {
            format!("S{}_W", i + 1)
        } else {
            "EMIT".to_owned()
        };
        let ctr = b.wait_state(&fsm, &wait, &next, &format!("c{i}"));
        let dur = inputs[s.field].clone() * E::k(s.scale) + E::k(s.offset);
        match prev_ctr {
            None => b.enter_wait(&fsm, "FETCH", &wait, ctr, dur, E::stream_empty().is_zero()),
            Some(prev) => {
                let prev: predvfs_rtl::builder::Reg = prev;
                b.set(
                    ctr,
                    fsm.in_state(&format!("S{}_W", i - 1)) & prev.e().eq_(E::zero()),
                    dur,
                );
            }
        }
        if s.serial {
            b.datapath_serial(&format!("dp{i}"), fsm.in_state(&wait), 100.0, 0.5, 50, 0);
        } else {
            b.datapath_compute(&format!("dp{i}"), fsm.in_state(&wait), 1_000.0, 1.0, 200, 2);
        }
        prev_ctr = Some(ctr);
    }
    b.trans(&fsm, "EMIT", "FETCH", E::one());
    b.advance_when(fsm.in_state("EMIT"));
    b.done_when(fsm.in_state("FETCH") & E::stream_empty());
    b.build().expect("generated module is well-formed")
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (0u64..4, 0u64..40, 0usize..2, any::<bool>()).prop_map(|(scale, offset, field, serial)| {
        StageSpec {
            scale,
            offset,
            field,
            serial,
        }
    })
}

fn job_strategy(fields: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..300, fields..=fields), 0..12)
}

fn to_job(tokens: &[Vec<u64>], fields: usize) -> JobInput {
    let mut j = JobInput::new(fields);
    for t in tokens {
        j.push(t);
    }
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_forward_is_exact(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
    ) {
        let module = build_pipeline(&stages, 2);
        let job = to_job(&tokens, 2);
        let sim = Simulator::new(&module);
        let a = sim.run(&job, ExecMode::Step, None).unwrap();
        let b = sim.run(&job, ExecMode::FastForward, None).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.dp_active, b.dp_active);
        prop_assert_eq!(a.tokens_consumed, b.tokens_consumed);
    }

    #[test]
    fn probes_are_timing_neutral_and_mode_invariant(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
    ) {
        let module = build_pipeline(&stages, 2);
        let job = to_job(&tokens, 2);
        let analysis = Analysis::run(&module);
        let schema = FeatureSchema::from_analysis(&module, &analysis);
        let probes = schema.probe_program(&analysis);
        let sim = Simulator::new(&module);
        let plain = sim.run(&job, ExecMode::FastForward, None).unwrap();
        let probed = sim.run(&job, ExecMode::FastForward, Some(&probes)).unwrap();
        prop_assert_eq!(plain.cycles, probed.cycles);
        let stepped = sim.run(&job, ExecMode::Step, Some(&probes)).unwrap();
        let compressed = sim.run(&job, ExecMode::Compressed, Some(&probes)).unwrap();
        prop_assert_eq!(&probed.features, &stepped.features);
        prop_assert_eq!(&probed.features, &compressed.features);
    }

    #[test]
    fn slices_preserve_selected_features(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
        selector in any::<u64>(),
    ) {
        let module = build_pipeline(&stages, 2);
        let job = to_job(&tokens, 2);
        let analysis = Analysis::run(&module);
        let schema = FeatureSchema::from_analysis(&module, &analysis);
        // Pick a pseudo-random non-empty subset of features.
        let selected: Vec<usize> = (0..schema.len())
            .filter(|i| (selector >> (i % 60)) & 1 == 1)
            .collect();
        let selected = if selected.is_empty() { vec![0] } else { selected };
        let (sliced, _) = slice(&module, &schema, &selected, SliceOptions::default()).unwrap();
        let probes = schema.probe_program(&analysis);
        let full = Simulator::new(&module)
            .run(&job, ExecMode::FastForward, Some(&probes))
            .unwrap();
        let slim = Simulator::new(&sliced)
            .run(&job, ExecMode::Compressed, Some(&probes))
            .unwrap();
        for &c in &selected {
            prop_assert_eq!(full.features[c], slim.features[c], "feature {}", c);
        }
        prop_assert!(slim.cycles <= full.cycles);
        prop_assert_eq!(slim.tokens_consumed, full.tokens_consumed);
    }

    #[test]
    fn serial_cycles_survive_compression(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
    ) {
        let module = build_pipeline(&stages, 2);
        let job = to_job(&tokens, 2);
        let sim = Simulator::new(&module);
        let full = sim.run(&job, ExecMode::FastForward, None).unwrap();
        let comp = sim.run(&job, ExecMode::Compressed, None).unwrap();
        // Serial datapath active cycles are identical in both modes: a
        // slice cannot skip serial work.
        let analysis = Analysis::run(&module);
        for w in &analysis.waits {
            if w.serial {
                for &dp in &w.maybe_active_dps {
                    prop_assert_eq!(full.dp_active[dp], comp.dp_active[dp]);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The static WCET bound must dominate every observed execution.
    #[test]
    fn wcet_bound_is_sound(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
    ) {
        let module = build_pipeline(&stages, 2);
        let job = to_job(&tokens, 2);
        let bound = predvfs_rtl::wcet(&module).unwrap();
        let t = Simulator::new(&module)
            .run(&job, ExecMode::FastForward, None)
            .unwrap();
        prop_assert!(
            t.cycles <= bound.job_cycles(job.len()),
            "observed {} > wcet {}",
            t.cycles,
            bound.job_cycles(job.len())
        );
    }

    /// The textual format round-trips losslessly for generated designs.
    #[test]
    fn rtl_text_round_trips(
        stages in prop::collection::vec(stage_strategy(), 1..5),
        tokens in job_strategy(2),
    ) {
        let module = build_pipeline(&stages, 2);
        let text = predvfs_rtl::to_text(&module);
        let back = predvfs_rtl::from_text(&text).unwrap();
        prop_assert_eq!(&predvfs_rtl::to_text(&back), &text);
        // Same behaviour, not just same text.
        let job = to_job(&tokens, 2);
        let a = Simulator::new(&module).run(&job, ExecMode::FastForward, None).unwrap();
        let b = Simulator::new(&back).run(&job, ExecMode::FastForward, None).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
    }
}
