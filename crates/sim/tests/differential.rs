//! The compiled VM against the interpreter oracle on all seven paper
//! benchmarks.
//!
//! This is the contract the engine switch rests on: for every benchmark
//! accelerator, every execution mode, and probed as well as unprobed runs,
//! the bytecode VM must produce *byte-identical* results to the reference
//! interpreter — the full [`JobTrace`] (cycles, per-datapath activity,
//! token counts, and the STC/IC/AIV/APV feature stream, which accumulates
//! in `f64` and therefore checks floating-point order too) and the final
//! flattened register file. CI fails if any benchmark diverges.

use predvfs_accel::{all, Benchmark, WorkloadSize};
use predvfs_rtl::{
    Analysis, AnySim, CompiledSim, ExecMode, FeatureSchema, JobInput, SimEngine, Simulator,
};

/// Compares both engines on `jobs`, probed and unprobed, in `mode`.
fn assert_engines_agree(bench: &Benchmark, jobs: &[JobInput], mode: ExecMode) {
    let module = (bench.build)();
    let analysis = Analysis::run(&module);
    let schema = FeatureSchema::from_analysis(&module, &analysis);
    let probes = schema.probe_program(&analysis);
    let interp = Simulator::with_analysis(&module, &analysis);
    let vm = CompiledSim::with_analysis(&module, &analysis)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.name));
    for (ji, job) in jobs.iter().enumerate() {
        for probes in [None, Some(&probes)] {
            let (want_trace, want_state) = interp
                .run_with_state(job, mode, probes)
                .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", bench.name));
            let (got_trace, got_state) = vm
                .run_with_state(job, mode, probes)
                .unwrap_or_else(|e| panic!("{}: VM failed: {e}", bench.name));
            assert_eq!(
                want_trace,
                got_trace,
                "{}: trace diverged (job {ji}, mode {mode:?}, probed={})",
                bench.name,
                probes.is_some()
            );
            assert_eq!(
                want_state, got_state,
                "{}: final register state diverged (job {ji}, mode {mode:?})",
                bench.name
            );
        }
    }
}

/// A few test jobs per benchmark; Step mode gets the smallest prefix to
/// stay affordable (it pays every wait cycle).
fn jobs_for(bench: &Benchmark, n: usize) -> Vec<JobInput> {
    let mut w = (bench.workloads)(11, WorkloadSize::Quick);
    w.test.truncate(n);
    w.test
}

#[test]
fn compiled_matches_interpreter_fast_forward_all_benchmarks() {
    for bench in all() {
        let jobs = jobs_for(&bench, 4);
        assert_engines_agree(&bench, &jobs, ExecMode::FastForward);
    }
}

#[test]
fn compiled_matches_interpreter_compressed_all_benchmarks() {
    for bench in all() {
        let jobs = jobs_for(&bench, 4);
        assert_engines_agree(&bench, &jobs, ExecMode::Compressed);
    }
}

#[test]
fn compiled_matches_interpreter_step_all_benchmarks() {
    // Step replays every cycle, so keep to one job per benchmark; this is
    // the strongest check (no skip path on either side).
    for bench in all() {
        let jobs = jobs_for(&bench, 1);
        assert_engines_agree(&bench, &jobs, ExecMode::Step);
    }
}

#[test]
fn modes_agree_on_final_register_state_all_benchmarks() {
    // Mode-equivalence (both engines): FastForward and Compressed rewrite
    // timing, never architectural state — the full flattened register
    // file at `done` matches Step's exactly.
    for bench in all() {
        let module = (bench.build)();
        for engine in [SimEngine::Compiled, SimEngine::Interp] {
            let sim = AnySim::with_engine(&module, engine).unwrap();
            for job in jobs_for(&bench, 1) {
                let (_, step) = sim.run_with_state(&job, ExecMode::Step, None).unwrap();
                let (_, ff) = sim
                    .run_with_state(&job, ExecMode::FastForward, None)
                    .unwrap();
                let (_, comp) = sim
                    .run_with_state(&job, ExecMode::Compressed, None)
                    .unwrap();
                assert_eq!(step.len(), module.regs.len());
                assert_eq!(step, ff, "{}/{engine:?}: FastForward state", bench.name);
                assert_eq!(step, comp, "{}/{engine:?}: Compressed state", bench.name);
            }
        }
    }
}

#[test]
fn experiment_path_uses_the_compiled_engine_by_default() {
    // The trace cache and profiler construct engines via AnySim::new, which
    // follows the process default — compiled unless --interp flips it.
    let module = (all()[0].build)();
    let sim = AnySim::new(&module).unwrap();
    assert_eq!(sim.engine(), SimEngine::Compiled);
}
