//! Integration: the complete offline + online pipeline for every
//! registered benchmark, at reduced workload scale.

use predvfs::{
    train, DvfsController, DvfsModel, JobContext, PredictiveController, SliceFlavor,
    SlicePredictor, TrainerConfig,
};
use predvfs_accel::{all, WorkloadSize};
use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};
use predvfs_rtl::{Analysis, AsicAreaModel, ExecMode, FeatureSchema, Simulator, SliceOptions};

fn dvfs() -> DvfsModel {
    let curve = AlphaPowerCurve::default();
    DvfsModel::new(
        Ladder::asic(&curve).with_boost(&curve, 1.08),
        SwitchingModel::off_chip(),
    )
}

#[test]
fn every_benchmark_trains_slices_and_predicts() {
    for bench in all() {
        let module = (bench.build)();
        let w = (bench.workloads)(11, WorkloadSize::Quick);
        let model = train::train(&module, &w.train, &TrainerConfig::default())
            .unwrap_or_else(|e| panic!("{}: training failed: {e}", bench.name));
        assert!(
            !model.selected_nonbias().is_empty(),
            "{}: no features selected",
            bench.name
        );
        let predictor =
            SlicePredictor::generate(&module, &model, SliceOptions::default(), SliceFlavor::Rtl)
                .unwrap_or_else(|e| panic!("{}: slicing failed: {e}", bench.name));

        // Slice must be smaller than the full design.
        let area = AsicAreaModel::default();
        let full = area.area(&module).total_um2();
        let sliced = area.area(predictor.module()).total_um2();
        assert!(
            sliced < full * 0.6,
            "{}: slice {sliced:.0} vs full {full:.0}",
            bench.name
        );

        // Predictions on held-out jobs must be accurate and conservative.
        let sim = Simulator::new(&module);
        let runner = predictor.runner();
        let mut under = 0;
        for job in w.test.iter().take(10) {
            let run = runner.run(job).unwrap();
            let predicted = model.predict_cycles(&run.features);
            let actual = sim.run(job, ExecMode::FastForward, None).unwrap().cycles as f64;
            let rel = (predicted - actual) / actual;
            assert!(
                rel.abs() < 0.25,
                "{}: prediction off by {:.1}%",
                bench.name,
                rel * 100.0
            );
            // djpeg's hidden Huffman drain guarantees small signed
            // residuals; only count under-predictions big enough to
            // threaten the 5 % margin.
            if rel < -0.03 {
                under += 1;
            }
            assert!(
                run.cycles < actual * 0.6,
                "{}: slice not fast enough ({} vs {actual})",
                bench.name,
                run.cycles
            );
        }
        assert!(under <= 3, "{}: {under}/10 under-predictions", bench.name);
    }
}

#[test]
fn every_benchmark_has_mineable_structure() {
    for bench in all() {
        let module = (bench.build)();
        let a = Analysis::run(&module);
        assert_eq!(a.fsms.len(), 1, "{}: one control FSM", bench.name);
        assert!(
            a.counters.len() >= 2,
            "{}: expected counters, got {}",
            bench.name,
            a.counters.len()
        );
        assert!(!a.waits.is_empty(), "{}: expected wait states", bench.name);
        let schema = FeatureSchema::from_analysis(&module, &a);
        assert!(
            schema.len() >= 10,
            "{}: schema too small ({})",
            bench.name,
            schema.len()
        );
    }
}

#[test]
fn controller_meets_deadlines_on_quick_workloads() {
    for bench in all() {
        let module = (bench.build)();
        let w = (bench.workloads)(5, WorkloadSize::Quick);
        let model = train::train(&module, &w.train, &TrainerConfig::default()).unwrap();
        let predictor =
            SlicePredictor::generate(&module, &model, SliceOptions::default(), SliceFlavor::Rtl)
                .unwrap();
        let f_hz = bench.f_nominal_mhz * 1e6;
        let dvfs = dvfs();
        let mut controller = PredictiveController::new(dvfs.clone(), f_hz, &predictor, &model);
        let sim = Simulator::new(&module);
        let mut misses = 0;
        let n = w.test.len().min(20);
        for (i, job) in w.test.iter().take(n).enumerate() {
            let d = controller
                .decide(&JobContext {
                    job,
                    deadline_s: 16.7e-3,
                    index: i,
                })
                .unwrap();
            let point = dvfs.point(d.choice);
            let trace = sim.run(job, ExecMode::FastForward, None).unwrap();
            let wall =
                trace.cycles as f64 / (f_hz * point.freq_ratio) + d.slice_cycles / f_hz + 100e-6;
            if wall > 16.7e-3 {
                misses += 1;
            }
            controller.observe(trace.cycles);
        }
        assert!(
            misses <= 1,
            "{}: {misses}/{n} quick-workload misses",
            bench.name
        );
    }
}
