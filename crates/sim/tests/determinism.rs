//! Integration: the whole stack is deterministic for a fixed seed —
//! workloads, training, slicing, and predictions.

use predvfs::{train, TrainerConfig};
use predvfs_accel::{by_name, WorkloadSize};

#[test]
fn training_is_reproducible() {
    let bench = by_name("cjpeg").unwrap();
    let run = || {
        let module = (bench.build)();
        let w = (bench.workloads)(77, WorkloadSize::Quick);
        let model = train::train(&module, &w.train, &TrainerConfig::default()).unwrap();
        model.coeffs().to_vec()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give identical coefficients");
}

#[test]
fn different_seeds_give_different_workloads() {
    let bench = by_name("aes").unwrap();
    let w1 = (bench.workloads)(1, WorkloadSize::Quick);
    let w2 = (bench.workloads)(2, WorkloadSize::Quick);
    let sizes1: Vec<usize> = w1.test.iter().map(|j| j.len()).collect();
    let sizes2: Vec<usize> = w2.test.iter().map(|j| j.len()).collect();
    assert_ne!(sizes1, sizes2);
}

#[test]
fn train_and_test_sets_differ() {
    for name in ["h264", "md", "sha"] {
        let bench = by_name(name).unwrap();
        let w = (bench.workloads)(42, WorkloadSize::Quick);
        assert_ne!(
            w.train.first(),
            w.test.first(),
            "{name}: train/test must be distinct draws"
        );
    }
}
