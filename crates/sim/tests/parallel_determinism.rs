//! The parallel engine must be *bit-identical* to the serial path:
//! preparation (parallel trace simulation + cached leakage calibration)
//! and `run_all` (parallel per-scheme fan-out) may not perturb a single
//! float, on either platform.
//!
//! `predvfs_par::with_threads(1)` forces every mapped closure onto the
//! calling thread (a plain serial loop), so serial/parallel pairs run the
//! exact same code with and without the thread pool.

use predvfs_accel::by_name;
use predvfs_sim::{Experiment, ExperimentConfig, Platform, Scheme};

fn prepare(name: &str, platform: Platform, threads: usize) -> Experiment {
    let bench = by_name(name).expect("registered benchmark");
    predvfs_par::with_threads(threads, || {
        Experiment::prepare(bench, ExperimentConfig::quick(platform)).expect("prepare")
    })
}

fn assert_experiments_match(serial: &Experiment, parallel: &Experiment, what: &str) {
    assert_eq!(
        serial.test_traces, parallel.test_traces,
        "{what}: test traces must be bit-identical"
    );
    assert_eq!(
        serial.train_cycles, parallel.train_cycles,
        "{what}: training cycles must be bit-identical"
    );
    assert_eq!(
        serial.model.coeffs(),
        parallel.model.coeffs(),
        "{what}: fitted coefficients must be bit-identical"
    );
}

#[test]
fn parallel_prepare_matches_serial_on_both_platforms() {
    for platform in [Platform::Asic, Platform::Fpga] {
        for name in ["sha", "aes"] {
            let serial = prepare(name, platform, 1);
            let parallel = prepare(name, platform, 4);
            assert_experiments_match(&serial, &parallel, name);
        }
    }
}

#[test]
fn run_all_matches_serial_runs_on_both_platforms() {
    for platform in [Platform::Asic, Platform::Fpga] {
        for name in ["sha", "aes"] {
            let e = prepare(name, platform, 1);
            let serial: Vec<_> = predvfs_par::with_threads(1, || {
                Scheme::ALL
                    .iter()
                    .map(|&s| e.run(s).expect("serial run"))
                    .collect()
            });
            let parallel =
                predvfs_par::with_threads(4, || e.run_all(&Scheme::ALL).expect("parallel run"));
            assert_eq!(parallel.len(), Scheme::ALL.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(
                    s, p,
                    "{name}/{:?}: per-job records must be bit-identical",
                    platform
                );
            }
        }
    }
}

#[test]
fn repeated_parallel_runs_are_reproducible() {
    let e = prepare("sha", Platform::Asic, 4);
    let a = predvfs_par::with_threads(4, || e.run_all(&Scheme::ALL).unwrap());
    let b = predvfs_par::with_threads(4, || e.run_all(&Scheme::ALL).unwrap());
    assert_eq!(a, b, "two identical parallel runs must agree exactly");
}
