//! Parameter sweeps: the deadline sensitivity study (Fig. 15) and helper
//! aggregation across benchmarks.

use crate::experiment::{Experiment, Scheme};
use crate::metrics::SchemeResult;

/// One point of a deadline sweep, averaged across benchmarks.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Deadline as a multiple of the reference deadline.
    pub deadline_factor: f64,
    /// Per-scheme `(normalized energy %, miss %)`.
    pub by_scheme: Vec<(Scheme, f64, f64)>,
}

/// Runs the Fig. 15 deadline sweep over prepared experiments.
///
/// For each factor, every scheme runs on every benchmark with the scaled
/// deadline; energies are normalized to that benchmark's *baseline at the
/// same deadline* and averaged across benchmarks, as in the paper.
///
/// # Errors
///
/// Propagates controller failures.
pub fn deadline_sweep(
    experiments: &[Experiment],
    schemes: &[Scheme],
    factors: &[f64],
) -> Result<Vec<SweepPoint>, predvfs::CoreError> {
    let mut out = Vec::with_capacity(factors.len());
    for &factor in factors {
        // One baseline per benchmark at this deadline, computed in
        // parallel and shared by every scheme (runs are deterministic,
        // so sharing is value-identical to recomputing per scheme).
        let baselines = predvfs_par::par_try_map(experiments, |e| {
            e.run_with_deadline(Scheme::Baseline, e.config().deadline_s * factor)
        })?;
        let mut by_scheme = Vec::with_capacity(schemes.len());
        for &scheme in schemes {
            // Per-benchmark fan-out; accumulation stays serial and in
            // experiment order so the averages are bit-identical to the
            // serial loop.
            let results = predvfs_par::par_try_map(experiments, |e| {
                e.run_with_deadline(scheme, e.config().deadline_s * factor)
            })?;
            let mut energy_acc = 0.0;
            let mut miss_acc = 0.0;
            for (res, base) in results.iter().zip(&baselines) {
                energy_acc += res.normalized_energy_pct(base);
                miss_acc += res.miss_pct();
            }
            let n = experiments.len().max(1) as f64;
            by_scheme.push((scheme, energy_acc / n, miss_acc / n));
        }
        out.push(SweepPoint {
            deadline_factor: factor,
            by_scheme,
        });
    }
    Ok(out)
}

/// Averages `(normalized energy %, miss %)` across a set of per-benchmark
/// results (the "average" bars of Fig. 11/16).
pub fn average(results: &[(SchemeResult, SchemeResult)]) -> (f64, f64) {
    if results.is_empty() {
        return (0.0, 0.0);
    }
    let mut energy = 0.0;
    let mut miss = 0.0;
    for (scheme, baseline) in results {
        energy += scheme.normalized_energy_pct(baseline);
        miss += scheme.miss_pct();
    }
    let n = results.len() as f64;
    (energy / n, miss / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, Platform};
    use predvfs_accel::by_name;

    #[test]
    fn sweep_energy_monotone_in_deadline_for_prediction() {
        let e = Experiment::prepare(
            by_name("sha").unwrap(),
            ExperimentConfig::quick(Platform::Asic),
        )
        .unwrap();
        let points = deadline_sweep(
            std::slice::from_ref(&e),
            &[Scheme::Prediction],
            &[0.8, 1.0, 1.4],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        let energies: Vec<f64> = points.iter().map(|p| p.by_scheme[0].1).collect();
        assert!(
            energies[0] >= energies[1] && energies[1] >= energies[2],
            "energy must fall with longer deadlines: {energies:?}"
        );
    }

    #[test]
    fn average_combines_pairs() {
        use crate::metrics::{JobRecord, SchemeResult};
        use predvfs::LevelChoice;
        let rec = |e: f64, m: bool| JobRecord {
            cycles: 1,
            predicted_cycles: None,
            choice: LevelChoice::Regular(0),
            volts: 1.0,
            freq_ratio: 1.0,
            exec_s: 0.0,
            slice_s: 0.0,
            switch_s: 0.0,
            energy_pj: e,
            slice_energy_pj: 0.0,
            missed: m,
        };
        let mk = |e: f64, m: bool| SchemeResult {
            scheme: "x".into(),
            records: vec![rec(e, m)],
        };
        let (energy, miss) = average(&[
            (mk(50.0, false), mk(100.0, false)),
            (mk(80.0, true), mk(100.0, false)),
        ]);
        assert!((energy - 65.0).abs() < 1e-9);
        assert!((miss - 50.0).abs() < 1e-9);
    }
}
