//! Per-scheme result accounting: energy, deadline misses, and the per-job
//! records behind every figure.

use predvfs::LevelChoice;

/// Everything recorded about one job under one scheme.
///
/// `PartialEq` compares floats exactly — determinism tests rely on the
/// parallel and serial paths being *bit*-identical, not merely close.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Actual execution cycles of the job (frequency-independent).
    pub cycles: u64,
    /// The controller's execution-time prediction, if it made one.
    pub predicted_cycles: Option<f64>,
    /// Chosen operating point.
    pub choice: LevelChoice,
    /// Supply voltage of the chosen point.
    pub volts: f64,
    /// Frequency ratio of the chosen point.
    pub freq_ratio: f64,
    /// Time the accelerator spent executing, seconds.
    pub exec_s: f64,
    /// Time the predictor slice spent, seconds.
    pub slice_s: f64,
    /// DVFS transition time charged, seconds.
    pub switch_s: f64,
    /// Total energy charged to the job (accelerator + slice), pJ.
    pub energy_pj: f64,
    /// Slice share of `energy_pj`.
    pub slice_energy_pj: f64,
    /// True when the job finished after its deadline.
    pub missed: bool,
}

impl JobRecord {
    /// Wall-clock completion time, seconds.
    pub fn total_s(&self) -> f64 {
        self.exec_s + self.slice_s + self.switch_s
    }
}

/// Aggregated outcome of running one scheme over a job sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// Scheme name ("baseline", "pid", "prediction", ...).
    pub scheme: String,
    /// Per-job records, in execution order.
    pub records: Vec<JobRecord>,
}

impl SchemeResult {
    /// Number of jobs.
    pub fn jobs(&self) -> usize {
        self.records.len()
    }

    /// Total energy over all jobs, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.records.iter().map(|r| r.energy_pj).sum()
    }

    /// Number of deadline misses.
    pub fn misses(&self) -> usize {
        self.records.iter().filter(|r| r.missed).count()
    }

    /// Deadline miss rate in percent.
    pub fn miss_pct(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            100.0 * self.misses() as f64 / self.records.len() as f64
        }
    }

    /// Energy normalized to a baseline result, in percent.
    ///
    /// # Panics
    ///
    /// Panics if the baseline consumed zero energy.
    pub fn normalized_energy_pct(&self, baseline: &SchemeResult) -> f64 {
        let base = baseline.total_energy_pj();
        assert!(base > 0.0, "baseline energy must be positive");
        100.0 * self.total_energy_pj() / base
    }

    /// Mean slice-time share of the deadline, in percent.
    pub fn mean_slice_time_pct(&self, deadline_s: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let s: f64 = self.records.iter().map(|r| r.slice_s).sum();
        100.0 * s / (deadline_s * self.records.len() as f64)
    }

    /// Mean slice-energy share of total job energy, in percent.
    pub fn mean_slice_energy_pct(&self) -> f64 {
        let total = self.total_energy_pj();
        if total == 0.0 {
            return 0.0;
        }
        let s: f64 = self.records.iter().map(|r| r.slice_energy_pj).sum();
        100.0 * s / total
    }

    /// Relative prediction errors `(pred − actual)/actual` for jobs with
    /// predictions, in percent.
    pub fn prediction_errors_pct(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| {
                r.predicted_cycles
                    .map(|p| 100.0 * (p - r.cycles as f64) / r.cycles as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(energy: f64, missed: bool) -> JobRecord {
        JobRecord {
            cycles: 1000,
            predicted_cycles: Some(1100.0),
            choice: LevelChoice::Regular(0),
            volts: 0.625,
            freq_ratio: 0.48,
            exec_s: 1e-3,
            slice_s: 1e-4,
            switch_s: 0.0,
            energy_pj: energy,
            slice_energy_pj: energy * 0.02,
            missed,
        }
    }

    fn result(name: &str, energies: &[f64], misses: &[bool]) -> SchemeResult {
        SchemeResult {
            scheme: name.into(),
            records: energies
                .iter()
                .zip(misses)
                .map(|(&e, &m)| record(e, m))
                .collect(),
        }
    }

    #[test]
    fn aggregates() {
        let base = result("baseline", &[100.0, 100.0], &[false, false]);
        let pred = result("prediction", &[60.0, 70.0], &[false, true]);
        assert_eq!(pred.jobs(), 2);
        assert_eq!(pred.misses(), 1);
        assert!((pred.miss_pct() - 50.0).abs() < 1e-12);
        assert!((pred.normalized_energy_pct(&base) - 65.0).abs() < 1e-12);
        assert_eq!(pred.prediction_errors_pct().len(), 2);
        assert!((pred.records[0].total_s() - 1.1e-3).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_benign() {
        let r = SchemeResult {
            scheme: "x".into(),
            records: vec![],
        };
        assert_eq!(r.miss_pct(), 0.0);
        assert_eq!(r.mean_slice_time_pct(1.0), 0.0);
        assert_eq!(r.mean_slice_energy_pct(), 0.0);
        assert!(r.prediction_errors_pct().is_empty());
    }

    #[test]
    fn slice_shares() {
        let r = result("prediction", &[100.0], &[false]);
        assert!((r.mean_slice_energy_pct() - 2.0).abs() < 1e-9);
        assert!((r.mean_slice_time_pct(1e-3) - 10.0).abs() < 1e-9);
    }
}
