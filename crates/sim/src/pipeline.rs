//! Multi-accelerator pipelines sharing one deadline (an extension in the
//! direction of Nachiappan et al. \[18\], which the paper cites as the
//! motivation for considering multiple devices together).
//!
//! A frame flows through several accelerators in sequence (decrypt →
//! verify → decode…), and the *frame* has the deadline, not any single
//! stage. With per-stage execution-time predictions the budget can be
//! split **proportionally to predicted work**, which (by the convexity of
//! the energy/frequency trade-off) beats a static even split: slow stages
//! get more time instead of being forced to high voltage while fast
//! stages idle at low utilization.

use predvfs::{DvfsModel, ExecTimeModel, LevelChoice, SlicePredictor};
use predvfs_power::EnergyModel;
use predvfs_rtl::{JobInput, JobTrace};

use crate::metrics::{JobRecord, SchemeResult};

/// How the frame budget is divided among stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Each of the `n` stages gets `deadline / n`.
    Static,
    /// Stages get budget proportional to their predicted execution time.
    Proportional,
}

/// One stage of a frame pipeline.
pub struct PipelineStage<'p> {
    /// Stage label.
    pub name: &'p str,
    /// The stage's generated predictor.
    pub predictor: &'p SlicePredictor,
    /// The stage's fitted model.
    pub model: &'p ExecTimeModel,
    /// The stage's energy model.
    pub energy: &'p EnergyModel,
    /// The stage's DVFS ladder/margins.
    pub dvfs: DvfsModel,
}

/// Result of running a pipeline: per-stage records plus frame misses.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Per-stage accounting, in stage order.
    pub stages: Vec<SchemeResult>,
    /// Frames whose total time exceeded the frame deadline.
    pub frame_misses: usize,
    /// Number of frames processed.
    pub frames: usize,
}

impl PipelineResult {
    /// Total energy across all stages, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.stages.iter().map(SchemeResult::total_energy_pj).sum()
    }

    /// Frame miss rate in percent.
    pub fn frame_miss_pct(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            100.0 * self.frame_misses as f64 / self.frames as f64
        }
    }

    /// Mean energy per frame across all stages, pJ (0 for an empty
    /// stream — an idle pipeline consumed nothing, not NaN).
    pub fn mean_frame_energy_pj(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_energy_pj() / self.frames as f64
        }
    }
}

/// Runs a frame pipeline: for each frame, every stage's slice predicts its
/// work, the budget is split per `policy`, each stage picks its own level,
/// and the frame's wall-clock time is the sum of stage times.
///
/// `jobs[k][i]` is the input of stage `k` for frame `i`; `traces[k][i]` the
/// corresponding execution trace at nominal frequency.
///
/// # Errors
///
/// Propagates slice-execution failures.
///
/// # Panics
///
/// Panics if stage/job/trace dimensions disagree or no stages are given.
pub fn run_pipeline(
    stages: &[PipelineStage<'_>],
    jobs: &[Vec<JobInput>],
    traces: &[Vec<JobTrace>],
    frame_deadline_s: f64,
    policy: SplitPolicy,
) -> Result<PipelineResult, predvfs::CoreError> {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    assert_eq!(stages.len(), jobs.len());
    assert_eq!(stages.len(), traces.len());
    let frames = jobs[0].len();
    for (j, t) in jobs.iter().zip(traces) {
        assert_eq!(j.len(), frames, "all stages see every frame");
        assert_eq!(t.len(), frames);
    }

    let runners: Vec<_> = stages.iter().map(|s| s.predictor.runner()).collect();
    let mut records: Vec<Vec<JobRecord>> = vec![Vec::with_capacity(frames); stages.len()];
    let mut frame_misses = 0;
    let mut prev_level: Vec<usize> = stages
        .iter()
        .map(|s| s.dvfs.ladder.nominal_index())
        .collect();

    // 1. Every stage predicts its work for every frame. Predictions are
    // pure per-frame work (slice execution + a dot product), so frames
    // fan out in parallel; the accounting below carries the sequential
    // `prev_level` switching state and stays serial, consuming the
    // predictions in frame order — bit-identical to the fused loop.
    let frame_ids: Vec<usize> = (0..frames).collect();
    let per_frame = predvfs_par::par_try_map(&frame_ids, |&frame| {
        let mut predictions = Vec::with_capacity(stages.len());
        let mut slice_times = Vec::with_capacity(stages.len());
        for (k, stage) in stages.iter().enumerate() {
            let run = runners[k].run(&jobs[k][frame])?;
            let pred = stage.model.predict_cycles(&run.features);
            let f_hz = stage.energy.f_nominal_hz();
            slice_times.push((run.cycles, run.cycles / f_hz, run.dp_active));
            predictions.push(pred / f_hz);
        }
        Ok::<_, predvfs_rtl::RtlError>((predictions, slice_times))
    })?;

    for (frame, (predictions, slice_times)) in per_frame.into_iter().enumerate() {
        let total_pred: f64 = predictions.iter().sum();
        let total_slice: f64 = slice_times.iter().map(|s| s.1).sum();

        // 2. Split the frame budget.
        let spendable = frame_deadline_s - total_slice;
        let budgets: Vec<f64> = match policy {
            SplitPolicy::Static => vec![spendable / stages.len() as f64; stages.len()],
            SplitPolicy::Proportional => predictions
                .iter()
                .map(|&p| {
                    if total_pred > 0.0 {
                        spendable * p / total_pred
                    } else {
                        spendable / stages.len() as f64
                    }
                })
                .collect(),
        };

        // 3. Each stage picks its level within its share and runs.
        let mut frame_time = 0.0;
        for (k, stage) in stages.iter().enumerate() {
            let f_hz = stage.energy.f_nominal_hz();
            let pred_cycles = predictions[k] * f_hz;
            let choice = stage.dvfs.choose(pred_cycles, f_hz, budgets[k], 0.0);
            let point = stage.dvfs.point(choice);
            let key = match choice {
                LevelChoice::Regular(i) => i,
                LevelChoice::Boost => stage.dvfs.ladder.len(),
            };
            let switch_s = stage.dvfs.switching.time_s(prev_level[k], key);
            prev_level[k] = key;
            let trace = &traces[k][frame];
            let exec_s = stage.energy.time_s(trace.cycles, point);
            let (slice_cycles, slice_s, ref slice_dp) = slice_times[k];
            let nominal = predvfs_power::OperatingPoint {
                volts: 1.0,
                freq_ratio: 1.0,
            };
            // Slice energy: the slice is the design's control logic
            // running at nominal with no datapath activity.
            let _ = slice_dp;
            let slice_pj = stage.energy.job_pj(
                slice_cycles.round() as u64,
                &vec![0; trace.dp_active.len()],
                nominal,
                1.0,
            );
            let energy_pj = stage
                .energy
                .job_pj(trace.cycles, &trace.dp_active, point, 1.0)
                + slice_pj;
            frame_time += exec_s + slice_s + switch_s;
            records[k].push(JobRecord {
                cycles: trace.cycles,
                predicted_cycles: Some(pred_cycles),
                choice,
                volts: point.volts,
                freq_ratio: point.freq_ratio,
                exec_s,
                slice_s,
                switch_s,
                energy_pj,
                slice_energy_pj: slice_pj,
                missed: false, // stage-level misses are meaningless here
            });
        }
        if frame_time > frame_deadline_s * (1.0 + 1e-9) {
            frame_misses += 1;
        }
    }

    Ok(PipelineResult {
        stages: stages
            .iter()
            .zip(records)
            .map(|(s, r)| SchemeResult {
                scheme: s.name.to_owned(),
                records: r,
            })
            .collect(),
        frame_misses,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs::{train, SliceFlavor, TrainerConfig};
    use predvfs_accel::{aes, sha, WorkloadSize};
    use predvfs_power::{AlphaPowerCurve, Ladder, PowerParams, SwitchingModel};
    use predvfs_rtl::{AsicAreaModel, ExecMode, Simulator, SliceOptions};

    struct Prepared {
        module: predvfs_rtl::Module,
        model: ExecTimeModel,
        predictor: SlicePredictor,
        energy: EnergyModel,
        jobs: Vec<JobInput>,
    }

    fn prepare(
        build: fn() -> predvfs_rtl::Module,
        f_mhz: f64,
        jobs: Vec<JobInput>,
        train_jobs: &[JobInput],
    ) -> Prepared {
        let module = build();
        let model = train::train(&module, train_jobs, &TrainerConfig::default()).unwrap();
        let predictor =
            SlicePredictor::generate(&module, &model, SliceOptions::default(), SliceFlavor::Rtl)
                .unwrap();
        let area = AsicAreaModel::default().area(&module);
        let energy = EnergyModel::new(&module, &area, &PowerParams::default(), f_mhz * 1e6, 1.0);
        Prepared {
            module,
            model,
            predictor,
            energy,
            jobs,
        }
    }

    #[test]
    fn proportional_split_beats_static_on_skewed_stages() {
        // AES carries ~25x the work of SHA per frame: a static even split
        // forces AES to run near nominal while SHA idles; proportional
        // budgets hand AES nearly the whole frame.
        let frames = 12;
        let aes_jobs: Vec<JobInput> = (0..frames).map(|_| aes::piece(4200 * 1024)).collect();
        let sha_jobs: Vec<JobInput> = (0..frames).map(|_| sha::piece(160 * 1024)).collect();
        let aes_train = aes::workloads(3, WorkloadSize::Quick).train;
        let sha_train = sha::workloads(3, WorkloadSize::Quick).train;
        let a = prepare(aes::build, aes::F_NOMINAL_MHZ, aes_jobs, &aes_train);
        let s = prepare(sha::build, sha::F_NOMINAL_MHZ, sha_jobs, &sha_train);

        let curve = AlphaPowerCurve::default();
        let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
        let stages = [
            PipelineStage {
                name: "aes",
                predictor: &a.predictor,
                model: &a.model,
                energy: &a.energy,
                dvfs: dvfs.clone(),
            },
            PipelineStage {
                name: "sha",
                predictor: &s.predictor,
                model: &s.model,
                energy: &s.energy,
                dvfs: dvfs.clone(),
            },
        ];
        let trace = |p: &Prepared| -> Vec<JobTrace> {
            let sim = Simulator::new(&p.module);
            p.jobs
                .iter()
                .map(|j| sim.run(j, ExecMode::FastForward, None).unwrap())
                .collect()
        };
        let traces = [trace(&a), trace(&s)];
        let jobs = [a.jobs.clone(), s.jobs.clone()];

        let stat = run_pipeline(&stages, &jobs, &traces, 16.7e-3, SplitPolicy::Static).unwrap();
        let prop =
            run_pipeline(&stages, &jobs, &traces, 16.7e-3, SplitPolicy::Proportional).unwrap();
        assert_eq!(stat.frame_misses, 0);
        assert_eq!(prop.frame_misses, 0);
        assert!(
            prop.total_energy_pj() < stat.total_energy_pj(),
            "proportional {:.0} should beat static {:.0}",
            prop.total_energy_pj(),
            stat.total_energy_pj()
        );
        assert_eq!(prop.frames, frames);
        assert!(prop.frame_miss_pct() == 0.0);
        assert!(
            (prop.mean_frame_energy_pj() - prop.total_energy_pj() / frames as f64).abs() < 1e-9
        );
    }

    #[test]
    fn empty_stream_reports_zero_not_nan() {
        // Regression: a pipeline fed no frames (e.g. a stream that shed
        // everything upstream) must report 0 for every normalized metric
        // instead of NaN from 0/0.
        let sha_train = sha::workloads(3, WorkloadSize::Quick).train;
        let s = prepare(sha::build, sha::F_NOMINAL_MHZ, Vec::new(), &sha_train);
        let curve = AlphaPowerCurve::default();
        let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
        let stages = [PipelineStage {
            name: "sha",
            predictor: &s.predictor,
            model: &s.model,
            energy: &s.energy,
            dvfs,
        }];
        let res = run_pipeline(
            &stages,
            &[Vec::new()],
            &[Vec::new()],
            16.7e-3,
            SplitPolicy::Proportional,
        )
        .unwrap();
        assert_eq!(res.frames, 0);
        assert_eq!(res.frame_misses, 0);
        assert_eq!(res.frame_miss_pct(), 0.0);
        assert_eq!(res.mean_frame_energy_pj(), 0.0);
        assert!(
            res.frame_miss_pct().is_finite() && res.mean_frame_energy_pj().is_finite(),
            "empty streams must not divide by zero"
        );
        assert_eq!(res.stages[0].records.len(), 0);
    }
}
