//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table that can also be serialized as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = *w);
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Serializes as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with the given number of decimals (experiment output
/// convention).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["bench", "energy%"]);
        t.row(&["h264".into(), "71.3".into()]);
        t.row(&["sha".into(), "58.9".into()]);
        t
    }

    #[test]
    fn render_aligns_and_includes_all_rows() {
        let t = sample();
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("h264"));
        assert!(s.contains("58.9"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("predvfs_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        sample().write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
