//! End-to-end experiment orchestration for one benchmark: build → train →
//! slice → profile → run every DVFS scheme.

use predvfs::{
    train, BaselineController, DvfsModel, ExecTimeModel, OracleController, PidController,
    PredictiveController, SliceFlavor, SlicePredictor, TableController, TrainerConfig,
};
use predvfs_accel::{Benchmark, WorkloadSize, Workloads};
use predvfs_power::{
    AlphaPowerCurve, EnergyModel, Ladder, PowerParams, SwitchingModel, TableCurve,
};
use predvfs_rtl::{
    AsicAreaModel, FpgaResourceModel, FpgaResources, JobTrace, Module, SliceOptions,
};

use crate::cache::TraceCache;
use crate::metrics::SchemeResult;
use crate::runner::{run_scheme, RunConfig};

/// Target platform (§4.3 vs §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// TSMC-65nm-style ASIC: 6 levels, 1.0 → 0.625 V.
    Asic,
    /// Kintex-7-style FPGA: 7 levels, 1.0 → 0.7 V.
    Fpga,
}

/// The DVFS schemes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Constant nominal V/f.
    Baseline,
    /// Worst-case table indexed by a coarse input class (§2.4).
    Table,
    /// Reactive PID control with a 10 % margin.
    Pid,
    /// The predictive controller (5 % margin, overheads charged).
    Prediction,
    /// Prediction with slice and switching overheads removed (Fig. 13).
    PredictionNoOverhead,
    /// Prediction with the 1.08 V boost level enabled (Fig. 14).
    PredictionBoost,
    /// Per-job omniscient lower bound.
    Oracle,
}

impl Scheme {
    /// Every scheme, in the paper's presentation order.
    pub const ALL: [Scheme; 7] = [
        Scheme::Baseline,
        Scheme::Table,
        Scheme::Pid,
        Scheme::Prediction,
        Scheme::PredictionNoOverhead,
        Scheme::PredictionBoost,
        Scheme::Oracle,
    ];

    /// The scheme's display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Table => "table",
            Scheme::Pid => "pid",
            Scheme::Prediction => "prediction",
            Scheme::PredictionNoOverhead => "prediction-no-ovh",
            Scheme::PredictionBoost => "prediction+boost",
            Scheme::Oracle => "oracle",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Workload seed.
    pub seed: u64,
    /// Paper-scale or quick workloads.
    pub size: WorkloadSize,
    /// Per-job deadline (the paper's 60 fps ⇒ 16.7 ms).
    pub deadline_s: f64,
    /// ASIC or FPGA ladder/curve.
    pub platform: Platform,
    /// Model-fitting hyper-parameters.
    pub trainer: TrainerConfig,
    /// DVFS switching model.
    pub switching: SwitchingModel,
    /// Slice generation flavor (RTL vs HLS).
    pub flavor: SliceFlavor,
    /// Disables the slice's FSM rewrite (ablation).
    pub slice_options: SliceOptions,
}

impl ExperimentConfig {
    /// The paper's default setup for a platform.
    pub fn paper_default(platform: Platform) -> ExperimentConfig {
        ExperimentConfig {
            seed: 42,
            size: WorkloadSize::Full,
            deadline_s: 16.7e-3,
            platform,
            trainer: TrainerConfig::default(),
            switching: SwitchingModel::off_chip(),
            flavor: SliceFlavor::Rtl,
            slice_options: SliceOptions::default(),
        }
    }

    /// A scaled-down configuration for tests.
    pub fn quick(platform: Platform) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default(platform);
        c.size = WorkloadSize::Quick;
        c
    }
}

/// Slice overhead summary (Fig. 12 / Fig. 17 rows).
#[derive(Debug, Clone, Copy)]
pub struct SliceOverheads {
    /// Slice area as a fraction of the accelerator (ASIC), percent.
    pub area_pct: f64,
    /// Slice resources as mean LUT/DSP/BRAM share (FPGA), percent.
    pub resource_pct: f64,
    /// Mean slice energy per job relative to job energy, percent.
    pub energy_pct: f64,
    /// Mean slice time relative to the deadline, percent.
    pub time_pct: f64,
}

/// A fully prepared benchmark experiment.
pub struct Experiment {
    /// The benchmark descriptor.
    pub bench: Benchmark,
    /// The accelerator module.
    pub module: Module,
    /// Fitted execution-time model.
    pub model: ExecTimeModel,
    /// Generated hardware slice + probes.
    pub predictor: SlicePredictor,
    /// Workloads (train is consumed for fitting; test drives every figure).
    pub workloads: Workloads,
    /// Per-test-job execution traces at nominal frequency.
    pub test_traces: Vec<JobTrace>,
    /// Per-train-job cycles (for the table controller).
    pub train_cycles: Vec<u64>,
    /// Accelerator energy model (leakage calibrated).
    pub energy: EnergyModel,
    /// Slice energy model.
    pub slice_energy: EnergyModel,
    /// The DVFS ladder with boost attached.
    pub dvfs: DvfsModel,
    /// FPGA resources of the full design.
    pub fpga_full: FpgaResources,
    /// FPGA resources of the slice.
    pub fpga_slice: FpgaResources,
    /// Raw feature count before Lasso selection.
    pub raw_feature_count: usize,
    config: ExperimentConfig,
    f_hz: f64,
}

impl Experiment {
    /// Builds, trains, slices, and profiles one benchmark.
    ///
    /// # Errors
    ///
    /// Propagates training, slicing, and simulation failures.
    pub fn prepare(
        bench: Benchmark,
        config: ExperimentConfig,
    ) -> Result<Experiment, predvfs::CoreError> {
        Experiment::prepare_cached(bench, config, &TraceCache::new())
    }

    /// Like [`Experiment::prepare`], but serves trace simulation from
    /// `cache`, so configurations sharing `(benchmark, seed, size)` —
    /// e.g. the ASIC and FPGA variants, or an ablation grid — pay for
    /// one simulation pass instead of one each.
    ///
    /// # Errors
    ///
    /// Propagates training, slicing, and simulation failures.
    pub fn prepare_cached(
        bench: Benchmark,
        config: ExperimentConfig,
        cache: &TraceCache,
    ) -> Result<Experiment, predvfs::CoreError> {
        let sink = predvfs_obs::global();
        let _prepare_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_prepare");
        sink.counter_add("predvfs_experiments_prepared_total", 1);
        let module = (bench.build)();
        let f_hz = bench.f_nominal_mhz * 1e6;

        // Trace simulation (train profile + nominal test runs) comes
        // from the cache; everything below is cheap per-config work.
        let bundle = {
            let _t = predvfs_obs::PhaseTimer::start(sink, "predvfs_simulate");
            cache.get_or_simulate(&bench, &module, config.seed, config.size)?
        };
        let data = &bundle.data;
        let raw_feature_count = data.schema.len();
        let model = train::fit(data, &config.trainer)?;
        let train_cycles: Vec<u64> = data.y.iter().map(|&c| c as u64).collect();
        let predictor = {
            let _t = predvfs_obs::PhaseTimer::start(sink, "predvfs_slice");
            SlicePredictor::generate(&module, &model, config.slice_options, config.flavor)?
        };
        let workloads = bundle.workloads.clone();
        let test_traces = bundle.test_traces.clone();

        // Energy models, leakage calibrated on the training profile.
        // The profile traces are reused directly: probes are
        // timing-neutral, so cycle and activity counts match what a
        // fresh unprobed simulation of the same jobs would report.
        let area_model = AsicAreaModel::default();
        let params = PowerParams::default();
        let area = area_model.area(&module);
        let mut energy = EnergyModel::new(&module, &area, &params, f_hz, 1.0);
        let avg_dyn = {
            let mut pj = 0.0;
            let mut cycles = 0u64;
            for t in data.traces.iter().take(20) {
                pj += energy.dynamic_pj_nominal(t.cycles, &t.dp_active);
                cycles += t.cycles;
            }
            pj / cycles.max(1) as f64
        };
        energy.calibrate_leakage(avg_dyn, bench.leak_share);
        let slice_area_raw = area_model.area(predictor.module());
        let slice_area = predvfs_rtl::AreaBreakdown {
            control_um2: slice_area_raw.control_um2 * predictor.area_factor(),
            datapath_um2: slice_area_raw.datapath_um2 * predictor.area_factor(),
            memory_um2: slice_area_raw.memory_um2 * predictor.area_factor(),
        };
        let mut slice_energy =
            EnergyModel::new(predictor.module(), &slice_area, &params, f_hz, 1.0);
        slice_energy.calibrate_leakage(
            avg_dyn * slice_area.total_um2() / area.total_um2().max(1.0),
            bench.leak_share,
        );

        // Ladder for the platform, boost always attached (controllers opt in).
        let dvfs = match config.platform {
            Platform::Asic => {
                let curve = AlphaPowerCurve::default();
                DvfsModel::new(
                    Ladder::asic(&curve).with_boost(&curve, 1.08),
                    config.switching,
                )
            }
            Platform::Fpga => {
                let curve = TableCurve::kintex7();
                DvfsModel::new(
                    Ladder::fpga(&curve).with_boost(&curve, 1.08),
                    config.switching,
                )
            }
        };

        let fpga_model = FpgaResourceModel::default();
        let fpga_full = fpga_model.resources(&module);
        let fpga_slice = fpga_model.resources(predictor.module());

        Ok(Experiment {
            bench,
            module,
            model,
            predictor,
            workloads,
            test_traces,
            train_cycles,
            energy,
            slice_energy,
            dvfs,
            fpga_full,
            fpga_slice,
            raw_feature_count,
            config,
            f_hz,
        })
    }

    /// The experiment's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs one scheme over the test set with the configured deadline.
    ///
    /// # Errors
    ///
    /// Propagates controller failures.
    pub fn run(&self, scheme: Scheme) -> Result<SchemeResult, predvfs::CoreError> {
        self.run_with_deadline(scheme, self.config.deadline_s)
    }

    /// Runs several schemes over the test set, fanned out in parallel.
    ///
    /// Each scheme's controller is private to its worker and the result
    /// vector is collected in `schemes` order, so the output is
    /// bit-identical to calling [`Experiment::run`] serially for each
    /// scheme in turn.
    ///
    /// # Errors
    ///
    /// Returns the error of the first (lowest-indexed) failing scheme,
    /// matching the serial path.
    pub fn run_all(&self, schemes: &[Scheme]) -> Result<Vec<SchemeResult>, predvfs::CoreError> {
        predvfs_par::par_try_map(schemes, |&scheme| self.run(scheme))
    }

    /// Runs one scheme with an overridden deadline (Fig. 15 sweeps).
    ///
    /// # Errors
    ///
    /// Propagates controller failures.
    pub fn run_with_deadline(
        &self,
        scheme: Scheme,
        deadline_s: f64,
    ) -> Result<SchemeResult, predvfs::CoreError> {
        let sink = predvfs_obs::global();
        let _run_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_scheme_run");
        sink.counter_add("predvfs_scheme_runs_total", 1);
        let physical_switch = match scheme {
            Scheme::PredictionNoOverhead | Scheme::Oracle => SwitchingModel::free(),
            _ => self.config.switching,
        };
        let cfg = RunConfig {
            deadline_s,
            switching: physical_switch,
            leak_voltage_exp: 1.0,
        };
        let dvfs = self.dvfs.clone();
        let jobs = &self.workloads.test;
        let traces = &self.test_traces;
        let mut result = match scheme {
            Scheme::Baseline => {
                let mut c = BaselineController::new(dvfs.clone());
                run_scheme(&mut c, jobs, traces, &self.energy, None, &dvfs, &cfg)?
            }
            Scheme::Table => {
                let mut c = TableController::from_profile(
                    dvfs.clone(),
                    self.f_hz,
                    &self.workloads.train,
                    &self.train_cycles,
                    4,
                );
                run_scheme(&mut c, jobs, traces, &self.energy, None, &dvfs, &cfg)?
            }
            Scheme::Pid => {
                let mut c = PidController::tuned(dvfs.clone(), self.f_hz);
                run_scheme(&mut c, jobs, traces, &self.energy, None, &dvfs, &cfg)?
            }
            Scheme::Prediction => {
                let mut c = PredictiveController::new(
                    dvfs.clone(),
                    self.f_hz,
                    &self.predictor,
                    &self.model,
                );
                run_scheme(
                    &mut c,
                    jobs,
                    traces,
                    &self.energy,
                    Some(&self.slice_energy),
                    &dvfs,
                    &cfg,
                )?
            }
            Scheme::PredictionNoOverhead => {
                let mut c = PredictiveController::new(
                    dvfs.clone(),
                    self.f_hz,
                    &self.predictor,
                    &self.model,
                );
                c.ignore_overheads = true;
                run_scheme(&mut c, jobs, traces, &self.energy, None, &dvfs, &cfg)?
            }
            Scheme::PredictionBoost => {
                let mut boosted = dvfs.clone();
                boosted.use_boost = true;
                let mut c = PredictiveController::new(
                    boosted.clone(),
                    self.f_hz,
                    &self.predictor,
                    &self.model,
                );
                run_scheme(
                    &mut c,
                    jobs,
                    traces,
                    &self.energy,
                    Some(&self.slice_energy),
                    &boosted,
                    &cfg,
                )?
            }
            Scheme::Oracle => {
                let actual: Vec<u64> = traces.iter().map(|t| t.cycles).collect();
                let mut c = OracleController::new(dvfs.clone(), self.f_hz, actual);
                run_scheme(&mut c, jobs, traces, &self.energy, None, &dvfs, &cfg)?
            }
        };
        result.scheme = scheme.name().to_owned();
        Ok(result)
    }

    /// Per-test-job execution-time statistics in milliseconds:
    /// `(max, avg, min)` — the Table 4 columns.
    pub fn exec_time_stats_ms(&self) -> (f64, f64, f64) {
        let ms: Vec<f64> = self
            .test_traces
            .iter()
            .map(|t| t.cycles as f64 / self.f_hz * 1e3)
            .collect();
        let max = ms.iter().cloned().fold(f64::MIN, f64::max);
        let min = ms.iter().cloned().fold(f64::MAX, f64::min);
        let avg = ms.iter().sum::<f64>() / ms.len().max(1) as f64;
        (max, avg, min)
    }

    /// Slice overheads for Fig. 12 (ASIC) / Fig. 17 (FPGA), computed from
    /// a prediction run.
    ///
    /// # Errors
    ///
    /// Propagates controller failures.
    pub fn slice_overheads(&self) -> Result<SliceOverheads, predvfs::CoreError> {
        let pred = self.run(Scheme::Prediction)?;
        let area_model = AsicAreaModel::default();
        let full = area_model.area(&self.module).total_um2();
        let slice =
            area_model.area(self.predictor.module()).total_um2() * self.predictor.area_factor();
        Ok(SliceOverheads {
            area_pct: 100.0 * slice / full,
            resource_pct: 100.0 * self.fpga_slice.mean_share_of(&self.fpga_full),
            energy_pct: pred.mean_slice_energy_pct(),
            time_pct: pred.mean_slice_time_pct(self.config.deadline_s),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_accel::by_name;

    fn quick(name: &str) -> Experiment {
        let bench = by_name(name).unwrap();
        Experiment::prepare(bench, ExperimentConfig::quick(Platform::Asic)).unwrap()
    }

    #[test]
    fn prediction_beats_baseline_on_sha() {
        let e = quick("sha");
        let base = e.run(Scheme::Baseline).unwrap();
        let pred = e.run(Scheme::Prediction).unwrap();
        assert_eq!(base.misses(), 0);
        assert!(
            pred.normalized_energy_pct(&base) < 90.0,
            "prediction saved only {:.1}%",
            100.0 - pred.normalized_energy_pct(&base)
        );
    }

    #[test]
    fn oracle_is_a_lower_bound() {
        let e = quick("aes");
        let oracle = e.run(Scheme::Oracle).unwrap();
        let pred = e.run(Scheme::Prediction).unwrap();
        assert!(oracle.total_energy_pj() <= pred.total_energy_pj() * 1.001);
        assert_eq!(oracle.misses(), 0);
    }

    #[test]
    fn no_overhead_prediction_at_least_as_good() {
        let e = quick("md");
        let pred = e.run(Scheme::Prediction).unwrap();
        let noovh = e.run(Scheme::PredictionNoOverhead).unwrap();
        assert!(noovh.total_energy_pj() <= pred.total_energy_pj() * 1.001);
    }

    #[test]
    fn exec_stats_and_overheads_are_sane() {
        let e = quick("stencil");
        let (max, avg, min) = e.exec_time_stats_ms();
        assert!(max >= avg && avg >= min && min > 0.0);
        let ovh = e.slice_overheads().unwrap();
        assert!(ovh.area_pct > 0.0 && ovh.area_pct < 100.0);
        assert!(ovh.time_pct >= 0.0 && ovh.time_pct < 50.0);
        assert!(ovh.energy_pct >= 0.0 && ovh.energy_pct < 50.0);
        assert!(ovh.resource_pct > 0.0);
    }

    #[test]
    fn fpga_platform_prepares_and_runs() {
        let bench = by_name("sha").unwrap();
        let e = Experiment::prepare(bench, ExperimentConfig::quick(Platform::Fpga)).unwrap();
        assert_eq!(e.dvfs.ladder.len(), 7);
        let base = e.run(Scheme::Baseline).unwrap();
        let pred = e.run(Scheme::Prediction).unwrap();
        assert!(pred.total_energy_pj() < base.total_energy_pj());
    }
}
