//! # predvfs-sim
//!
//! The evaluation harness for the MICRO'15 predictive-DVFS reproduction:
//! the per-job control loop ([`runner`]), result accounting ([`metrics`]),
//! end-to-end benchmark experiments ([`experiment`]), parameter sweeps
//! ([`sweep`]), and table/CSV reporting ([`report`]).
//!
//! # Examples
//!
//! ```
//! use predvfs_sim::{Experiment, ExperimentConfig, Platform, Scheme};
//! use predvfs_accel::by_name;
//!
//! let bench = by_name("sha").expect("registered");
//! let exp = Experiment::prepare(bench, ExperimentConfig::quick(Platform::Asic))?;
//! let baseline = exp.run(Scheme::Baseline)?;
//! let prediction = exp.run(Scheme::Prediction)?;
//! assert!(prediction.total_energy_pj() < baseline.total_energy_pj());
//! # Ok::<(), predvfs::CoreError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod runner;
pub mod sweep;

pub use cache::{TraceBundle, TraceCache};
pub use experiment::{Experiment, ExperimentConfig, Platform, Scheme, SliceOverheads};
pub use metrics::{JobRecord, SchemeResult};
pub use pipeline::{run_pipeline, PipelineResult, PipelineStage, SplitPolicy};
pub use report::Table;
pub use runner::{run_scheme, RunConfig};
pub use sweep::{average, deadline_sweep, SweepPoint};
