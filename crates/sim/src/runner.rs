//! The per-job control loop (Fig. 4): decide a level, run the job,
//! account time and energy, feed the outcome back.

use predvfs::{Decision, DvfsController, DvfsModel, JobContext, LevelChoice};
use predvfs_power::{EnergyModel, SwitchingModel};
use predvfs_rtl::{JobInput, JobTrace};

use crate::metrics::{JobRecord, SchemeResult};

/// Accounting configuration for one scheme run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Per-job deadline, seconds.
    pub deadline_s: f64,
    /// Switching costs charged by the platform (controllers may *assume* a
    /// different model internally; this is what physically happens).
    pub switching: SwitchingModel,
    /// Leakage–voltage exponent of the platform.
    pub leak_voltage_exp: f64,
}

/// Runs one controller over a precomputed job sequence.
///
/// The jobs' execution traces are simulated once (cycle counts are
/// frequency-independent); the runner replays them under the controller's
/// decisions, charging slice time/energy, DVFS transitions, and the
/// voltage-scaled job energy.
///
/// # Errors
///
/// Propagates controller failures (e.g. a hung slice).
///
/// # Panics
///
/// Panics if `jobs` and `traces` lengths differ.
pub fn run_scheme(
    controller: &mut dyn DvfsController,
    jobs: &[JobInput],
    traces: &[JobTrace],
    accel_energy: &EnergyModel,
    slice_energy: Option<&EnergyModel>,
    dvfs: &DvfsModel,
    config: &RunConfig,
) -> Result<SchemeResult, predvfs::CoreError> {
    assert_eq!(jobs.len(), traces.len(), "one trace per job required");
    let mut records = Vec::with_capacity(jobs.len());
    let mut prev_key = level_key(dvfs, dvfs.nominal());
    for (index, (job, trace)) in jobs.iter().zip(traces).enumerate() {
        let ctx = JobContext {
            job,
            deadline_s: config.deadline_s,
            index,
        };
        let decision: Decision = controller.decide(&ctx)?;
        let point = dvfs.point(decision.choice);
        let key = level_key(dvfs, decision.choice);
        let level_changed = key != prev_key;
        let switch_s = config.switching.time_s(prev_key, key);
        prev_key = key;

        let exec_s = accel_energy.time_s(trace.cycles, point);
        // The slice runs in its own always-nominal domain.
        let slice_s = decision.slice_cycles / accel_energy.f_nominal_hz();
        let slice_pj = match (slice_energy, decision.slice_cycles > 0.0) {
            (Some(em), true) => {
                let nominal = predvfs_power::OperatingPoint {
                    volts: 1.0,
                    freq_ratio: 1.0,
                };
                em.job_pj(
                    decision.slice_cycles.round() as u64,
                    &decision.slice_dp_active,
                    nominal,
                    config.leak_voltage_exp,
                )
            }
            _ => 0.0,
        };
        let job_pj = accel_energy.job_pj(
            trace.cycles,
            &trace.dp_active,
            point,
            config.leak_voltage_exp,
        ) + config.switching.transition_pj * f64::from(level_changed);

        let total_s = exec_s + slice_s + switch_s;
        records.push(JobRecord {
            cycles: trace.cycles,
            predicted_cycles: decision.predicted_cycles,
            choice: decision.choice,
            volts: point.volts,
            freq_ratio: point.freq_ratio,
            exec_s,
            slice_s,
            switch_s,
            energy_pj: job_pj + slice_pj,
            slice_energy_pj: slice_pj,
            missed: total_s > config.deadline_s * (1.0 + 1e-9),
        });
        controller.observe(trace.cycles);
    }
    Ok(SchemeResult {
        scheme: controller.name().to_owned(),
        records,
    })
}

/// Maps a level choice to an ordinal for switching-cost bookkeeping.
fn level_key(dvfs: &DvfsModel, choice: LevelChoice) -> usize {
    match choice {
        LevelChoice::Regular(i) => i,
        LevelChoice::Boost => dvfs.ladder.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs::BaselineController;
    use predvfs_power::{AlphaPowerCurve, Ladder, PowerParams};
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use predvfs_rtl::{AsicAreaModel, ExecMode, Simulator};

    fn toy_setup() -> (predvfs_rtl::Module, Vec<JobInput>, Vec<JobTrace>) {
        let mut b = ModuleBuilder::new("toy");
        let d = b.input("d", 16);
        let fsm = b.fsm("ctrl", &["F", "W", "E"]);
        b.timed(&fsm, "F", "W", "E", d, E::stream_empty().is_zero(), "c");
        b.trans(&fsm, "E", "F", E::one());
        b.datapath_compute("dp", fsm.in_state("W"), 10_000.0, 1.0, 500, 4);
        b.advance_when(fsm.in_state("E"));
        b.done_when(fsm.in_state("F") & E::stream_empty());
        let m = b.build().unwrap();
        let sim = Simulator::new(&m);
        let jobs: Vec<JobInput> = (1..4u64)
            .map(|k| {
                let mut j = JobInput::new(1);
                j.push(&[k * 1000]);
                j
            })
            .collect();
        let traces = jobs
            .iter()
            .map(|j| sim.run(j, ExecMode::FastForward, None).unwrap())
            .collect();
        (m, jobs, traces)
    }

    #[test]
    fn baseline_never_misses_and_pays_no_overheads() {
        let (m, jobs, traces) = toy_setup();
        let area = AsicAreaModel::default().area(&m);
        let em = EnergyModel::new(&m, &area, &PowerParams::default(), 100e6, 1.0);
        let curve = AlphaPowerCurve::default();
        let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
        let mut ctrl = BaselineController::new(dvfs.clone());
        let cfg = RunConfig {
            deadline_s: 16.7e-3,
            switching: SwitchingModel::off_chip(),
            leak_voltage_exp: 1.0,
        };
        let res = run_scheme(&mut ctrl, &jobs, &traces, &em, None, &dvfs, &cfg).unwrap();
        assert_eq!(res.jobs(), 3);
        assert_eq!(res.misses(), 0);
        for r in &res.records {
            assert_eq!(r.slice_s, 0.0);
            assert_eq!(r.switch_s, 0.0, "baseline never changes level");
            assert_eq!(r.freq_ratio, 1.0);
        }
    }

    #[test]
    fn energy_scales_with_level() {
        let (m, jobs, traces) = toy_setup();
        let area = AsicAreaModel::default().area(&m);
        let em = EnergyModel::new(&m, &area, &PowerParams::default(), 100e6, 1.0);
        let curve = AlphaPowerCurve::default();
        let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::free());
        let cfg = RunConfig {
            deadline_s: 16.7e-3,
            switching: SwitchingModel::free(),
            leak_voltage_exp: 1.0,
        };
        // Oracle with perfect knowledge picks low levels and saves energy.
        let actual: Vec<u64> = traces.iter().map(|t| t.cycles).collect();
        let mut oracle = predvfs::OracleController::new(dvfs.clone(), 100e6, actual);
        let oracle_res = run_scheme(&mut oracle, &jobs, &traces, &em, None, &dvfs, &cfg).unwrap();
        let mut base = BaselineController::new(dvfs.clone());
        let base_res = run_scheme(&mut base, &jobs, &traces, &em, None, &dvfs, &cfg).unwrap();
        assert!(oracle_res.total_energy_pj() < base_res.total_energy_pj());
        assert_eq!(oracle_res.misses(), 0);
    }

    #[test]
    fn instant_transitions_still_charge_transition_energy() {
        // Regression: transition energy used to be gated on switch time
        // being positive, so an instant-but-costly regulator (on-chip,
        // transition_s = 0) charged nothing on level changes.
        let (m, jobs, traces) = toy_setup();
        let area = AsicAreaModel::default().area(&m);
        let em = EnergyModel::new(&m, &area, &PowerParams::default(), 100e6, 1.0);
        let curve = AlphaPowerCurve::default();
        let instant = SwitchingModel {
            transition_s: 0.0,
            transition_pj: 5000.0,
        };
        let dvfs = DvfsModel::new(Ladder::asic(&curve), instant);
        let cfg = RunConfig {
            deadline_s: 16.7e-3,
            switching: instant,
            leak_voltage_exp: 1.0,
        };
        // The oracle drops below nominal for the first job, switching
        // levels at least once.
        let actual: Vec<u64> = traces.iter().map(|t| t.cycles).collect();
        let mut oracle = predvfs::OracleController::new(dvfs.clone(), 100e6, actual.clone());
        let res = run_scheme(&mut oracle, &jobs, &traces, &em, None, &dvfs, &cfg).unwrap();

        // Same decisions with a truly free model, as the reference.
        let free_dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::free());
        let free_cfg = RunConfig {
            switching: SwitchingModel::free(),
            ..cfg.clone()
        };
        let mut free_oracle = predvfs::OracleController::new(free_dvfs.clone(), 100e6, actual);
        let free_res = run_scheme(
            &mut free_oracle,
            &jobs,
            &traces,
            &em,
            None,
            &free_dvfs,
            &free_cfg,
        )
        .unwrap();

        let switches = res
            .records
            .iter()
            .zip(&free_res.records)
            .filter(|(a, b)| {
                assert_eq!(
                    a.choice, b.choice,
                    "switching model must not alter decisions"
                );
                a.switch_s == 0.0 && b.switch_s == 0.0
            })
            .count();
        assert_eq!(
            switches,
            res.records.len(),
            "instant transitions take no time"
        );
        let mut changes = 0u32;
        let mut prev = level_key(&dvfs, LevelChoice::Regular(dvfs.ladder.nominal_index()));
        for r in &res.records {
            let key = level_key(&dvfs, r.choice);
            if key != prev {
                changes += 1;
            }
            prev = key;
        }
        assert!(changes > 0, "test needs at least one level change");
        let expected = free_res.total_energy_pj() + 5000.0 * f64::from(changes);
        assert!(
            (res.total_energy_pj() - expected).abs() < 1e-6,
            "each level change must charge transition_pj: got {} want {}",
            res.total_energy_pj(),
            expected
        );
    }
}
