//! Shared trace cache: one simulation pass per `(benchmark, seed, size)`.
//!
//! Preparing an [`Experiment`](crate::Experiment) is dominated by trace
//! simulation — profiling the training set and running the test set at
//! nominal frequency. Neither depends on the platform, the switching
//! model, the trainer hyper-parameters, or the slice flavor, so two
//! configurations that differ only in those knobs (e.g. the ASIC and
//! FPGA variants of one benchmark, or an ablation grid) can share a
//! single pass. [`TraceCache`] memoizes the expensive part as a
//! [`TraceBundle`] keyed by `(benchmark name, seed, size)`; the figure
//! binaries hold one cache and call
//! [`Experiment::prepare_cached`](crate::Experiment::prepare_cached).
//!
//! Cached bundles also carry the training-set traces that
//! `train::profile` already computed, so leakage calibration reads them
//! instead of re-simulating the first 20 training jobs. Probes are
//! timing-neutral, making the reuse bit-identical to a fresh unprobed
//! run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use predvfs::train::{self, TrainingData};
use predvfs_accel::{Benchmark, WorkloadSize, Workloads};
use predvfs_rtl::{AnySim, ExecMode, JobTrace, Module};

/// Everything about one `(benchmark, seed, size)` that requires trace
/// simulation: the generated workloads, the profiled training data
/// (including per-job traces), and the nominal-frequency test traces.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// The generated train/test job sets.
    pub workloads: Workloads,
    /// Profiled training data; `data.traces` holds the per-job traces.
    pub data: TrainingData,
    /// Per-test-job traces at nominal frequency (unprobed).
    pub test_traces: Vec<JobTrace>,
}

impl TraceBundle {
    /// Generates workloads and simulates both job sets for `bench`.
    ///
    /// Training jobs are profiled (probed) and test jobs run unprobed,
    /// both fanned out in parallel with input-order collection, so the
    /// bundle is bit-identical to a serial pass.
    ///
    /// # Errors
    ///
    /// Propagates profiling and simulation failures.
    pub fn simulate(
        module: &Module,
        bench: &Benchmark,
        seed: u64,
        size: WorkloadSize,
    ) -> Result<TraceBundle, predvfs::CoreError> {
        let workloads = (bench.workloads)(seed, size);
        let data = train::profile(module, &workloads.train)?;
        // Test traces run on the process-default engine (compiled VM by
        // default; `--interp` swaps the oracle back in).
        let sim = AnySim::new(module)?;
        let test_traces = predvfs_par::par_try_map(&workloads.test, |job| {
            sim.run(job, ExecMode::FastForward, None)
        })?;
        Ok(TraceBundle {
            workloads,
            data,
            test_traces,
        })
    }
}

/// A thread-safe memo of [`TraceBundle`]s keyed by
/// `(benchmark name, seed, size)`.
#[derive(Debug, Default)]
pub struct TraceCache {
    inner: Mutex<HashMap<(String, u64, WorkloadSize), Arc<TraceBundle>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Locks the memo map, recovering from poisoning.
    ///
    /// The map is insert-only (bundles are immutable `Arc`s and entries
    /// are never mutated in place), so a guard abandoned by a panicking
    /// worker still protects a fully consistent snapshot. Recovering
    /// here keeps one panicked closure in a parallel fan-out from
    /// cascading poison panics into every other worker's lookups.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<(String, u64, WorkloadSize), Arc<TraceBundle>>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the bundle for `(bench.name, seed, size)`, simulating it
    /// on first use.
    ///
    /// `module` must be the module built by `bench` (callers have
    /// already built it to derive area/energy models; rebuilding here
    /// would waste that work).
    ///
    /// # Errors
    ///
    /// Propagates [`TraceBundle::simulate`] failures; errors are not
    /// cached.
    pub fn get_or_simulate(
        &self,
        bench: &Benchmark,
        module: &Module,
        seed: u64,
        size: WorkloadSize,
    ) -> Result<Arc<TraceBundle>, predvfs::CoreError> {
        let key = (bench.name.to_owned(), seed, size);
        if let Some(bundle) = self.lock_map().get(&key) {
            let _span = predvfs_obs::span("cache.hit");
            self.hits.fetch_add(1, Ordering::Relaxed);
            predvfs_obs::global().counter_add("predvfs_trace_cache_hits_total", 1);
            return Ok(Arc::clone(bundle));
        }
        // The miss span prices the whole simulate-and-insert path, so a
        // hit/miss flame split shows where preparation time actually goes.
        let _span = predvfs_obs::span("cache.miss");
        self.misses.fetch_add(1, Ordering::Relaxed);
        predvfs_obs::global().counter_add("predvfs_trace_cache_misses_total", 1);
        // Simulate outside the lock so a long pass never blocks lookups
        // of other benchmarks; a concurrent duplicate pass produces a
        // bit-identical bundle, so whichever insert wins is equivalent.
        let bundle = Arc::new(TraceBundle::simulate(module, bench, seed, size)?);
        let mut map = self.lock_map();
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&bundle)),
        ))
    }

    /// Number of cached bundles.
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required simulation.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_accel::by_name;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_bundle() {
        let bench = by_name("sha").unwrap();
        let module = (bench.build)();
        let cache = TraceCache::new();
        let a = cache
            .get_or_simulate(&bench, &module, 42, WorkloadSize::Quick)
            .unwrap();
        let b = cache
            .get_or_simulate(&bench, &module, 42, WorkloadSize::Quick)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_seeds_get_distinct_bundles() {
        let bench = by_name("sha").unwrap();
        let module = (bench.build)();
        let cache = TraceCache::new();
        let a = cache
            .get_or_simulate(&bench, &module, 1, WorkloadSize::Quick)
            .unwrap();
        let b = cache
            .get_or_simulate(&bench, &module, 2, WorkloadSize::Quick)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let bench = by_name("sha").unwrap();
        let module = (bench.build)();
        let cache = TraceCache::new();
        cache
            .get_or_simulate(&bench, &module, 42, WorkloadSize::Quick)
            .unwrap();
        // Poison the memo mutex the way a dying fan-out worker would: by
        // panicking while holding the guard. Before the recovery fix this
        // turned every later lookup into a "cache poisoned" panic.
        let worker = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.inner.lock().unwrap();
                panic!("worker dies while holding the cache lock");
            })
            .join()
        });
        assert!(worker.is_err(), "the worker must have panicked");
        assert!(cache.inner.is_poisoned());
        // Subsequent lookups see the intact insert-only snapshot.
        assert_eq!(cache.len(), 1);
        let again = cache
            .get_or_simulate(&bench, &module, 42, WorkloadSize::Quick)
            .expect("lookup after poisoning must succeed");
        assert_eq!(again.workloads.test.len(), again.test_traces.len());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn bundle_traces_match_training_rows() {
        let bench = by_name("aes").unwrap();
        let module = (bench.build)();
        let bundle = TraceBundle::simulate(&module, &bench, 42, WorkloadSize::Quick).unwrap();
        assert_eq!(bundle.data.traces.len(), bundle.workloads.train.len());
        for (i, t) in bundle.data.traces.iter().enumerate() {
            assert_eq!(t.cycles as f64, bundle.data.y[i]);
        }
        assert_eq!(bundle.test_traces.len(), bundle.workloads.test.len());
    }
}
