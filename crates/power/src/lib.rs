//! # predvfs-power
//!
//! Voltage–frequency characterization, discrete DVFS operating-point
//! ladders, per-job energy models, and switching-overhead models — the
//! circuit/gate-level substrate of the MICRO'15 predictive-DVFS
//! reproduction (§4.1–§4.2 of the paper).
//!
//! # Examples
//!
//! ```
//! use predvfs_power::{AlphaPowerCurve, Ladder, VoltFreqCurve};
//!
//! let curve = AlphaPowerCurve::default();
//! let ladder = Ladder::asic(&curve).with_boost(&curve, 1.08);
//! // A job needing 61 % of nominal frequency rounds up to the next level.
//! let level = ladder.lowest_meeting(0.61).expect("feasible");
//! assert!(ladder.level(level).freq_ratio >= 0.61);
//! assert!(ladder.boost().is_some());
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod ladder;
pub mod switch;
pub mod vf;

pub use energy::{EnergyModel, PowerParams};
pub use ladder::{Ladder, OperatingPoint};
pub use switch::SwitchingModel;
pub use vf::{AlphaPowerCurve, TableCurve, VoltFreqCurve};
