//! DVFS transition overheads.
//!
//! The paper assumes off-chip voltage regulators with switching times
//! around 10 µs, conservatively budgeted at 100 µs to cover driver
//! overhead (§4.2), and notes that on-chip regulation could cut this to
//! tens of nanoseconds — a sweep the benchmarks reproduce.

/// Cost model for changing operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingModel {
    /// Time for voltage/frequency to stabilize after a change, in seconds.
    pub transition_s: f64,
    /// Energy drawn by the transition itself (regulator losses), in pJ.
    pub transition_pj: f64,
}

impl SwitchingModel {
    /// The paper's conservative default: 100 µs, negligible energy.
    pub fn off_chip() -> SwitchingModel {
        SwitchingModel {
            transition_s: 100e-6,
            transition_pj: 0.0,
        }
    }

    /// Fast on-chip regulation (tens of nanoseconds).
    pub fn on_chip() -> SwitchingModel {
        SwitchingModel {
            transition_s: 50e-9,
            transition_pj: 0.0,
        }
    }

    /// A zero-cost model (the "overheads removed" configuration of
    /// Fig. 13).
    pub fn free() -> SwitchingModel {
        SwitchingModel {
            transition_s: 0.0,
            transition_pj: 0.0,
        }
    }

    /// Time charged for moving between two level indices (zero when the
    /// level is unchanged).
    pub fn time_s(&self, from_level: usize, to_level: usize) -> f64 {
        if from_level == to_level {
            0.0
        } else {
            self.transition_s
        }
    }
}

impl Default for SwitchingModel {
    fn default() -> Self {
        SwitchingModel::off_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(SwitchingModel::off_chip().transition_s > SwitchingModel::on_chip().transition_s);
        assert_eq!(SwitchingModel::free().transition_s, 0.0);
    }

    #[test]
    fn no_charge_for_staying_put() {
        let s = SwitchingModel::off_chip();
        assert_eq!(s.time_s(2, 2), 0.0);
        assert_eq!(s.time_s(2, 3), 100e-6);
    }
}
