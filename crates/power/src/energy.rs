//! Energy accounting for accelerator jobs under DVFS.
//!
//! Substitutes for the paper's post-place-and-route PrimeTime PX power
//! model (§4.1): energies are built from the module's area breakdown and
//! per-datapath activity counts, then scaled across operating points with
//! the standard CMOS relations
//!
//! * dynamic energy per job: `E_dyn ∝ Σ activity · C_eff · V²` — cycle
//!   counts are frequency-independent, so only `V²` scales;
//! * leakage: `P_leak ∝ V`, integrated over the (frequency-dependent)
//!   execution time, so running slower *increases* leakage energy — the
//!   effect that keeps the energy-optimal level above the bottom of the
//!   ladder for long jobs.
//!
//! Accelerators are assumed power-gated between jobs (energy is charged
//! only while running), matching the paper's per-job energy normalization.

use predvfs_rtl::area::AreaBreakdown;
use predvfs_rtl::module::Module;

use crate::ladder::OperatingPoint;

/// Technology coefficients for the energy model.
#[derive(Debug, Clone, Copy)]
pub struct PowerParams {
    /// Dynamic energy density of active logic at nominal voltage
    /// (pJ per µm² per cycle, folded with a typical activity factor).
    pub dyn_pj_per_um2_cycle: f64,
    /// Leakage power density at nominal voltage (µW per µm²).
    pub leak_uw_per_um2: f64,
    /// Exponent of the leakage-vs-voltage dependence (1 = linear).
    pub leak_voltage_exp: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            dyn_pj_per_um2_cycle: 1.5e-3,
            leak_uw_per_um2: 2.0e-5,
            leak_voltage_exp: 1.0,
        }
    }
}

/// Per-module energy model, priced once and reused for every job.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    ctrl_pj_per_cycle: f64,
    dp_pj_per_cycle: Vec<f64>,
    leak_uw: f64,
    f_nominal_hz: f64,
    vnom: f64,
}

impl EnergyModel {
    /// Builds the model from a module, its area breakdown, and technology
    /// parameters. `f_nominal_hz` is the synthesis frequency at nominal
    /// voltage.
    pub fn new(
        module: &Module,
        area: &AreaBreakdown,
        params: &PowerParams,
        f_nominal_hz: f64,
        vnom: f64,
    ) -> EnergyModel {
        let ctrl_pj_per_cycle = area.control_um2 * params.dyn_pj_per_um2_cycle;
        let dp_pj_per_cycle = module
            .datapaths
            .iter()
            .map(|d| d.area_um2 * params.dyn_pj_per_um2_cycle * d.energy_per_cycle)
            .collect();
        let leak_uw = area.total_um2() * params.leak_uw_per_um2;
        EnergyModel {
            ctrl_pj_per_cycle,
            dp_pj_per_cycle,
            leak_uw,
            f_nominal_hz,
            vnom,
        }
    }

    /// Scales the leakage power so that, for a job with the given average
    /// dynamic energy per cycle, leakage contributes `share` of total
    /// energy at the nominal operating point. This stands in for the
    /// paper's gate-level leakage characterization: the *share* at nominal
    /// is the calibrated quantity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= share < 1`.
    pub fn calibrate_leakage(&mut self, avg_dyn_pj_per_cycle: f64, share: f64) {
        assert!((0.0..1.0).contains(&share), "leak share out of range");
        // leak_pj_per_cycle = share/(1-share) * dyn; P[µW] = pJ/cycle * f[MHz]...
        // at nominal: leak energy per cycle = leak_uw / f_hz * 1e6 (pJ).
        let target_leak_pj_per_cycle = share / (1.0 - share) * avg_dyn_pj_per_cycle;
        self.leak_uw = target_leak_pj_per_cycle * self.f_nominal_hz / 1e6;
    }

    /// Nominal frequency in Hz.
    pub fn f_nominal_hz(&self) -> f64 {
        self.f_nominal_hz
    }

    /// Leakage power at nominal voltage, in µW.
    pub fn leak_uw(&self) -> f64 {
        self.leak_uw
    }

    /// Dynamic energy (pJ) of a job at *nominal* voltage, from its cycle
    /// count and per-datapath activity.
    ///
    /// # Panics
    ///
    /// Panics if `dp_active` length mismatches the module.
    pub fn dynamic_pj_nominal(&self, cycles: u64, dp_active: &[u64]) -> f64 {
        assert_eq!(dp_active.len(), self.dp_pj_per_cycle.len());
        let mut e = cycles as f64 * self.ctrl_pj_per_cycle;
        for (a, pj) in dp_active.iter().zip(&self.dp_pj_per_cycle) {
            e += *a as f64 * pj;
        }
        e
    }

    /// Total job energy (pJ) at an operating point, given the leakage
    /// voltage exponent from `params`.
    pub fn job_pj(
        &self,
        cycles: u64,
        dp_active: &[u64],
        point: OperatingPoint,
        leak_voltage_exp: f64,
    ) -> f64 {
        let vn = point.volts / self.vnom;
        let dynamic = self.dynamic_pj_nominal(cycles, dp_active) * vn * vn;
        let time_us = cycles as f64 / (self.f_nominal_hz * point.freq_ratio) * 1e6;
        let leak = self.leak_uw * vn.powf(leak_voltage_exp) * time_us;
        dynamic + leak
    }

    /// Execution time (seconds) of `cycles` at an operating point.
    pub fn time_s(&self, cycles: u64, point: OperatingPoint) -> f64 {
        cycles as f64 / (self.f_nominal_hz * point.freq_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use predvfs_rtl::AsicAreaModel;

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("m");
        let fsm = b.fsm("ctrl", &["A", "B"]);
        b.trans(&fsm, "A", "B", E::one());
        b.datapath_compute("pipe", fsm.in_state("A"), 10_000.0, 1.0, 100, 2);
        b.done_when(fsm.in_state("B"));
        b.build().unwrap()
    }

    fn model() -> EnergyModel {
        let m = toy();
        let area = AsicAreaModel::default().area(&m);
        EnergyModel::new(&m, &area, &PowerParams::default(), 250e6, 1.0)
    }

    fn pt(volts: f64, ratio: f64) -> OperatingPoint {
        OperatingPoint {
            volts,
            freq_ratio: ratio,
        }
    }

    #[test]
    fn dynamic_energy_scales_with_v_squared() {
        let em = model();
        let nominal = em.job_pj(1000, &[500], pt(1.0, 1.0), 1.0);
        let mut low = model();
        low.calibrate_leakage(0.0, 0.0); // kill leakage for a pure check
        let half_v = low.job_pj(1000, &[500], pt(0.5, 0.3), 1.0);
        let full_v = low.job_pj(1000, &[500], pt(1.0, 1.0), 1.0);
        assert!((half_v / full_v - 0.25).abs() < 1e-9);
        assert!(nominal >= full_v, "leakage adds energy");
    }

    #[test]
    fn leakage_grows_when_running_slower() {
        let mut em = model();
        em.calibrate_leakage(em.dynamic_pj_nominal(1, &[0]), 0.25);
        let fast = em.job_pj(10_000, &[0], pt(1.0, 1.0), 1.0);
        let slow_same_v = em.job_pj(10_000, &[0], pt(1.0, 0.5), 1.0);
        assert!(slow_same_v > fast, "same V, longer time, more leakage");
    }

    #[test]
    fn calibrated_leak_share_holds_at_nominal() {
        let mut em = model();
        let dyn_per_cycle = em.dynamic_pj_nominal(1000, &[1000]) / 1000.0;
        em.calibrate_leakage(dyn_per_cycle, 0.25);
        let total = em.job_pj(1000, &[1000], pt(1.0, 1.0), 1.0);
        let dynamic = em.dynamic_pj_nominal(1000, &[1000]);
        let share = (total - dynamic) / total;
        assert!((share - 0.25).abs() < 1e-9, "share {share}");
    }

    #[test]
    #[should_panic(expected = "leak share out of range")]
    fn leak_share_must_be_fraction() {
        let mut em = model();
        em.calibrate_leakage(1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn dp_activity_arity_checked() {
        let em = model();
        // toy() has one datapath; passing two activity counts must panic.
        em.dynamic_pj_nominal(10, &[1, 2]);
    }

    #[test]
    fn time_scales_inverse_frequency() {
        let em = model();
        let t1 = em.time_s(250_000_000, pt(1.0, 1.0));
        assert!((t1 - 1.0).abs() < 1e-12);
        let t2 = em.time_s(250_000_000, pt(0.625, 0.5));
        assert!((t2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lower_level_saves_energy_despite_leakage() {
        let mut em = model();
        em.calibrate_leakage(em.dynamic_pj_nominal(1000, &[800]) / 1000.0, 0.25);
        let nominal = em.job_pj(100_000, &[80_000], pt(1.0, 1.0), 1.0);
        let low = em.job_pj(100_000, &[80_000], pt(0.625, 0.48), 1.0);
        assert!(low < nominal);
        // But the saving is less than the pure V² ratio because of leakage.
        assert!(low / nominal > 0.625f64.powi(2));
    }
}
