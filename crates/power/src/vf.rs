//! Voltage–frequency characterization.
//!
//! Substitutes for the paper's SPICE FO4-chain methodology (§4.1): the
//! classic alpha-power-law delay model gives the maximum frequency a design
//! sustains at a given supply voltage. For FPGAs, a published-curve-shaped
//! lookup table with linear interpolation mirrors the Kintex-7
//! characterization the paper cites.

/// Maps supply voltage to achievable frequency, relative to nominal.
pub trait VoltFreqCurve {
    /// Frequency at `volts` as a fraction of the nominal frequency.
    /// `freq_ratio(nominal) == 1.0`.
    fn freq_ratio(&self, volts: f64) -> f64;

    /// The nominal supply voltage.
    fn nominal_volts(&self) -> f64;
}

/// Alpha-power-law MOSFET delay model: `f(V) ∝ (V − Vt)^α / V`.
///
/// With the default `Vt = 0.35 V`, `α = 1.4` (65 nm-ish), the ratio at
/// 0.625 V is ≈ 0.48 — the same ballpark as the paper's measured curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPowerCurve {
    /// Threshold voltage in volts.
    pub vt: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Nominal supply in volts.
    pub vnom: f64,
}

impl Default for AlphaPowerCurve {
    fn default() -> Self {
        AlphaPowerCurve {
            vt: 0.35,
            alpha: 1.4,
            vnom: 1.0,
        }
    }
}

impl VoltFreqCurve for AlphaPowerCurve {
    fn freq_ratio(&self, volts: f64) -> f64 {
        assert!(
            volts > self.vt,
            "supply {volts} V at or below threshold {} V",
            self.vt
        );
        let num = (volts - self.vt).powf(self.alpha) / volts;
        let den = (self.vnom - self.vt).powf(self.alpha) / self.vnom;
        num / den
    }

    fn nominal_volts(&self) -> f64 {
        self.vnom
    }
}

/// Piecewise-linear voltage–frequency table (FPGA characterization data).
#[derive(Debug, Clone, PartialEq)]
pub struct TableCurve {
    points: Vec<(f64, f64)>,
    vnom: f64,
}

impl TableCurve {
    /// Builds a curve from `(volts, freq_ratio)` samples; the highest
    /// voltage is taken as nominal.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or points are not
    /// strictly increasing in voltage.
    pub fn new(mut points: Vec<(f64, f64)>) -> TableCurve {
        assert!(points.len() >= 2, "need at least two V-f samples");
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN voltage"));
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate voltage sample {}", w[0].0);
        }
        let vnom = points.last().expect("nonempty").0;
        TableCurve { points, vnom }
    }

    /// The published Kintex-7 style run-time scaling curve used for the
    /// FPGA experiments: 1.0 V nominal down to 0.7 V at ≈ 55 % frequency.
    pub fn kintex7() -> TableCurve {
        TableCurve::new(vec![
            (0.70, 0.55),
            (0.75, 0.63),
            (0.80, 0.71),
            (0.85, 0.79),
            (0.90, 0.86),
            (0.95, 0.93),
            (1.00, 1.00),
        ])
    }
}

impl VoltFreqCurve for TableCurve {
    fn freq_ratio(&self, volts: f64) -> f64 {
        let pts = &self.points;
        if volts <= pts[0].0 {
            return pts[0].1;
        }
        if volts >= pts[pts.len() - 1].0 {
            // Extrapolate linearly above nominal (boost levels).
            let (v0, r0) = pts[pts.len() - 2];
            let (v1, r1) = pts[pts.len() - 1];
            return r1 + (volts - v1) * (r1 - r0) / (v1 - v0);
        }
        for w in pts.windows(2) {
            let (v0, r0) = w[0];
            let (v1, r1) = w[1];
            if volts <= v1 {
                let t = (volts - v0) / (v1 - v0);
                return r0 + t * (r1 - r0);
            }
        }
        unreachable!("interpolation ranges cover the input")
    }

    fn nominal_volts(&self) -> f64 {
        self.vnom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_power_is_monotone_and_normalized() {
        let c = AlphaPowerCurve::default();
        assert!((c.freq_ratio(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for v in [0.625, 0.7, 0.775, 0.85, 0.925, 1.0, 1.08] {
            let r = c.freq_ratio(v);
            assert!(r > prev, "curve must be monotone at {v}");
            prev = r;
        }
        let low = c.freq_ratio(0.625);
        assert!((0.42..0.55).contains(&low), "0.625 V ratio {low}");
        assert!(c.freq_ratio(1.08) > 1.05);
    }

    #[test]
    #[should_panic(expected = "at or below threshold")]
    fn alpha_power_rejects_subthreshold() {
        AlphaPowerCurve::default().freq_ratio(0.3);
    }

    #[test]
    fn table_curve_interpolates() {
        let c = TableCurve::kintex7();
        assert_eq!(c.nominal_volts(), 1.0);
        assert!((c.freq_ratio(1.0) - 1.0).abs() < 1e-12);
        assert!((c.freq_ratio(0.70) - 0.55).abs() < 1e-12);
        let mid = c.freq_ratio(0.725);
        assert!((mid - 0.59).abs() < 1e-9, "got {mid}");
        // Boost extrapolation stays monotone.
        assert!(c.freq_ratio(1.08) > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn table_needs_two_points() {
        TableCurve::new(vec![(1.0, 1.0)]);
    }
}
