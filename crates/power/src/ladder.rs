//! Discrete DVFS operating points.
//!
//! Real hardware exposes a handful of voltage/frequency pairs. The paper
//! evaluates six equally-spaced levels from 1.0 V down to 0.625 V for ASIC
//! accelerators, seven from 1.0 V to 0.7 V for FPGAs, and a 1.08 V boost
//! level for eliminating residual deadline misses (§4.2, Fig. 14).

use crate::vf::VoltFreqCurve;

/// One DVFS level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub volts: f64,
    /// Frequency as a fraction of nominal.
    pub freq_ratio: f64,
}

/// An ordered set of operating points, optionally with a boost level.
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder {
    points: Vec<OperatingPoint>,
    boost: Option<OperatingPoint>,
}

impl Ladder {
    /// Builds a ladder by sampling `curve` at the given voltages.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is empty.
    pub fn from_voltages(curve: &dyn VoltFreqCurve, volts: &[f64]) -> Ladder {
        assert!(!volts.is_empty(), "ladder needs at least one level");
        let mut points: Vec<OperatingPoint> = volts
            .iter()
            .map(|&v| OperatingPoint {
                volts: v,
                freq_ratio: curve.freq_ratio(v),
            })
            .collect();
        points.sort_by(|a, b| a.freq_ratio.partial_cmp(&b.freq_ratio).expect("NaN"));
        Ladder {
            points,
            boost: None,
        }
    }

    /// The paper's ASIC configuration: six equally-spaced levels from
    /// 0.625 V to 1.0 V.
    pub fn asic(curve: &dyn VoltFreqCurve) -> Ladder {
        Ladder::from_voltages(curve, &[0.625, 0.7, 0.775, 0.85, 0.925, 1.0])
    }

    /// The paper's FPGA configuration: seven equally-spaced levels from
    /// 0.7 V to 1.0 V.
    pub fn fpga(curve: &dyn VoltFreqCurve) -> Ladder {
        Ladder::from_voltages(curve, &[0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00])
    }

    /// Adds a boost level sampled from `curve` (the paper uses 1.08 V).
    pub fn with_boost(mut self, curve: &dyn VoltFreqCurve, volts: f64) -> Ladder {
        self.boost = Some(OperatingPoint {
            volts,
            freq_ratio: curve.freq_ratio(volts),
        });
        self
    }

    /// Number of regular (non-boost) levels.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the ladder has no levels (never constructible).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The level at `index` (0 = slowest).
    pub fn level(&self, index: usize) -> OperatingPoint {
        self.points[index]
    }

    /// All regular levels, slowest first.
    pub fn levels(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The boost level, if configured.
    pub fn boost(&self) -> Option<OperatingPoint> {
        self.boost
    }

    /// Index of the nominal (fastest regular) level.
    pub fn nominal_index(&self) -> usize {
        self.points.len() - 1
    }

    /// The lowest level whose frequency ratio is at least `required`, or
    /// `None` when even the nominal level is too slow (the caller may then
    /// fall back to nominal or boost).
    pub fn lowest_meeting(&self, required: f64) -> Option<usize> {
        self.points
            .iter()
            .position(|p| p.freq_ratio + 1e-12 >= required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf::{AlphaPowerCurve, TableCurve};

    #[test]
    fn asic_ladder_has_six_ascending_levels() {
        let curve = AlphaPowerCurve::default();
        let l = Ladder::asic(&curve);
        assert_eq!(l.len(), 6);
        assert!(!l.is_empty());
        for w in l.levels().windows(2) {
            assert!(w[0].freq_ratio < w[1].freq_ratio);
            assert!(w[0].volts < w[1].volts);
        }
        assert!((l.level(l.nominal_index()).freq_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fpga_ladder_has_seven_levels() {
        let curve = TableCurve::kintex7();
        assert_eq!(Ladder::fpga(&curve).len(), 7);
    }

    #[test]
    fn lowest_meeting_picks_minimum_sufficient() {
        let curve = AlphaPowerCurve::default();
        let l = Ladder::asic(&curve);
        // Slow requirement: slowest level suffices.
        assert_eq!(l.lowest_meeting(0.1), Some(0));
        // Exactly nominal.
        assert_eq!(l.lowest_meeting(1.0), Some(l.nominal_index()));
        // Impossible without boost.
        assert_eq!(l.lowest_meeting(1.05), None);
        // Mid requirement lands strictly between.
        let idx = l.lowest_meeting(0.65).unwrap();
        assert!(l.level(idx).freq_ratio >= 0.65);
        if idx > 0 {
            assert!(l.level(idx - 1).freq_ratio < 0.65);
        }
    }

    #[test]
    fn from_voltages_sorts_unordered_input() {
        let curve = AlphaPowerCurve::default();
        let l = Ladder::from_voltages(&curve, &[1.0, 0.625, 0.85]);
        assert_eq!(l.len(), 3);
        assert!(l.level(0).volts < l.level(1).volts);
        assert!(l.level(1).volts < l.level(2).volts);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_ladder_rejected() {
        let curve = AlphaPowerCurve::default();
        Ladder::from_voltages(&curve, &[]);
    }

    #[test]
    fn boost_level_attaches() {
        let curve = AlphaPowerCurve::default();
        let l = Ladder::asic(&curve).with_boost(&curve, 1.08);
        let b = l.boost().unwrap();
        assert!(b.freq_ratio > 1.0);
        assert_eq!(b.volts, 1.08);
    }
}
