//! Online model adaptation: drift detection, reactive fallback, and
//! warm-started refits (an extension beyond the paper).
//!
//! The paper trains the execution-time model exactly once, offline. A
//! deployed accelerator sees its input distribution move — a codec
//! switches profiles, a cache warms differently, silicon ages — and a
//! stale model silently under-predicts until every job misses. Online
//! frequency-scaling systems (Ilager et al.'s deadline-aware GPU scaling
//! being the closest published analogue) retrain the model on recent
//! observations instead.
//!
//! [`OnlineTrainer`] keeps a sliding window of `(features, actual cycles)`
//! observations and watches two drift signals over the most recent jobs:
//! the *under-prediction rate* (the error direction that causes deadline
//! misses) and the EWMA *residual ratio* actual/predicted — the same
//! signal shape [`crate::hybrid::HybridController`] corrects with. When
//! either trips its threshold the trainer declares the model degraded;
//! [`AdaptiveController`] then routes decisions through a tuned reactive
//! [`PidController`] (which needs no model) while observations accumulate,
//! and recovers by refitting the model on the post-drift window with a
//! FISTA solve **warm-started from the current coefficients**
//! ([`predvfs_opt::AsymLasso::fit_from`]) — drift is usually a scaling or
//! shift of the existing relation, so the warm start converges in a few
//! iterations where a cold start would take thousands.
//!
//! The refit is restricted to the offline-selected support: the hardware
//! slice only computes the features the offline Lasso selected, so those
//! are the only columns the window can observe. Support features that are
//! constant in the window keep their offline coefficients (their effect is
//! indistinguishable from the bias on that data); the rest are refit with
//! the paper's asymmetric squared loss, keeping the recovered model
//! conservative.

use std::collections::VecDeque;

use predvfs_opt::{AsymLasso, FitOptions, Matrix, Standardizer};

use crate::controllers::{Decision, DvfsController, JobContext, PidController};
use crate::dvfs::DvfsModel;
use crate::error::CoreError;
use crate::model::ExecTimeModel;
use crate::slicer::{SlicePredictor, SliceRunner};

/// Hyper-parameters of the online trainer.
#[derive(Debug, Clone, Copy)]
pub struct OnlineTrainerConfig {
    /// Sliding-window capacity (observations kept for refitting).
    pub window: usize,
    /// Number of most-recent jobs the drift detector looks at.
    pub detect_window: usize,
    /// Fraction of the detect window that must under-predict to declare
    /// drift (under-prediction = actual above predicted).
    pub underpred_threshold: f64,
    /// Slack band for the under-prediction flag: a job only counts as
    /// under-predicted when `actual > predicted·(1 + slack)`. Matches the
    /// predictive controller's deadline margin — an error the margin
    /// absorbs is not drift.
    pub underpred_slack: f64,
    /// EWMA residual-ratio level (actual/predicted) that declares drift on
    /// its own; catches slow inflation that never trips the rate test.
    pub ratio_threshold: f64,
    /// EWMA smoothing factor for the residual ratio.
    pub ewma_alpha: f64,
    /// Post-drift observations required before a refit is attempted.
    pub min_refit_samples: usize,
    /// Under-prediction penalty weight `α` of the refit (the offline
    /// trainer's conservative asymmetry).
    pub alpha: f64,
    /// Refit solver iteration cap.
    pub max_iter: usize,
}

impl Default for OnlineTrainerConfig {
    fn default() -> Self {
        OnlineTrainerConfig {
            window: 64,
            detect_window: 8,
            underpred_threshold: 0.5,
            underpred_slack: 0.05,
            ratio_threshold: 1.25,
            ewma_alpha: 0.2,
            min_refit_samples: 12,
            alpha: 8.0,
            max_iter: 2000,
        }
    }
}

/// Configuration of a [`CalibrationMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Rolling-window capacity (prediction/actual pairs kept).
    pub window: usize,
    /// Slack band for the under-prediction flag: a job counts as
    /// under-predicted only when `actual > predicted·(1 + slack)`.
    pub underpred_slack: f64,
    /// Coverage below this floor (with a full window) raises
    /// [`CalibrationMonitor::alert`].
    pub coverage_floor: f64,
    /// EWMA smoothing factor for the residual ratio.
    pub ewma_alpha: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        let t = OnlineTrainerConfig::default();
        CalibrationConfig {
            window: t.detect_window,
            underpred_slack: t.underpred_slack,
            coverage_floor: 1.0 - t.underpred_threshold,
            ewma_alpha: t.ewma_alpha,
        }
    }
}

/// Rolling-window prediction-quality monitor over `(predicted, actual)`
/// cycle pairs: under-prediction rate (the error direction that costs
/// deadline misses), its complement *coverage* (the fraction of jobs the
/// prediction covered within the slack band), mean absolute percentage
/// error, and the EWMA residual ratio actual/predicted.
///
/// [`OnlineTrainer`] owns one and derives its drift decision from the
/// same window, so the refit trigger and the exported calibration gauges
/// can never disagree about what the recent past looked like.
#[derive(Debug, Clone)]
pub struct CalibrationMonitor {
    config: CalibrationConfig,
    /// `(predicted, actual)` pairs, oldest first.
    pairs: VecDeque<(f64, f64)>,
    /// EWMA of actual/predicted.
    ratio: f64,
}

impl CalibrationMonitor {
    /// An empty monitor.
    pub fn new(config: CalibrationConfig) -> CalibrationMonitor {
        CalibrationMonitor {
            config: CalibrationConfig {
                window: config.window.max(1),
                ..config
            },
            pairs: VecDeque::new(),
            ratio: 1.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Records one completed job's raw prediction and measured cycles.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        self.pairs.push_back((predicted, actual));
        while self.pairs.len() > self.config.window {
            self.pairs.pop_front();
        }
        if predicted > 0.0 {
            let a = self.config.ewma_alpha;
            self.ratio = (1.0 - a) * self.ratio + a * (actual / predicted);
        }
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.pairs.len() >= self.config.window
    }

    fn is_under(&self, predicted: f64, actual: f64) -> bool {
        actual > predicted * (1.0 + self.config.underpred_slack)
    }

    /// Fraction of windowed jobs whose actual exceeded the prediction by
    /// more than the slack band (0 when empty).
    pub fn under_rate(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let under = self
            .pairs
            .iter()
            .filter(|&&(p, a)| self.is_under(p, a))
            .count();
        under as f64 / self.pairs.len() as f64
    }

    /// Fraction of windowed jobs the prediction covered: `1 − under_rate`
    /// (1 when empty — no evidence of miscalibration).
    pub fn coverage(&self) -> f64 {
        1.0 - self.under_rate()
    }

    /// Mean absolute percentage error over the window (0 when empty;
    /// pairs with a non-positive actual are skipped).
    pub fn mape(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(p, a) in &self.pairs {
            if a > 0.0 {
                sum += (a - p).abs() / a;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The EWMA residual-ratio estimate (actual / predicted).
    pub fn residual_ratio(&self) -> f64 {
        self.ratio
    }

    /// Length of the trailing run of under-predicting pairs — the
    /// observations that are definitely post-drift.
    pub fn trailing_under(&self) -> usize {
        self.pairs
            .iter()
            .rev()
            .take_while(|&&(p, a)| self.is_under(p, a))
            .count()
    }

    /// Whether coverage has fallen below the configured floor over a full
    /// window. Partial windows never alert — a single early
    /// under-prediction is not a calibration statement.
    pub fn alert(&self) -> bool {
        self.is_full() && self.coverage() < self.config.coverage_floor
    }

    /// Clears the window and resets the residual ratio (after a refit:
    /// the old pairs describe the replaced model).
    pub fn reset(&mut self) {
        self.pairs.clear();
        self.ratio = 1.0;
    }
}

/// Health of the online model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptState {
    /// Predictions track reality; the model drives decisions.
    Healthy,
    /// Drift detected; decisions fall back to the reactive controller
    /// until a refit lands.
    Degraded,
}

/// Sliding-window drift detector and warm-started refitter.
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    config: OnlineTrainerConfig,
    /// `(features, actual cycles)` observations, oldest first.
    window: VecDeque<(Vec<f64>, f64)>,
    /// Prediction-quality monitor over the detect window; drift decisions
    /// are derived from it, so exported calibration gauges and the refit
    /// trigger always describe the same window.
    monitor: CalibrationMonitor,
    state: AdaptState,
    refits: usize,
    samples_since_drift: usize,
}

impl OnlineTrainer {
    /// Creates a trainer in the [`AdaptState::Healthy`] state.
    pub fn new(config: OnlineTrainerConfig) -> OnlineTrainer {
        OnlineTrainer {
            config,
            window: VecDeque::new(),
            monitor: CalibrationMonitor::new(CalibrationConfig {
                window: config.detect_window,
                underpred_slack: config.underpred_slack,
                coverage_floor: 1.0 - config.underpred_threshold,
                ewma_alpha: config.ewma_alpha,
            }),
            state: AdaptState::Healthy,
            refits: 0,
            samples_since_drift: 0,
        }
    }

    /// Current model-health state.
    pub fn state(&self) -> AdaptState {
        self.state
    }

    /// Number of refits installed so far.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// The EWMA residual-ratio estimate (actual / predicted).
    pub fn residual_ratio(&self) -> f64 {
        self.monitor.residual_ratio()
    }

    /// The prediction-quality monitor the drift decision is derived from.
    pub fn monitor(&self) -> &CalibrationMonitor {
        &self.monitor
    }

    /// Observations currently held in the sliding window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Records one completed job: the features the slice computed, the
    /// model's raw prediction, and the measured execution cycles. Updates
    /// the drift signals and may transition to [`AdaptState::Degraded`].
    pub fn record(&mut self, features: &[f64], predicted: f64, actual: f64) {
        self.window.push_back((features.to_vec(), actual));
        while self.window.len() > self.config.window {
            self.window.pop_front();
        }
        self.monitor.record(predicted, actual);
        match self.state {
            AdaptState::Healthy => {
                if self.drift_detected() {
                    self.state = AdaptState::Degraded;
                    // Pre-drift rows would poison the refit; keep only the
                    // trailing run of under-predicting observations — the
                    // ones that are definitely post-drift.
                    let trailing = self.monitor.trailing_under().max(1);
                    while self.window.len() > trailing {
                        self.window.pop_front();
                    }
                    self.samples_since_drift = self.window.len();
                }
            }
            AdaptState::Degraded => self.samples_since_drift += 1,
        }
    }

    fn drift_detected(&self) -> bool {
        if !self.monitor.is_full() {
            return false;
        }
        self.monitor.under_rate() >= self.config.underpred_threshold
            || self.monitor.residual_ratio() >= self.config.ratio_threshold
    }

    /// Attempts a recovery refit of `model` on the post-drift window.
    ///
    /// Returns the refit model once the trainer is degraded and enough
    /// post-drift samples have accumulated; `None` otherwise. On success
    /// the trainer returns to [`AdaptState::Healthy`] with its drift
    /// signals reset — if the refit is still wrong, the detector simply
    /// fires again and another (warm-started) refit follows, each one
    /// counted by [`OnlineTrainer::refits`].
    pub fn try_refit(&mut self, model: &ExecTimeModel) -> Option<ExecTimeModel> {
        if self.state != AdaptState::Degraded
            || self.samples_since_drift < self.config.min_refit_samples
        {
            return None;
        }
        match self.refit(model) {
            Some(refit) => {
                self.refits += 1;
                predvfs_obs::global().counter_add("predvfs_online_refits_total", 1);
                self.state = AdaptState::Healthy;
                self.monitor.reset();
                self.samples_since_drift = 0;
                Some(refit)
            }
            None => {
                // Degenerate window: stay on the fallback and wait for
                // another batch before trying again.
                self.samples_since_drift = 0;
                None
            }
        }
    }

    /// Warm-started asymmetric least-squares refit restricted to the
    /// model's support. Returns `None` when the window is unusable.
    fn refit(&self, model: &ExecTimeModel) -> Option<ExecTimeModel> {
        let n = self.window.len();
        if n == 0 {
            return None;
        }
        let bias = model.schema().bias_index().unwrap_or(0);
        let mut cols: Vec<usize> = model.selected().to_vec();
        if !cols.contains(&bias) {
            cols.push(bias);
            cols.sort_unstable();
        }
        let k = cols.len();
        let bias_j = cols.iter().position(|&c| c == bias).expect("bias kept");

        let mut w = Matrix::zeros(n, k);
        let mut y = Vec::with_capacity(n);
        for (r, (features, actual)) in self.window.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                *w.get_mut(r, j) = features[c];
            }
            y.push(*actual);
        }

        // Support features constant in the window are indistinguishable
        // from the bias on this data: keep their offline coefficients,
        // subtract their (constant) contribution from the target, and fit
        // the rest.
        let mut frozen = vec![false; k];
        for j in 0..k {
            if j == bias_j {
                continue;
            }
            let first = w.get(0, j);
            if (1..n).all(|r| w.get(r, j) == first) {
                frozen[j] = true;
                let coeff = model.coeffs()[cols[j]];
                for (r, yr) in y.iter_mut().enumerate() {
                    *yr -= coeff * w.get(r, j);
                }
                for r in 0..n {
                    *w.get_mut(r, j) = 0.0;
                }
            }
        }

        let std = Standardizer::fit(&w);
        let xs = std.transform(&w);
        let y_scale = y.iter().map(|v: &f64| v.abs()).sum::<f64>() / n as f64;
        let y_scale = if y_scale > 0.0 { y_scale } else { 1.0 };
        let yn: Vec<f64> = y.iter().map(|v| v / y_scale).collect();

        // Map the current raw-space coefficients into the standardized,
        // target-normalized space (the inverse of `fold_back`) so FISTA
        // starts at — typically near — the pre-drift optimum.
        let mut beta0 = vec![0.0; k];
        let mut bias0 = model.coeffs()[bias];
        for j in 0..k {
            if j == bias_j || frozen[j] {
                continue;
            }
            let raw = model.coeffs()[cols[j]];
            beta0[j] = raw * std.scale(j);
            bias0 += raw * std.mean(j);
        }
        beta0[bias_j] = bias0;
        for b in &mut beta0 {
            *b /= y_scale;
        }

        let fit = AsymLasso {
            x: &xs,
            y: &yn,
            alpha: self.config.alpha,
            gamma: 0.0,
            unpenalized: vec![true; k],
        }
        .fit_from(
            &beta0,
            FitOptions {
                max_iter: self.config.max_iter,
                ..FitOptions::default()
            },
        );
        crate::train::record_solver_metrics(predvfs_obs::global(), &fit);

        let mut raw = std.fold_back(&fit.beta, bias_j);
        for c in &mut raw {
            *c *= y_scale;
        }
        if raw.iter().any(|c| !c.is_finite()) {
            return None;
        }
        let mut coeffs = model.coeffs().to_vec();
        for (j, &c) in cols.iter().enumerate() {
            if !frozen[j] {
                coeffs[c] = raw[j];
            }
        }
        Some(ExecTimeModel::new(model.schema().clone(), coeffs))
    }
}

/// Predictive controller with online adaptation: slice → model → minimal
/// level while healthy; reactive PID fallback while degraded; recovery by
/// warm-started refit.
///
/// Unlike [`crate::PredictiveController`] the model is *owned*, because
/// refits replace it mid-run. The slice runs on every job even while
/// degraded — the trainer needs its features to refit — so slice overheads
/// are always charged; the reactive fallback's 10 % margin absorbs the
/// slice time its level choice does not account for.
#[derive(Debug, Clone)]
pub struct AdaptiveController<'p> {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    runner: SliceRunner<'p>,
    model: ExecTimeModel,
    fallback: PidController,
    trainer: OnlineTrainer,
    /// Features and raw model prediction of the job awaiting `observe`.
    pending: Option<(Vec<f64>, f64)>,
}

impl<'p> AdaptiveController<'p> {
    /// Creates the controller from a generated slice predictor, an owned
    /// (typically offline-trained) model, and the trainer configuration.
    /// The PID fallback uses the paper's tuned gains and 10 % margin.
    pub fn new(
        dvfs: DvfsModel,
        f_nominal_hz: f64,
        predictor: &'p SlicePredictor,
        model: ExecTimeModel,
        config: OnlineTrainerConfig,
    ) -> AdaptiveController<'p> {
        let fallback = PidController::tuned(dvfs.clone(), f_nominal_hz);
        AdaptiveController {
            dvfs,
            f_nominal_hz,
            runner: predictor.runner(),
            model,
            fallback,
            trainer: OnlineTrainer::new(config),
            pending: None,
        }
    }

    /// The current (possibly refit) model.
    pub fn model(&self) -> &ExecTimeModel {
        &self.model
    }

    /// Number of refits installed so far.
    pub fn refits(&self) -> usize {
        self.trainer.refits()
    }

    /// Current model-health state.
    pub fn state(&self) -> AdaptState {
        self.trainer.state()
    }

    /// True while decisions come from the reactive fallback.
    pub fn is_degraded(&self) -> bool {
        self.trainer.state() == AdaptState::Degraded
    }

    /// The drift detector / refitter.
    pub fn trainer(&self) -> &OnlineTrainer {
        &self.trainer
    }
}

impl DvfsController for AdaptiveController<'_> {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let run = self.runner.run(ctx.job)?;
        let predicted = self.model.predict_cycles(&run.features);
        let decision = if self.is_degraded() {
            // The reactive fallback picks the level; the slice still ran
            // (its features feed the refit), so its overheads are charged.
            let mut d = self.fallback.decide(ctx)?;
            d.slice_cycles = run.cycles;
            d.slice_dp_active = run.dp_active;
            d
        } else {
            let slice_time_s = run.cycles / self.f_nominal_hz;
            let choice =
                self.dvfs
                    .choose(predicted, self.f_nominal_hz, ctx.deadline_s, slice_time_s);
            Decision {
                choice,
                slice_cycles: run.cycles,
                slice_dp_active: run.dp_active,
                predicted_cycles: Some(predicted),
            }
        };
        self.pending = Some((run.features, predicted));
        Ok(decision)
    }

    fn observe(&mut self, actual_cycles: u64) {
        // Keep the fallback's history warm at all times so it is ready the
        // moment drift is declared.
        self.fallback.observe(actual_cycles);
        if let Some((features, predicted)) = self.pending.take() {
            self.trainer
                .record(&features, predicted, actual_cycles as f64);
            if let Some(refit) = self.trainer.try_refit(&self.model) {
                self.model = refit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use predvfs_rtl::{Analysis, FeatureSchema};

    fn schema() -> FeatureSchema {
        let mut b = ModuleBuilder::new("t");
        let d = b.input("d", 8);
        let fsm = b.fsm("f", &["A", "W", "B"]);
        b.timed(&fsm, "A", "W", "B", d, E::one(), "c");
        b.done_when(fsm.in_state("B"));
        let m = b.build().unwrap();
        FeatureSchema::from_analysis(&m, &Analysis::run(&m))
    }

    /// A model `cycles = 200 + 3·x` over one selected feature.
    fn model_and_col(schema: &FeatureSchema) -> (ExecTimeModel, usize, usize) {
        let bias = schema.bias_index().unwrap_or(0);
        let col = (0..schema.len()).find(|&i| i != bias).expect("a feature");
        let mut coeffs = vec![0.0; schema.len()];
        coeffs[bias] = 200.0;
        coeffs[col] = 3.0;
        (ExecTimeModel::new(schema.clone(), coeffs), bias, col)
    }

    fn features(schema: &FeatureSchema, bias: usize, col: usize, v: f64) -> Vec<f64> {
        let mut f = vec![0.0; schema.len()];
        f[bias] = 1.0;
        f[col] = v;
        f
    }

    fn quick_config() -> OnlineTrainerConfig {
        OnlineTrainerConfig {
            window: 32,
            detect_window: 4,
            min_refit_samples: 6,
            ..OnlineTrainerConfig::default()
        }
    }

    #[test]
    fn calibration_monitor_tracks_rates_and_alerts() {
        let mut mon = CalibrationMonitor::new(CalibrationConfig {
            window: 4,
            underpred_slack: 0.05,
            coverage_floor: 0.5,
            ewma_alpha: 0.5,
        });
        assert!(mon.is_empty());
        assert_eq!(mon.coverage(), 1.0, "empty window is not miscalibrated");
        assert!(!mon.alert());
        // Two covered, one borderline (inside the slack band), one under.
        mon.record(100.0, 90.0);
        mon.record(100.0, 104.0);
        mon.record(100.0, 100.0);
        mon.record(100.0, 200.0);
        assert!(mon.is_full());
        assert!((mon.under_rate() - 0.25).abs() < 1e-12);
        assert!((mon.coverage() - 0.75).abs() < 1e-12);
        let want_mape = ((10.0 / 90.0) + (4.0 / 104.0) + 0.0 + (100.0 / 200.0)) / 4.0;
        assert!((mon.mape() - want_mape).abs() < 1e-12);
        assert_eq!(mon.trailing_under(), 1);
        assert!(!mon.alert(), "coverage 0.75 is above the 0.5 floor");
        // Two more under-predictions roll the covered pairs out.
        mon.record(100.0, 180.0);
        mon.record(100.0, 190.0);
        assert!((mon.under_rate() - 0.75).abs() < 1e-12);
        assert!(mon.alert(), "coverage 0.25 is below the 0.5 floor");
        assert!(mon.residual_ratio() > 1.0);
        assert_eq!(mon.trailing_under(), 3);
        mon.reset();
        assert!(mon.is_empty());
        assert_eq!(mon.residual_ratio(), 1.0);
        assert!(!mon.alert());
    }

    #[test]
    fn partial_window_never_alerts() {
        let mut mon = CalibrationMonitor::new(CalibrationConfig {
            window: 8,
            ..CalibrationConfig::default()
        });
        for _ in 0..7 {
            mon.record(100.0, 300.0);
        }
        assert_eq!(mon.coverage(), 0.0);
        assert!(
            !mon.alert(),
            "a partial window is not a calibration statement"
        );
        mon.record(100.0, 300.0);
        assert!(mon.alert());
    }

    #[test]
    fn trainer_drift_agrees_with_its_monitor() {
        let s = schema();
        let (model, bias, col) = model_and_col(&s);
        let mut tr = OnlineTrainer::new(quick_config());
        for i in 0..30 {
            let f = features(&s, bias, col, 10.0 + i as f64);
            let p = model.predict_cycles(&f);
            tr.record(&f, p, p * 2.0);
            // The shared window guarantees the exported calibration alert
            // and the refit trigger can never disagree: whenever the
            // trainer has degraded, the monitor is alerting (they read the
            // same pairs), and while the monitor stays quiet on a full
            // window the trainer stays healthy.
            if tr.state() == AdaptState::Degraded {
                assert!(
                    tr.monitor().alert(),
                    "degraded trainer with a quiet monitor"
                );
                return;
            }
            if tr.monitor().is_full() {
                assert!(
                    !tr.monitor().alert() || tr.state() == AdaptState::Degraded,
                    "alerting monitor with a healthy trainer"
                );
            }
        }
        panic!("sustained 2x under-prediction never degraded the trainer");
    }

    #[test]
    fn healthy_model_never_trips_the_detector() {
        let s = schema();
        let (model, bias, col) = model_and_col(&s);
        let mut tr = OnlineTrainer::new(quick_config());
        for i in 0..30 {
            let f = features(&s, bias, col, 10.0 + i as f64);
            let p = model.predict_cycles(&f);
            // The offline fit is conservative: actual runs a bit below.
            tr.record(&f, p, p * 0.97);
        }
        assert_eq!(tr.state(), AdaptState::Healthy);
        assert_eq!(tr.refits(), 0);
        assert!(tr.residual_ratio() < 1.0);
        assert!(tr.try_refit(&model).is_none());
    }

    #[test]
    fn underprediction_rate_trips_and_warm_refit_recovers() {
        let s = schema();
        let (model, bias, col) = model_and_col(&s);
        let mut tr = OnlineTrainer::new(quick_config());
        // Healthy phase.
        for i in 0..10 {
            let f = features(&s, bias, col, 20.0 + i as f64);
            let p = model.predict_cycles(&f);
            tr.record(&f, p, p * 0.97);
        }
        // Drift: everything suddenly takes 1.5x as long. Predictions come
        // from whatever model is currently installed, as in the controller.
        let scale = 1.5;
        let mut current = model.clone();
        for i in 0..40 {
            let f = features(&s, bias, col, 15.0 + 2.0 * i as f64);
            let p = current.predict_cycles(&f);
            tr.record(&f, p, model.predict_cycles(&f) * scale);
            if let Some(m) = tr.try_refit(&current) {
                current = m;
            }
        }
        assert_eq!(tr.refits(), 1, "exactly one refit should have landed");
        assert_eq!(tr.state(), AdaptState::Healthy);
        // The refit must track the drifted relation on held-out inputs.
        for v in [11.0, 42.0, 97.0] {
            let f = features(&s, bias, col, v);
            let want = model.predict_cycles(&f) * scale;
            let got = current.predict_cycles(&f);
            assert!(
                (got - want).abs() / want < 0.02,
                "x={v}: refit {got:.1} vs drifted truth {want:.1}"
            );
        }
    }

    #[test]
    fn residual_ratio_alone_can_trip() {
        let s = schema();
        let (model, bias, col) = model_and_col(&s);
        let mut tr = OnlineTrainer::new(OnlineTrainerConfig {
            underpred_threshold: 2.0, // unreachable: rate can be at most 1
            ratio_threshold: 1.2,
            ..quick_config()
        });
        for i in 0..30 {
            let f = features(&s, bias, col, 10.0 + i as f64);
            let p = model.predict_cycles(&f);
            tr.record(&f, p, p * 1.5);
            if tr.state() == AdaptState::Degraded {
                return;
            }
        }
        panic!(
            "residual ratio {} never crossed the threshold",
            tr.residual_ratio()
        );
    }

    #[test]
    fn detection_drops_pre_drift_window_rows() {
        let s = schema();
        let (model, bias, col) = model_and_col(&s);
        // Disable the ratio signal and require a full window of
        // under-predictions so detection lands exactly when the detect
        // window fills with drifted rows.
        let cfg = OnlineTrainerConfig {
            ratio_threshold: f64::INFINITY,
            underpred_threshold: 1.0,
            ..quick_config()
        };
        let mut tr = OnlineTrainer::new(cfg);
        for i in 0..20 {
            let f = features(&s, bias, col, 10.0 + i as f64);
            let p = model.predict_cycles(&f);
            tr.record(&f, p, p * 0.97);
        }
        assert_eq!(tr.window_len(), 20);
        for i in 0..cfg.detect_window {
            let f = features(&s, bias, col, 50.0 + i as f64);
            let p = model.predict_cycles(&f);
            tr.record(&f, p, p * 2.0);
        }
        assert_eq!(tr.state(), AdaptState::Degraded);
        assert_eq!(
            tr.window_len(),
            cfg.detect_window,
            "stale pre-drift observations must not survive into the refit"
        );
    }

    /// The full `is_degraded` hysteresis arc at the controller surface:
    /// healthy → drift engages the PID fallback → a consistent drifted
    /// relation accumulates, the refit lands and clears the fallback →
    /// the recovered model stays healthy on the new relation. The
    /// trainer-level tests above pin the detector; this one pins the
    /// *controller* wiring (decide/observe round-trips, fallback
    /// engagement, model swap).
    #[test]
    fn adaptive_controller_degrade_refit_recover_arc() {
        use crate::slicer::{SliceFlavor, SlicePredictor};
        use crate::train::{train, TrainerConfig};
        use predvfs_accel::{djpeg, WorkloadSize};
        use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};
        use predvfs_rtl::SliceOptions;

        let m = djpeg::build();
        let w = djpeg::workloads(31, WorkloadSize::Quick);
        let offline = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        let sp = SlicePredictor::generate(&m, &offline, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let curve = AlphaPowerCurve::default();
        let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
        let mut ctrl = AdaptiveController::new(dvfs, 250e6, &sp, offline.clone(), quick_config());
        let runner = sp.runner();
        let scale = 1.6;
        let mut jobs = w.test.iter().cycle();
        let mut index = 0usize;
        let mut step = |ctrl: &mut AdaptiveController<'_>, actual_scale: f64| {
            let job = jobs.next().expect("cycled iterator never ends");
            let raw = offline.predict_cycles(&runner.run(job).unwrap().features);
            ctrl.decide(&JobContext {
                job,
                deadline_s: 16.7e-3,
                index,
            })
            .unwrap();
            ctrl.observe((raw * actual_scale).round().max(1.0) as u64);
            index += 1;
        };

        // Phase 1 — healthy: actuals sit a touch under the offline fit.
        for _ in 0..8 {
            step(&mut ctrl, 0.97);
            assert!(
                !ctrl.is_degraded(),
                "conservative actuals must not trip the detector"
            );
        }
        assert_eq!(ctrl.refits(), 0);

        // Phase 2 — drift: every job now takes 1.6x the offline relation.
        let mut engaged = false;
        for _ in 0..64 {
            step(&mut ctrl, scale);
            if ctrl.is_degraded() {
                engaged = true;
                break;
            }
        }
        assert!(
            engaged,
            "sustained under-prediction must engage the fallback"
        );
        assert_eq!(ctrl.state(), AdaptState::Degraded);
        assert_eq!(ctrl.refits(), 0, "fallback engages before any refit lands");

        // Phase 3 — keep serving the drifted relation from inside the
        // fallback until the warm refit lands and clears it.
        let mut cleared = false;
        for _ in 0..64 {
            step(&mut ctrl, scale);
            if !ctrl.is_degraded() {
                cleared = true;
                break;
            }
        }
        assert!(
            cleared,
            "a consistent drifted relation must refit and recover"
        );
        assert_eq!(ctrl.refits(), 1, "recovery comes from exactly one refit");

        // The recovered model tracks the drifted relation on held-out jobs.
        for job in w.test.iter().take(5) {
            let f = runner.run(job).unwrap().features;
            let want = offline.predict_cycles(&f) * scale;
            let got = ctrl.model().predict_cycles(&f);
            assert!(
                (got - want).abs() / want < 0.05,
                "refit {got:.1} vs drifted truth {want:.1}"
            );
        }

        // Hysteresis: the refit model stays healthy on the new relation —
        // no flapping back into the fallback.
        for _ in 0..8 {
            step(&mut ctrl, scale);
            assert!(
                !ctrl.is_degraded(),
                "recovered controller must not re-trip on the relation it refit to"
            );
        }
        assert_eq!(ctrl.refits(), 1);
    }
}
