//! Hybrid predictive + reactive control (an extension beyond the paper).
//!
//! The slice-based predictor is blind to state the feature mining cannot
//! classify — djpeg's variable-latency Huffman drain is the shipped
//! example. Whatever that hidden state contributes shows up as a slowly
//! varying *residual* between predicted and actual time. The hybrid
//! controller keeps the look-ahead prediction but multiplies it by an
//! exponentially weighted estimate of that residual ratio, combining the
//! paper's predictive scheme with exactly the kind of feedback reactive
//! controllers use — but applied to the residual (slow, smooth) rather
//! than the raw execution time (fast, spiky), so it does not inherit the
//! PID's lag problem.

use crate::controllers::{Decision, DvfsController, JobContext};
use crate::dvfs::DvfsModel;
use crate::error::CoreError;
use crate::model::ExecTimeModel;
use crate::slicer::{SlicePredictor, SliceRunner};

/// Predictive controller with EWMA residual correction.
#[derive(Debug, Clone)]
pub struct HybridController<'p> {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    runner: SliceRunner<'p>,
    model: &'p ExecTimeModel,
    /// EWMA smoothing factor for the residual ratio.
    pub ewma_alpha: f64,
    /// When true, the correction may also *lower* predictions (reclaiming
    /// energy from a systematically over-predicting model); when false
    /// (default), corrections only ever make decisions more conservative.
    pub allow_downward: bool,
    ratio: f64,
    last_prediction: Option<f64>,
}

impl<'p> HybridController<'p> {
    /// Creates the controller; `ewma_alpha` defaults to 0.2.
    pub fn new(
        dvfs: DvfsModel,
        f_nominal_hz: f64,
        predictor: &'p SlicePredictor,
        model: &'p ExecTimeModel,
    ) -> HybridController<'p> {
        HybridController {
            dvfs,
            f_nominal_hz,
            runner: predictor.runner(),
            model,
            ewma_alpha: 0.2,
            allow_downward: false,
            ratio: 1.0,
            last_prediction: None,
        }
    }

    /// The current residual-ratio estimate (actual / predicted).
    pub fn residual_ratio(&self) -> f64 {
        self.ratio
    }
}

impl DvfsController for HybridController<'_> {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let run = self.runner.run(ctx.job)?;
        let raw = self.model.predict_cycles(&run.features);
        // Correct by the learned residual. By default never go *below*
        // the raw model's own conservative fit; with `allow_downward` a
        // persistent over-prediction bias is reclaimed as energy.
        let factor = if self.allow_downward {
            self.ratio
        } else {
            self.ratio.max(1.0)
        };
        let corrected = raw * factor;
        self.last_prediction = Some(raw);
        let slice_time_s = run.cycles / self.f_nominal_hz;
        let choice = self
            .dvfs
            .choose(corrected, self.f_nominal_hz, ctx.deadline_s, slice_time_s);
        Ok(Decision {
            choice,
            slice_cycles: run.cycles,
            slice_dp_active: run.dp_active,
            predicted_cycles: Some(corrected),
        })
    }

    fn observe(&mut self, actual_cycles: u64) {
        if let Some(raw) = self.last_prediction.take() {
            if raw > 0.0 {
                let observed = actual_cycles as f64 / raw;
                self.ratio = (1.0 - self.ewma_alpha) * self.ratio + self.ewma_alpha * observed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::SliceFlavor;
    use crate::train::{train, TrainerConfig};
    use predvfs_accel::{djpeg, WorkloadSize};
    use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};
    use predvfs_rtl::{ExecMode, Simulator, SliceOptions};

    fn dvfs() -> DvfsModel {
        let curve = AlphaPowerCurve::default();
        DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip())
    }

    #[test]
    fn hybrid_tracks_the_hidden_residual() {
        let m = djpeg::build();
        let w = djpeg::workloads(31, WorkloadSize::Quick);
        let model = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let mut hybrid = HybridController::new(dvfs(), 250e6, &sp, &model);
        let sim = Simulator::new(&m);
        let mut abs_err_hybrid = 0.0;
        let mut abs_err_raw = 0.0;
        let mut n = 0.0;
        let runner = sp.runner();
        for (i, job) in w.test.iter().enumerate() {
            let actual = sim.run(job, ExecMode::FastForward, None).unwrap().cycles as f64;
            let d = hybrid
                .decide(&JobContext {
                    job,
                    deadline_s: 16.7e-3,
                    index: i,
                })
                .unwrap();
            let raw = model.predict_cycles(&runner.run(job).unwrap().features);
            hybrid.observe(actual as u64);
            // Skip the warm-up jobs while the EWMA settles.
            if i >= 5 {
                abs_err_hybrid += (d.predicted_cycles.unwrap() - actual).abs() / actual;
                abs_err_raw += (raw - actual).abs() / actual;
                n += 1.0;
            }
        }
        let hybrid_mean = abs_err_hybrid / n;
        let raw_mean = abs_err_raw / n;
        assert!(
            hybrid_mean <= raw_mean * 1.05,
            "hybrid {hybrid_mean:.4} should not be worse than raw {raw_mean:.4}"
        );
        assert!(hybrid.residual_ratio() > 0.5 && hybrid.residual_ratio() < 2.0);
    }

    #[test]
    fn correction_never_reduces_below_raw_prediction() {
        let m = djpeg::build();
        let w = djpeg::workloads(32, WorkloadSize::Quick);
        let model = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let mut hybrid = HybridController::new(dvfs(), 250e6, &sp, &model);
        // Force a low ratio by observing much-faster-than-predicted jobs.
        for job in w.test.iter().take(5) {
            let _ = hybrid
                .decide(&JobContext {
                    job,
                    deadline_s: 16.7e-3,
                    index: 0,
                })
                .unwrap();
            hybrid.observe(1); // absurdly fast
        }
        assert!(hybrid.residual_ratio() < 1.0);
        let runner = sp.runner();
        let job = &w.test[6];
        let raw = model.predict_cycles(&runner.run(job).unwrap().features);
        let d = hybrid
            .decide(&JobContext {
                job,
                deadline_s: 16.7e-3,
                index: 6,
            })
            .unwrap();
        assert!(
            d.predicted_cycles.unwrap() >= raw * 0.999,
            "correction must stay conservative"
        );
    }

    /// A cheap trained setup for exercising the EWMA arithmetic.
    fn sha_setup() -> (predvfs_rtl::Module, predvfs_accel::Workloads, ExecTimeModel) {
        use predvfs_accel::sha;
        let m = sha::build();
        let w = sha::workloads(7, WorkloadSize::Quick);
        let model = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        (m, w, model)
    }

    #[test]
    fn residual_ratio_follows_the_ewma_update() {
        let (m, w, model) = sha_setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let mut hybrid = HybridController::new(dvfs(), 500e6, &sp, &model);
        assert_eq!(hybrid.residual_ratio(), 1.0);
        let runner = sp.runner();
        let mut expected = 1.0;
        for (i, job) in w.test.iter().take(3).enumerate() {
            let raw = model.predict_cycles(&runner.run(job).unwrap().features);
            hybrid
                .decide(&JobContext {
                    job,
                    deadline_s: 16.7e-3,
                    index: i,
                })
                .unwrap();
            // Pretend every job overruns its prediction by exactly 2x.
            let actual = (raw * 2.0).round() as u64;
            hybrid.observe(actual);
            expected = 0.8 * expected + 0.2 * (actual as f64 / raw);
            assert!(
                (hybrid.residual_ratio() - expected).abs() < 1e-12,
                "job {i}: ratio {} vs expected {expected}",
                hybrid.residual_ratio()
            );
        }
        assert!(hybrid.residual_ratio() > 1.0);
    }

    #[test]
    fn ewma_alpha_one_tracks_last_ratio_and_zero_freezes() {
        let (m, w, model) = sha_setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let runner = sp.runner();
        let job = &w.test[0];
        let raw = model.predict_cycles(&runner.run(job).unwrap().features);
        let ctx = JobContext {
            job,
            deadline_s: 16.7e-3,
            index: 0,
        };

        let mut eager = HybridController::new(dvfs(), 500e6, &sp, &model);
        eager.ewma_alpha = 1.0;
        eager.decide(&ctx).unwrap();
        let actual = (raw * 3.0).round() as u64;
        eager.observe(actual);
        assert!(
            (eager.residual_ratio() - actual as f64 / raw).abs() < 1e-12,
            "alpha=1 must jump straight to the last observed ratio"
        );

        let mut frozen = HybridController::new(dvfs(), 500e6, &sp, &model);
        frozen.ewma_alpha = 0.0;
        frozen.decide(&ctx).unwrap();
        frozen.observe(actual);
        assert_eq!(
            frozen.residual_ratio(),
            1.0,
            "alpha=0 must never move off the initial estimate"
        );
    }

    #[test]
    fn allow_downward_reclaims_overprediction() {
        let (m, w, model) = sha_setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let mut hybrid = HybridController::new(dvfs(), 500e6, &sp, &model);
        hybrid.allow_downward = true;
        for (i, job) in w.test.iter().take(5).enumerate() {
            hybrid
                .decide(&JobContext {
                    job,
                    deadline_s: 16.7e-3,
                    index: i,
                })
                .unwrap();
            hybrid.observe(1); // the model vastly over-predicts
        }
        assert!(hybrid.residual_ratio() < 1.0);
        let runner = sp.runner();
        let job = &w.test[6];
        let raw = model.predict_cycles(&runner.run(job).unwrap().features);
        let d = hybrid
            .decide(&JobContext {
                job,
                deadline_s: 16.7e-3,
                index: 6,
            })
            .unwrap();
        assert!(
            d.predicted_cycles.unwrap() < raw,
            "downward correction must lower the corrected prediction"
        );
    }

    #[test]
    fn observe_without_a_pending_decision_is_a_noop() {
        let (m, _w, model) = sha_setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let mut hybrid = HybridController::new(dvfs(), 500e6, &sp, &model);
        hybrid.observe(123_456);
        assert_eq!(
            hybrid.residual_ratio(),
            1.0,
            "an observation with no matching decision must not move the EWMA"
        );
    }
}
