//! The runtime predictor: a hardware slice plus the linear model.
//!
//! [`SlicePredictor`] packages the sliced module (§3.5), its probe
//! program, and cost metadata. A [`SliceRunner`] executes the slice for
//! each job to obtain feature values and the slice's own execution cycles,
//! which the DVFS model must budget for.

use predvfs_rtl::{
    slice, Analysis, DatapathKind, ExecMode, JobInput, Module, ProbeProgram, RtlError, Simulator,
    SliceOptions, SliceReport,
};

use crate::error::CoreError;
use crate::model::ExecTimeModel;

/// How the slice was generated (§4.5's HLS extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SliceFlavor {
    /// Sliced at RTL level: serial states run at the original rate.
    Rtl,
    /// Sliced at C level and re-synthesized by HLS: the tool pipelines the
    /// serial scans, dividing their cycles by `serial_speedup`, and
    /// re-optimizes area by `area_factor`.
    Hls {
        /// Speedup applied to serial-state cycles.
        serial_speedup: f64,
        /// Area scale relative to the RTL slice.
        area_factor: f64,
    },
}

impl SliceFlavor {
    /// The paper's HLS configuration for Fig. 18/19.
    pub fn hls_default() -> SliceFlavor {
        SliceFlavor::Hls {
            serial_speedup: 4.0,
            area_factor: 0.85,
        }
    }
}

/// A generated execution-time predictor: slice hardware + linear model.
#[derive(Debug)]
pub struct SlicePredictor {
    module: Module,
    analysis: Analysis,
    probes: ProbeProgram,
    report: SliceReport,
    flavor: SliceFlavor,
    serial_dp_indices: Vec<usize>,
}

impl SlicePredictor {
    /// Slices `module` down to the features selected by `model`.
    ///
    /// # Errors
    ///
    /// Propagates slicing failures ([`RtlError`]).
    pub fn generate(
        module: &Module,
        model: &ExecTimeModel,
        options: SliceOptions,
        flavor: SliceFlavor,
    ) -> Result<SlicePredictor, CoreError> {
        let schema = model.schema();
        let selected = model.selected_nonbias();
        let (sliced, report) = slice(module, schema, &selected, options)?;
        let analysis = Analysis::run(&sliced);
        let probes = schema.probe_program(&analysis);
        let serial_dp_indices = sliced
            .datapaths
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == DatapathKind::Serial)
            .map(|(i, _)| i)
            .collect();
        Ok(SlicePredictor {
            module: sliced,
            analysis,
            probes,
            report,
            flavor,
            serial_dp_indices,
        })
    }

    /// The sliced module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// What the slicer kept and removed.
    pub fn report(&self) -> &SliceReport {
        &self.report
    }

    /// The slice generation flavor.
    pub fn flavor(&self) -> SliceFlavor {
        self.flavor
    }

    /// Area scale factor implied by the flavor.
    pub fn area_factor(&self) -> f64 {
        match self.flavor {
            SliceFlavor::Rtl => 1.0,
            SliceFlavor::Hls { area_factor, .. } => area_factor,
        }
    }

    /// Creates a reusable runner (one simulator, many jobs).
    pub fn runner(&self) -> SliceRunner<'_> {
        SliceRunner {
            sim: Simulator::with_analysis(&self.module, &self.analysis),
            predictor: self,
        }
    }
}

/// Result of executing the slice for one job.
#[derive(Debug, Clone)]
pub struct SliceRun {
    /// The feature vector (full schema width).
    pub features: Vec<f64>,
    /// Cycles the slice occupied, after any HLS speedup.
    pub cycles: f64,
    /// Per-datapath activity (for slice energy accounting).
    pub dp_active: Vec<u64>,
}

/// Executes the slice; create via [`SlicePredictor::runner`].
#[derive(Debug)]
pub struct SliceRunner<'p> {
    sim: Simulator<'p>,
    predictor: &'p SlicePredictor,
}

impl<'p> Clone for SliceRunner<'p> {
    fn clone(&self) -> SliceRunner<'p> {
        // The simulator holds only construction-time state (wait plans,
        // FSM register map, schedule), so a rebuilt runner is
        // behaviourally identical to the original.
        self.predictor.runner()
    }
}

impl SliceRunner<'_> {
    /// Runs the slice over one job's input.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if the slice hangs (which would indicate a
    /// slicing bug).
    pub fn run(&self, job: &JobInput) -> Result<SliceRun, RtlError> {
        let t = self
            .sim
            .run(job, ExecMode::Compressed, Some(&self.predictor.probes))?;
        let mut cycles = t.cycles as f64;
        if let SliceFlavor::Hls { serial_speedup, .. } = self.predictor.flavor {
            let serial: u64 = self
                .predictor
                .serial_dp_indices
                .iter()
                .map(|&i| t.dp_active[i])
                .sum();
            let serial = (serial as f64).min(cycles);
            cycles = cycles - serial + serial / serial_speedup;
        }
        Ok(SliceRun {
            features: t.features,
            cycles,
            dp_active: t.dp_active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainerConfig};
    use predvfs_accel::{md, WorkloadSize};

    fn setup() -> (predvfs_rtl::Module, ExecTimeModel) {
        let m = md::build();
        let w = md::workloads(7, WorkloadSize::Quick);
        let model = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        (m, model)
    }

    #[test]
    fn slice_features_match_full_design() {
        let (m, model) = setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let runner = sp.runner();
        let data =
            crate::train::profile(&m, &md::workloads(8, WorkloadSize::Quick).test[..3]).unwrap();
        let jobs = md::workloads(8, WorkloadSize::Quick).test;
        for (i, job) in jobs.iter().take(3).enumerate() {
            let run = runner.run(job).unwrap();
            for &c in model.selected() {
                assert_eq!(run.features[c], data.x.get(i, c), "feature {c} of job {i}");
            }
        }
    }

    #[test]
    fn hls_flavor_shrinks_serial_time() {
        let (m, model) = setup();
        let rtl = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let hls = SlicePredictor::generate(
            &m,
            &model,
            SliceOptions::default(),
            SliceFlavor::hls_default(),
        )
        .unwrap();
        let job = &md::workloads(9, WorkloadSize::Quick).test[0];
        let tr = rtl.runner().run(job).unwrap();
        let th = hls.runner().run(job).unwrap();
        assert!(
            th.cycles < tr.cycles * 0.5,
            "{} vs {}",
            th.cycles,
            tr.cycles
        );
        assert_eq!(tr.features, th.features);
        assert!(hls.area_factor() < 1.0);
        assert_eq!(rtl.area_factor(), 1.0);
    }

    #[test]
    fn slice_is_small_and_fast() {
        let (m, model) = setup();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let full_area = predvfs_rtl::AsicAreaModel::default().area(&m).total_um2();
        let slice_area = predvfs_rtl::AsicAreaModel::default()
            .area(sp.module())
            .total_um2();
        assert!(
            slice_area < full_area * 0.5,
            "slice {slice_area:.0} vs full {full_area:.0}"
        );
        assert!(!sp.report().dropped_datapaths.is_empty());
    }
}
