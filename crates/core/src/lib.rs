//! # predvfs
//!
//! A reproduction of *"Execution Time Prediction for Energy-Efficient
//! Hardware Accelerators"* (Chen, Rucker, Suh — MICRO-48, 2015): a
//! framework that automatically generates execution-time predictors for
//! hardware accelerators and uses them to set per-job DVFS levels that
//! just meet real-time deadlines.
//!
//! The pipeline mirrors the paper's Fig. 6:
//!
//! 1. **Offline** — [`train::profile`] instruments the accelerator
//!    (FSM/counter mining from [`predvfs_rtl`]) and collects feature/time
//!    pairs; [`train::fit`] solves the asymmetric-Lasso program to get a
//!    sparse [`ExecTimeModel`]; [`SlicePredictor::generate`] slices the
//!    design down to the feature-computing hardware.
//! 2. **Online** — a [`PredictiveController`] runs the slice per job,
//!    predicts execution time, and a [`DvfsModel`] picks the lowest
//!    operating point that meets the deadline (with optional boost).
//!
//! Baseline, table-based, PID, and oracle controllers are provided for
//! the paper's comparisons, plus HLS-flavored slices (§4.5) and software
//! predictors.
//!
//! # Examples
//!
//! ```
//! use predvfs::{
//!     train, DvfsController, DvfsModel, JobContext, PredictiveController,
//!     SliceFlavor, SlicePredictor, TrainerConfig,
//! };
//! use predvfs_accel::{sha, WorkloadSize};
//! use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};
//! use predvfs_rtl::SliceOptions;
//!
//! // Offline: train a predictor for the SHA accelerator.
//! let module = sha::build();
//! let jobs = sha::workloads(1, WorkloadSize::Quick);
//! let model = train::train(&module, &jobs.train, &TrainerConfig::default())?;
//! let slice = SlicePredictor::generate(
//!     &module, &model, SliceOptions::default(), SliceFlavor::Rtl)?;
//!
//! // Online: pick a DVFS level for an incoming job.
//! let curve = AlphaPowerCurve::default();
//! let dvfs = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
//! let mut ctrl = PredictiveController::new(dvfs, 500e6, &slice, &model);
//! let decision = ctrl.decide(&JobContext {
//!     job: &jobs.test[0],
//!     deadline_s: 16.7e-3,
//!     index: 0,
//! })?;
//! assert!(decision.predicted_cycles.unwrap() > 0.0);
//! # Ok::<(), predvfs::CoreError>(())
//! ```

#![warn(missing_docs)]

pub mod controllers;
pub mod dvfs;
pub mod error;
pub mod governors;
pub mod hybrid;
pub mod model;
pub mod online;
pub mod slicer;
pub mod software;
pub mod train;

pub use controllers::{
    BaselineController, Decision, DvfsController, JobContext, OracleController, PidController,
    PredictiveController, TableController,
};
pub use dvfs::{DvfsModel, LevelChoice};
pub use error::CoreError;
pub use governors::{IntervalGovernor, WcetController};
pub use hybrid::HybridController;
pub use model::ExecTimeModel;
pub use online::{
    AdaptState, AdaptiveController, CalibrationConfig, CalibrationMonitor, OnlineTrainer,
    OnlineTrainerConfig,
};
pub use slicer::{SliceFlavor, SlicePredictor, SliceRun, SliceRunner};
pub use software::{CpuModel, SoftwarePrediction, SoftwarePredictor};
pub use train::{TrainerConfig, TrainingData};
