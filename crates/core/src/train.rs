//! The offline training pipeline (Fig. 6, top): instrument → profile →
//! fit.
//!
//! The accelerator is analysed and instrumented automatically, a training
//! workload is simulated to collect `(features, cycles)` pairs, and the
//! asymmetric-Lasso program of §3.4 is solved to obtain a sparse,
//! conservative linear model. A debiasing refit (γ = 0 restricted to the
//! selected support) recovers the accuracy the L1 shrinkage costs.

use predvfs_opt::{AsymLasso, FitOptions, Matrix, Standardizer};
use predvfs_rtl::{Analysis, AnySim, ExecMode, FeatureSchema, JobInput, JobTrace, Module};

use crate::error::CoreError;
use crate::model::ExecTimeModel;

/// Hyper-parameters of the training program.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Under-prediction penalty weight `α` (> 1 makes the model
    /// conservative; under-predictions cause deadline misses).
    pub alpha: f64,
    /// L1 weight `γ` controlling feature selection (in standardized,
    /// target-normalized space).
    pub gamma: f64,
    /// Whether to refit without the L1 penalty on the selected support.
    pub refit: bool,
    /// Solver iteration cap.
    pub max_iter: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            alpha: 8.0,
            gamma: 0.6,
            refit: true,
            max_iter: 4000,
        }
    }
}

/// Profiled training data: the design matrix of feature values and the
/// measured execution cycles, plus the schema describing the columns.
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// Feature rows, one per job.
    pub x: Matrix,
    /// Execution cycles, one per job.
    pub y: Vec<f64>,
    /// Column layout.
    pub schema: FeatureSchema,
    /// Full per-job traces from the profiling runs, in job order.
    ///
    /// Probes are timing-neutral, so `traces[i].cycles` and
    /// `traces[i].dp_active` are exactly what an unprobed simulation
    /// would report — downstream consumers (e.g. leakage calibration)
    /// can reuse them instead of re-simulating the training set.
    pub traces: Vec<JobTrace>,
}

/// Runs the instrumented accelerator over `jobs`, recording feature values
/// and execution time for each (the "RTL simulation" box of Fig. 6).
///
/// Jobs are simulated in parallel (they are independent); rows are
/// written back in job order, so the result is bit-identical to a serial
/// profile.
///
/// # Errors
///
/// Returns an error when `jobs` is empty or a simulation fails.
pub fn profile(module: &Module, jobs: &[JobInput]) -> Result<TrainingData, CoreError> {
    if jobs.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let analysis = Analysis::run(module);
    let schema = FeatureSchema::from_analysis(module, &analysis);
    let probes = schema.probe_program(&analysis);
    // Profiling runs on the process-default engine (the compiled VM unless
    // `--interp` opted out); both engines produce byte-identical traces.
    let sim = AnySim::with_analysis(module, &analysis, predvfs_rtl::default_engine())?;
    let traces: Vec<_> = predvfs_par::par_try_map(jobs, |job| {
        sim.run(job, ExecMode::FastForward, Some(&probes))
    })?;
    let mut x = Matrix::zeros(jobs.len(), schema.len());
    let mut y = Vec::with_capacity(jobs.len());
    for (i, t) in traces.iter().enumerate() {
        x.row_mut(i).copy_from_slice(&t.features);
        y.push(t.cycles as f64);
    }
    Ok(TrainingData {
        x,
        y,
        schema,
        traces,
    })
}

/// Records one FISTA solve's outcome (iteration count, momentum
/// restarts, final objective) into `sink`.
pub(crate) fn record_solver_metrics(sink: &dyn predvfs_obs::ObsSink, fit: &predvfs_opt::FitResult) {
    if !sink.enabled() {
        return;
    }
    sink.counter_add("predvfs_fista_fits_total", 1);
    sink.counter_add("predvfs_fista_iterations_total", fit.iterations as u64);
    sink.counter_add("predvfs_fista_restarts_total", fit.restarts as u64);
    if !fit.converged {
        sink.counter_add("predvfs_fista_nonconverged_total", 1);
    }
    sink.observe("predvfs_fista_objective", fit.objective);
}

/// Fits the execution-time model on profiled data.
///
/// # Errors
///
/// Returns [`CoreError::DegenerateModel`] when the L1 penalty removes
/// every feature including the bias.
pub fn fit(data: &TrainingData, config: &TrainerConfig) -> Result<ExecTimeModel, CoreError> {
    let sink = predvfs_obs::global();
    let _fit_span = predvfs_obs::span("core.fit");
    let _fit_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_fit");
    let std = Standardizer::fit(&data.x);
    let mut xs = std.transform(&data.x);
    let y_scale = data.y.iter().map(|v| v.abs()).sum::<f64>() / data.y.len() as f64;
    let y_scale = if y_scale > 0.0 { y_scale } else { 1.0 };
    let yn: Vec<f64> = data.y.iter().map(|v| v / y_scale).collect();
    let bias = data.schema.bias_index().unwrap_or(0);
    let mut unpenalized = vec![false; data.schema.len()];
    unpenalized[bias] = true;

    // Constant columns (other than the bias) are redundant with the bias
    // and, being untouched by standardization, would dominate the
    // conditioning of the problem; zero them out.
    for c in 0..xs.cols() {
        if c != bias && std.is_passthrough(c) {
            for r in 0..xs.rows() {
                *xs.get_mut(r, c) = 0.0;
            }
        }
    }

    // De-duplicate identical standardized columns (e.g. every per-token
    // transition count equals the token count). The L1 penalty is
    // indifferent to splitting weight across clones, which would inflate
    // the support; zeroing all but one representative keeps the selection
    // crisp without changing the model class.
    for c1 in 0..xs.cols() {
        if unpenalized[c1] || (0..xs.rows()).all(|r| xs.get(r, c1) == 0.0) {
            continue;
        }
        for (c2, &unpen) in unpenalized.iter().enumerate().skip(c1 + 1) {
            if unpen {
                continue;
            }
            let identical = (0..xs.rows()).all(|r| (xs.get(r, c1) - xs.get(r, c2)).abs() < 1e-9);
            if identical {
                for r in 0..xs.rows() {
                    *xs.get_mut(r, c2) = 0.0;
                }
            }
        }
    }

    let options = FitOptions {
        max_iter: config.max_iter,
        ..FitOptions::default()
    };
    let lasso = AsymLasso {
        x: &xs,
        y: &yn,
        alpha: config.alpha,
        gamma: config.gamma,
        unpenalized: unpenalized.clone(),
    }
    .fit(options);
    record_solver_metrics(sink, &lasso);

    let mut support: Vec<usize> = lasso.support(1e-7);
    if !support.contains(&bias) {
        support.push(bias);
        support.sort_unstable();
    }
    if support.is_empty() {
        return Err(CoreError::DegenerateModel);
    }

    let beta_std = if config.refit && support.len() < data.schema.len() {
        // Debias: ordinary asymmetric fit restricted to the support.
        let mut xr = Matrix::zeros(xs.rows(), support.len());
        for r in 0..xs.rows() {
            for (j, &c) in support.iter().enumerate() {
                *xr.get_mut(r, j) = xs.get(r, c);
            }
        }
        let refit = AsymLasso {
            x: &xr,
            y: &yn,
            alpha: config.alpha,
            gamma: 0.0,
            unpenalized: support.iter().map(|&c| unpenalized[c]).collect(),
        }
        .fit(options);
        record_solver_metrics(sink, &refit);
        let mut full = vec![0.0; data.schema.len()];
        for (j, &c) in support.iter().enumerate() {
            full[c] = refit.beta[j];
        }
        full
    } else {
        lasso.beta
    };

    let mut raw = std.fold_back(&beta_std, bias);
    for c in &mut raw {
        *c *= y_scale;
    }
    // Outside the selected support, coefficients are exactly zero by
    // construction (the refit only populates support columns); the raw
    // vector therefore already has a crisp support.
    for (i, c) in raw.iter_mut().enumerate() {
        if i != bias && !support.contains(&i) {
            *c = 0.0;
        }
    }
    Ok(ExecTimeModel::new(data.schema.clone(), raw))
}

/// Convenience: profile then fit.
///
/// # Errors
///
/// Propagates [`profile`] and [`fit`] errors.
pub fn train(
    module: &Module,
    jobs: &[JobInput],
    config: &TrainerConfig,
) -> Result<ExecTimeModel, CoreError> {
    let data = profile(module, jobs)?;
    fit(&data, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use rand::Rng;

    /// Toy accelerator: cycles ≈ 3·a + b per token plus small control
    /// overhead; a third input field is pure noise.
    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let _noise = b.input("noise", 8);
        let fsm = b.fsm("ctrl", &["FETCH", "WA", "WB", "EMIT"]);
        let ca = b.wait_state(&fsm, "WA", "WB", "ca");
        b.enter_wait(
            &fsm,
            "FETCH",
            "WA",
            ca,
            a * E::k(3),
            E::stream_empty().is_zero(),
        );
        let cb = b.wait_state(&fsm, "WB", "EMIT", "cb");
        b.set(cb, fsm.in_state("WA") & ca.e().eq_(E::zero()), bb);
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn jobs(n: usize, seed: u64) -> Vec<JobInput> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut j = JobInput::new(3);
                for _ in 0..rng.gen_range(5..40) {
                    j.push(&[
                        rng.gen_range(1..200),
                        rng.gen_range(1..200),
                        rng.gen_range(0..255),
                    ]);
                }
                j
            })
            .collect()
    }

    #[test]
    fn trained_model_predicts_heldout_jobs() {
        let m = toy();
        let model = train(&m, &jobs(60, 1), &TrainerConfig::default()).unwrap();
        let data = profile(&m, &jobs(20, 2)).unwrap();
        for i in 0..data.x.rows() {
            let pred = model.predict_cycles(data.x.row(i));
            let actual = data.y[i];
            let err = (pred - actual) / actual;
            assert!(
                err.abs() < 0.05,
                "job {i}: pred {pred:.0} vs actual {actual:.0}"
            );
        }
    }

    #[test]
    fn conservative_fit_rarely_underpredicts() {
        let m = toy();
        let model = train(&m, &jobs(60, 3), &TrainerConfig::default()).unwrap();
        let data = profile(&m, &jobs(40, 4)).unwrap();
        let under = (0..data.x.rows())
            .filter(|&i| model.predict_cycles(data.x.row(i)) < data.y[i] * 0.98)
            .count();
        assert!(under <= 2, "{under} of 40 jobs under-predicted by >2%");
    }

    #[test]
    fn lasso_prunes_noise_features() {
        let m = toy();
        let model = train(&m, &jobs(80, 5), &TrainerConfig::default()).unwrap();
        // The toy design has 3 transitions + 2 counters ×3 = plenty of
        // candidate features; only a handful should survive.
        assert!(
            model.selected().len() <= 5,
            "support {:?}",
            model.support_summary()
        );
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let m = toy();
        assert!(matches!(profile(&m, &[]), Err(CoreError::EmptyTrainingSet)));
    }
}
