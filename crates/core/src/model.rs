//! The execution-time model: a sparse linear map from mined features to
//! cycles (§3.4).

use predvfs_rtl::FeatureSchema;

/// A fitted sparse linear execution-time model.
///
/// Prediction is a dot product over *raw* feature values — exactly the
/// multiply-accumulate chain the paper's hardware evaluates after the
/// slice finishes. Only the `selected` coefficients are non-zero; the
/// slice is generated from that support set.
#[derive(Debug, Clone)]
pub struct ExecTimeModel {
    schema: FeatureSchema,
    coeffs: Vec<f64>,
    selected: Vec<usize>,
}

impl ExecTimeModel {
    /// Assembles a model from full-width raw-space coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` width mismatches the schema.
    pub fn new(schema: FeatureSchema, coeffs: Vec<f64>) -> ExecTimeModel {
        assert_eq!(coeffs.len(), schema.len(), "coefficient width mismatch");
        let selected = coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.abs() > 1e-12)
            .map(|(i, _)| i)
            .collect();
        ExecTimeModel {
            schema,
            coeffs,
            selected,
        }
    }

    /// Predicted execution cycles for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector width mismatches the schema.
    pub fn predict_cycles(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.coeffs.len(), "feature width mismatch");
        let mut acc = 0.0;
        for &i in &self.selected {
            acc += self.coeffs[i] * features[i];
        }
        acc.max(0.0)
    }

    /// The feature schema this model was trained on.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Indices of features with non-zero coefficients.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Selected feature indices excluding the bias (the slicing criteria).
    pub fn selected_nonbias(&self) -> Vec<usize> {
        let bias = self.schema.bias_index();
        self.selected
            .iter()
            .copied()
            .filter(|i| Some(*i) != bias)
            .collect()
    }

    /// The full coefficient vector (zeros included).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Human-readable `(name, coefficient)` pairs for the support.
    pub fn support_summary(&self) -> Vec<(String, f64)> {
        self.selected
            .iter()
            .map(|&i| (self.schema.descs()[i].name.clone(), self.coeffs[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use predvfs_rtl::Analysis;

    fn schema() -> FeatureSchema {
        let mut b = ModuleBuilder::new("t");
        let d = b.input("d", 8);
        let fsm = b.fsm("f", &["A", "W", "B"]);
        b.timed(&fsm, "A", "W", "B", d, E::one(), "c");
        b.done_when(fsm.in_state("B"));
        let m = b.build().unwrap();
        FeatureSchema::from_analysis(&m, &Analysis::run(&m))
    }

    #[test]
    fn predicts_dot_product_over_support() {
        let s = schema();
        let n = s.len();
        let mut coeffs = vec![0.0; n];
        coeffs[0] = 100.0; // bias
        coeffs[n - 2] = 2.0; // aiv
        let m = ExecTimeModel::new(s, coeffs);
        assert_eq!(m.selected().len(), 2);
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        x[n - 2] = 30.0;
        assert_eq!(m.predict_cycles(&x), 160.0);
    }

    #[test]
    fn negative_predictions_clamp_to_zero() {
        let s = schema();
        let n = s.len();
        let mut coeffs = vec![0.0; n];
        coeffs[0] = -5.0;
        let m = ExecTimeModel::new(s, coeffs);
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        assert_eq!(m.predict_cycles(&x), 0.0);
    }

    #[test]
    fn nonbias_support_excludes_intercept() {
        let s = schema();
        let n = s.len();
        let mut coeffs = vec![0.0; n];
        coeffs[0] = 1.0;
        coeffs[2] = 3.0;
        let m = ExecTimeModel::new(s, coeffs);
        assert_eq!(m.selected_nonbias(), vec![2]);
        assert_eq!(m.support_summary().len(), 2);
    }
}
