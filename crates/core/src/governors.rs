//! Additional baseline controllers from the paper's related work:
//!
//! * [`WcetController`] — the hard real-time approach (§5.1, Shin et al.):
//!   set the level from a *static* worst-case execution-time bound. Never
//!   misses, but leaves most of the average-case slack unused.
//! * [`IntervalGovernor`] — a Linux `devfreq`-style utilization governor
//!   (§2.4): raise the level when the last interval was busy beyond an
//!   up-threshold, lower it when below a down-threshold. Simple, but it
//!   reacts a job late and knows nothing about deadlines.

use predvfs_rtl::{wcet, Module, WcetBound};

use crate::controllers::{Decision, DvfsController, JobContext};
use crate::dvfs::{DvfsModel, LevelChoice};
use crate::error::CoreError;

/// Static-WCET DVFS: levels sized so even the worst case meets the
/// deadline.
#[derive(Debug)]
pub struct WcetController {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    bound: WcetBound,
}

impl WcetController {
    /// Runs the WCET analysis on `module` and builds the controller.
    ///
    /// # Errors
    ///
    /// Fails when the module has no control FSM to analyse.
    pub fn from_module(
        dvfs: DvfsModel,
        f_nominal_hz: f64,
        module: &Module,
    ) -> Result<WcetController, CoreError> {
        let bound = wcet(module)?;
        Ok(WcetController {
            dvfs,
            f_nominal_hz,
            bound,
        })
    }

    /// The static bound in use.
    pub fn bound(&self) -> &WcetBound {
        &self.bound
    }
}

impl DvfsController for WcetController {
    fn name(&self) -> &str {
        "wcet"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let worst = self.bound.job_cycles(ctx.job.len()) as f64;
        let choice = self
            .dvfs
            .choose(worst, self.f_nominal_hz, ctx.deadline_s, 0.0);
        Ok(Decision {
            choice,
            slice_cycles: 0.0,
            slice_dp_active: Vec::new(),
            predicted_cycles: Some(worst),
        })
    }
}

/// Interval-based utilization governor (devfreq `simple_ondemand` style).
#[derive(Debug)]
pub struct IntervalGovernor {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    /// Raise one level when utilization exceeds this.
    pub up_threshold: f64,
    /// Lower one level when utilization falls below this.
    pub down_threshold: f64,
    level: usize,
    last_utilization: f64,
    deadline_s: f64,
}

impl IntervalGovernor {
    /// Creates the governor with devfreq-like default thresholds
    /// (90 % up, 50 % down), starting at the nominal level.
    pub fn new(dvfs: DvfsModel, f_nominal_hz: f64) -> IntervalGovernor {
        let level = dvfs.ladder.nominal_index();
        IntervalGovernor {
            dvfs,
            f_nominal_hz,
            up_threshold: 0.90,
            down_threshold: 0.50,
            level,
            last_utilization: 1.0,
            deadline_s: 16.7e-3,
        }
    }

    /// Current level index.
    pub fn level(&self) -> usize {
        self.level
    }
}

impl DvfsController for IntervalGovernor {
    fn name(&self) -> &str {
        "governor"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        self.deadline_s = ctx.deadline_s;
        if self.last_utilization > self.up_threshold {
            self.level = (self.level + 1).min(self.dvfs.ladder.nominal_index());
        } else if self.last_utilization < self.down_threshold {
            self.level = self.level.saturating_sub(1);
        }
        Ok(Decision {
            choice: LevelChoice::Regular(self.level),
            slice_cycles: 0.0,
            slice_dp_active: Vec::new(),
            predicted_cycles: None,
        })
    }

    fn observe(&mut self, actual_cycles: u64) {
        let f = self.f_nominal_hz * self.dvfs.ladder.level(self.level).freq_ratio;
        let busy = actual_cycles as f64 / f;
        self.last_utilization = (busy / self.deadline_s).min(2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};
    use predvfs_rtl::builder::{ModuleBuilder, E};
    use predvfs_rtl::JobInput;

    fn dvfs() -> DvfsModel {
        let curve = AlphaPowerCurve::default();
        DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip())
    }

    fn toy() -> Module {
        let mut b = ModuleBuilder::new("toy");
        let d = b.input("d", 8);
        let fsm = b.fsm("ctrl", &["FETCH", "W", "EMIT"]);
        b.timed(
            &fsm,
            "FETCH",
            "W",
            "EMIT",
            d,
            E::stream_empty().is_zero(),
            "c",
        );
        b.trans(&fsm, "EMIT", "FETCH", E::one());
        b.advance_when(fsm.in_state("EMIT"));
        b.done_when(fsm.in_state("FETCH") & E::stream_empty());
        b.build().unwrap()
    }

    fn job(n: usize) -> JobInput {
        let mut j = JobInput::new(1);
        for _ in 0..n {
            j.push(&[100]);
        }
        j
    }

    fn ctx(j: &JobInput) -> JobContext<'_> {
        JobContext {
            job: j,
            deadline_s: 16.7e-3,
            index: 0,
        }
    }

    #[test]
    fn wcet_controller_is_conservative() {
        let m = toy();
        let mut c = WcetController::from_module(dvfs(), 250e6, &m).unwrap();
        // WCET assumes every token maxes its field (255 + overheads) even
        // though actual jobs use 100.
        let j = job(10);
        let d = c.decide(&ctx(&j)).unwrap();
        let worst = d.predicted_cycles.unwrap();
        assert!(worst >= 10.0 * 255.0, "bound {worst}");
        assert!(c.bound().cycles_per_token >= 255);
    }

    #[test]
    fn governor_ramps_down_when_idle_and_up_when_busy() {
        let mut g = IntervalGovernor::new(dvfs(), 250e6);
        let j = job(1);
        let start = g.level();
        // Short jobs: utilization near zero, level decays to the floor.
        for _ in 0..10 {
            let _ = g.decide(&ctx(&j)).unwrap();
            g.observe(1_000); // ~4 µs of work in a 16.7 ms period
        }
        assert_eq!(g.level(), 0, "governor should reach the bottom");
        assert!(start > 0);
        // A burst of heavy jobs drives it back up one level per period.
        for _ in 0..10 {
            let _ = g.decide(&ctx(&j)).unwrap();
            g.observe(4_000_000); // 16 ms at nominal: busy
        }
        assert_eq!(g.level(), g.dvfs.ladder.nominal_index());
    }

    #[test]
    fn governor_lags_one_interval() {
        let mut g = IntervalGovernor::new(dvfs(), 250e6);
        let j = job(1);
        let _ = g.decide(&ctx(&j)).unwrap();
        g.observe(1_000);
        // The *next* decision reflects the previous observation.
        let d = g.decide(&ctx(&j)).unwrap();
        assert_eq!(d.choice, LevelChoice::Regular(g.level()));
    }
}
