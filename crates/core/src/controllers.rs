//! DVFS controllers: the paper's evaluated schemes (§4.2).
//!
//! * [`BaselineController`] — constant nominal voltage/frequency.
//! * [`TableController`] — worst-case level per coarse input class
//!   (the Exynos MFC-style lookup table of §2.4).
//! * [`PidController`] — reactive control from execution-time history
//!   with a 10 % margin.
//! * [`PredictiveController`] — the paper's contribution: run the
//!   hardware slice, predict execution time, set the minimal level.
//! * [`OracleController`] — knows each job's true execution time and pays
//!   no overheads; the energy lower bound of Fig. 13.

use predvfs_rtl::JobInput;

use crate::dvfs::{DvfsModel, LevelChoice};
use crate::error::CoreError;
use crate::model::ExecTimeModel;
use crate::slicer::{SlicePredictor, SliceRunner};

/// Per-job information available at decision time.
#[derive(Debug, Clone, Copy)]
pub struct JobContext<'a> {
    /// The upcoming job's input (readable by look-ahead predictors only).
    pub job: &'a JobInput,
    /// Wall-clock budget for the job.
    pub deadline_s: f64,
    /// Sequence number of the job within its task.
    pub index: usize,
}

/// A controller's output for one job.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The selected operating point.
    pub choice: LevelChoice,
    /// Predictor-hardware cycles spent before the job (0 for reactive
    /// schemes).
    pub slice_cycles: f64,
    /// Slice datapath activity, for slice-energy accounting.
    pub slice_dp_active: Vec<u64>,
    /// The execution-time prediction, when one was made (cycles).
    pub predicted_cycles: Option<f64>,
}

impl Decision {
    fn overhead_free(choice: LevelChoice, predicted_cycles: Option<f64>) -> Decision {
        Decision {
            choice,
            slice_cycles: 0.0,
            slice_dp_active: Vec::new(),
            predicted_cycles,
        }
    }
}

/// A per-job DVFS policy.
pub trait DvfsController {
    /// The scheme's name as used in the paper's figures.
    fn name(&self) -> &str;

    /// Chooses the operating point for the upcoming job.
    ///
    /// # Errors
    ///
    /// Controllers that execute hardware (the predictive scheme's slice)
    /// may fail; pure policies never do.
    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError>;

    /// Feeds back the job's actual execution cycles (used by reactive
    /// schemes).
    fn observe(&mut self, actual_cycles: u64) {
        let _ = actual_cycles;
    }
}

/// Constant nominal voltage and frequency.
#[derive(Debug)]
pub struct BaselineController {
    dvfs: DvfsModel,
}

impl BaselineController {
    /// Creates the baseline over a ladder.
    pub fn new(dvfs: DvfsModel) -> BaselineController {
        BaselineController { dvfs }
    }
}

impl DvfsController for BaselineController {
    fn name(&self) -> &str {
        "baseline"
    }

    fn decide(&mut self, _ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        Ok(Decision::overhead_free(self.dvfs.nominal(), None))
    }
}

/// Worst-case level per coarse input class (indexed by token count, the
/// analogue of "resolution" in the Exynos MFC table).
#[derive(Debug)]
pub struct TableController {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    /// `(token-count upper bound, worst-case cycles)` rows, ascending.
    rows: Vec<(usize, u64)>,
}

impl TableController {
    /// Builds the table from profiled training jobs: token counts are
    /// split into `classes` equal-width classes and the worst observed
    /// cycles per class is recorded.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` and `cycles` lengths differ or are empty, or
    /// `classes == 0`.
    pub fn from_profile(
        dvfs: DvfsModel,
        f_nominal_hz: f64,
        jobs: &[JobInput],
        cycles: &[u64],
        classes: usize,
    ) -> TableController {
        assert_eq!(jobs.len(), cycles.len());
        assert!(!jobs.is_empty() && classes > 0);
        let max_tokens = jobs.iter().map(JobInput::len).max().expect("nonempty");
        let step = max_tokens.div_ceil(classes).max(1);
        let mut rows: Vec<(usize, u64)> = (1..=classes).map(|c| (c * step, 0u64)).collect();
        for (j, &c) in jobs.iter().zip(cycles) {
            let class = (j.len().saturating_sub(1)) / step;
            let class = class.min(classes - 1);
            rows[class].1 = rows[class].1.max(c);
        }
        // Fill empty classes from the class above (stay conservative).
        for i in (0..rows.len().saturating_sub(1)).rev() {
            if rows[i].1 == 0 {
                rows[i].1 = rows[i + 1].1;
            }
        }
        // Make worst-case monotone so larger inputs never map to less
        // conservative rows.
        for i in 1..rows.len() {
            rows[i].1 = rows[i].1.max(rows[i - 1].1);
        }
        TableController {
            dvfs,
            f_nominal_hz,
            rows,
        }
    }

    fn worst_for(&self, tokens: usize) -> u64 {
        for &(bound, cycles) in &self.rows {
            if tokens <= bound {
                return cycles;
            }
        }
        self.rows.last().map(|r| r.1).unwrap_or(0)
    }
}

impl DvfsController for TableController {
    fn name(&self) -> &str {
        "table"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let worst = self.worst_for(ctx.job.len()) as f64;
        let choice = self
            .dvfs
            .choose(worst, self.f_nominal_hz, ctx.deadline_s, 0.0);
        Ok(Decision::overhead_free(choice, Some(worst)))
    }
}

/// Reactive PID control over execution-time history.
///
/// The proportional path is *asymmetric*, as DVFS governors tuned against
/// deadline misses are in practice: an under-prediction (the error that
/// causes a miss) is corrected immediately and then some, while
/// over-predictions decay slowly. This is the "balance deadline miss rate
/// and energy savings" tuning the paper describes — it trades energy
/// (levels linger high after every spike) for fewer misses.
#[derive(Debug, Clone)]
pub struct PidController {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    kp_up: f64,
    kp_down: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    prev_error: f64,
    prediction: f64,
    started: bool,
}

impl PidController {
    /// Creates a PID controller with symmetric gains. `dvfs.margin_frac`
    /// should be the paper's 10 % for this scheme.
    pub fn new(dvfs: DvfsModel, f_nominal_hz: f64, kp: f64, ki: f64, kd: f64) -> PidController {
        PidController {
            dvfs,
            f_nominal_hz,
            kp_up: kp,
            kp_down: kp,
            ki,
            kd,
            integral: 0.0,
            prev_error: 0.0,
            prediction: 0.0,
            started: false,
        }
    }

    /// Sets asymmetric proportional gains: `up` applies to under-prediction
    /// errors (actual above prediction), `down` to over-prediction errors.
    pub fn with_asymmetric_gains(mut self, up: f64, down: f64) -> PidController {
        self.kp_up = up;
        self.kp_down = down;
        self
    }

    /// The paper's tuned configuration: conservative asymmetric gains, 10 %
    /// output margin.
    pub fn tuned(mut dvfs: DvfsModel, f_nominal_hz: f64) -> PidController {
        dvfs.margin_frac = 0.10;
        PidController::new(dvfs, f_nominal_hz, 1.0, 0.02, 0.30).with_asymmetric_gains(1.7, 0.045)
    }

    /// Current internal prediction (cycles).
    pub fn prediction(&self) -> f64 {
        self.prediction
    }
}

impl DvfsController for PidController {
    fn name(&self) -> &str {
        "pid"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        if !self.started {
            // No history yet: be conservative and run at nominal.
            return Ok(Decision::overhead_free(self.dvfs.nominal(), None));
        }
        let choice = self
            .dvfs
            .choose(self.prediction, self.f_nominal_hz, ctx.deadline_s, 0.0);
        Ok(Decision::overhead_free(choice, Some(self.prediction)))
    }

    fn observe(&mut self, actual_cycles: u64) {
        let actual = actual_cycles as f64;
        if !self.started {
            self.started = true;
            self.prediction = actual;
            self.prev_error = 0.0;
            return;
        }
        let error = actual - self.prediction;
        self.integral += error;
        let derivative = error - self.prev_error;
        let kp = if error > 0.0 {
            self.kp_up
        } else {
            self.kp_down
        };
        self.prediction += kp * error + self.ki * self.integral + self.kd * derivative;
        self.prediction = self.prediction.max(0.0);
        self.prev_error = error;
    }
}

/// The paper's predictive controller: slice → model → minimal level.
#[derive(Debug, Clone)]
pub struct PredictiveController<'p> {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    runner: SliceRunner<'p>,
    model: &'p ExecTimeModel,
    /// When true, slice and switching overheads are ignored (the
    /// "prediction w/o overhead" configuration of Fig. 13).
    pub ignore_overheads: bool,
}

impl<'p> PredictiveController<'p> {
    /// Creates the controller from a generated slice predictor and model.
    pub fn new(
        dvfs: DvfsModel,
        f_nominal_hz: f64,
        predictor: &'p SlicePredictor,
        model: &'p ExecTimeModel,
    ) -> PredictiveController<'p> {
        PredictiveController {
            dvfs,
            f_nominal_hz,
            runner: predictor.runner(),
            model,
            ignore_overheads: false,
        }
    }
}

impl DvfsController for PredictiveController<'_> {
    fn name(&self) -> &str {
        "prediction"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let run = self.runner.run(ctx.job)?;
        let predicted = self.model.predict_cycles(&run.features);
        let (slice_cycles, slice_dp_active, slice_time_s) = if self.ignore_overheads {
            (0.0, Vec::new(), 0.0)
        } else {
            let t = run.cycles / self.f_nominal_hz;
            (run.cycles, run.dp_active, t)
        };
        let mut dvfs = self.dvfs.clone();
        if self.ignore_overheads {
            dvfs.switching = predvfs_power::SwitchingModel::free();
        }
        let choice = dvfs.choose(predicted, self.f_nominal_hz, ctx.deadline_s, slice_time_s);
        Ok(Decision {
            choice,
            slice_cycles,
            slice_dp_active,
            predicted_cycles: Some(predicted),
        })
    }
}

/// Omniscient controller: knows actual execution time, pays no overheads.
#[derive(Debug)]
pub struct OracleController {
    dvfs: DvfsModel,
    f_nominal_hz: f64,
    actual_cycles: Vec<u64>,
}

impl OracleController {
    /// Creates the oracle from per-job ground-truth cycles. The DVFS model
    /// is reconfigured to zero margin and free switching.
    pub fn new(
        mut dvfs: DvfsModel,
        f_nominal_hz: f64,
        actual_cycles: Vec<u64>,
    ) -> OracleController {
        dvfs.margin_frac = 0.0;
        dvfs.switching = predvfs_power::SwitchingModel::free();
        OracleController {
            dvfs,
            f_nominal_hz,
            actual_cycles,
        }
    }
}

impl DvfsController for OracleController {
    fn name(&self) -> &str {
        "oracle"
    }

    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, CoreError> {
        let actual = *self
            .actual_cycles
            .get(ctx.index)
            .ok_or(CoreError::OracleExhausted { index: ctx.index })?;
        let choice = self
            .dvfs
            .choose(actual as f64, self.f_nominal_hz, ctx.deadline_s, 0.0);
        Ok(Decision::overhead_free(choice, Some(actual as f64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};

    fn dvfs() -> DvfsModel {
        let curve = AlphaPowerCurve::default();
        DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip())
    }

    fn job(tokens: usize) -> JobInput {
        let mut j = JobInput::new(1);
        for _ in 0..tokens {
            j.push(&[1]);
        }
        j
    }

    fn ctx(j: &JobInput) -> JobContext<'_> {
        JobContext {
            job: j,
            deadline_s: 16.7e-3,
            index: 0,
        }
    }

    #[test]
    fn baseline_always_nominal() {
        let mut c = BaselineController::new(dvfs());
        let j = job(3);
        let d = c.decide(&ctx(&j)).unwrap();
        assert_eq!(d.choice, c.dvfs.nominal());
        assert_eq!(d.slice_cycles, 0.0);
        assert_eq!(c.name(), "baseline");
    }

    #[test]
    fn table_uses_class_worst_case() {
        let jobs: Vec<JobInput> = vec![job(10), job(10), job(100), job(100)];
        let cycles = vec![1_000_000, 1_500_000, 3_000_000, 3_600_000];
        let mut t = TableController::from_profile(dvfs(), 250e6, &jobs, &cycles, 2);
        let small = job(8);
        let d = t.decide(&ctx(&small)).unwrap();
        assert_eq!(d.predicted_cycles, Some(1_500_000.0));
        let big = job(90);
        let d = t.decide(&ctx(&big)).unwrap();
        assert_eq!(d.predicted_cycles, Some(3_600_000.0));
    }

    #[test]
    fn table_worst_case_is_monotone() {
        let jobs: Vec<JobInput> = vec![job(10), job(100)];
        // Pathological profile: small job slower than big one.
        let cycles = vec![5_000_000, 1_000_000];
        let t = TableController::from_profile(dvfs(), 250e6, &jobs, &cycles, 2);
        assert!(t.worst_for(100) >= t.worst_for(10));
    }

    #[test]
    fn pid_reacts_asymmetrically() {
        let mut p = PidController::tuned(dvfs(), 250e6);
        let j = job(1);
        // Prime with a steady workload.
        for _ in 0..20 {
            let _ = p.decide(&ctx(&j)).unwrap();
            p.observe(1_000_000);
        }
        let before = p.prediction();
        assert!((before - 1_000_000.0).abs() < 80_000.0, "settled {before}");
        // The decision BEFORE the spike is based on stale history: the
        // spike job itself is mispredicted (Fig. 3's lag).
        assert!(p.prediction() < 1_500_000.0);
        // Step up: tuned gains catch up at once (and overshoot) so the
        // *next* job is safe...
        p.observe(2_000_000);
        assert!(
            p.prediction() >= 1_900_000.0,
            "up-reaction too slow: {}",
            p.prediction()
        );
        // ...while a step back down decays slowly (energy is wasted to
        // protect against misses).
        p.observe(1_000_000);
        assert!(
            p.prediction() > 1_400_000.0,
            "down-reaction should be sticky, got {}",
            p.prediction()
        );
    }

    #[test]
    fn symmetric_pid_lags_one_job() {
        let mut dv = dvfs();
        dv.margin_frac = 0.10;
        let mut p = PidController::new(dv, 250e6, 0.6, 0.02, 0.1);
        let j = job(1);
        for _ in 0..30 {
            let _ = p.decide(&ctx(&j)).unwrap();
            p.observe(1_000_000);
        }
        p.observe(2_000_000);
        let after_one = p.prediction();
        assert!(after_one < 2_000_000.0, "symmetric PID must lag");
        assert!(after_one > 1_000_000.0);
    }

    #[test]
    fn oracle_needs_a_trace_per_job() {
        let mut o = OracleController::new(dvfs(), 250e6, vec![1_000_000]);
        let j = job(1);
        assert!(o.decide(&ctx(&j)).is_ok());
        let c2 = JobContext {
            job: &j,
            deadline_s: 16.7e-3,
            index: 1,
        };
        assert!(matches!(
            o.decide(&c2),
            Err(CoreError::OracleExhausted { index: 1 })
        ));
    }

    #[test]
    fn oracle_picks_lowest_feasible_level() {
        let mut o = OracleController::new(dvfs(), 250e6, vec![500_000]);
        let j = job(1);
        let d = o.decide(&ctx(&j)).unwrap();
        // 2 ms of work in 16.7 ms: bottom level.
        assert_eq!(d.choice, LevelChoice::Regular(0));
    }
}
