//! The DVFS model (§3.6): turning a cycle prediction into an operating
//! point.
//!
//! For scratchpad accelerators memory time is negligible, so `T = C/f` and
//! the minimal frequency meeting the deadline is
//!
//! ```text
//! f = ⌈ f0·(T0 + Tmargin) / (Tbudget − Tslice − Tdvfs) ⌉
//! ```
//!
//! rounded up to the discrete ladder. When even the nominal level cannot
//! meet the remaining budget, the optional boost level (Fig. 14) is used.

use predvfs_power::{Ladder, OperatingPoint, SwitchingModel};

/// Which operating point a controller picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelChoice {
    /// Index into the ladder's regular levels (0 = slowest).
    Regular(usize),
    /// The boost level.
    Boost,
}

/// Configuration of the DVFS decision model.
#[derive(Debug, Clone)]
pub struct DvfsModel {
    /// The discrete operating points.
    pub ladder: Ladder,
    /// Transition-cost model (time is pre-deducted from the budget).
    pub switching: SwitchingModel,
    /// Relative safety margin added to predictions (the paper uses 5 % for
    /// the predictive controller, 10 % for PID).
    pub margin_frac: f64,
    /// Enables the boost level when the budget is otherwise infeasible.
    pub use_boost: bool,
}

impl DvfsModel {
    /// Creates a model with the paper's predictive-controller defaults.
    pub fn new(ladder: Ladder, switching: SwitchingModel) -> DvfsModel {
        DvfsModel {
            ladder,
            switching,
            margin_frac: 0.05,
            use_boost: false,
        }
    }

    /// Resolves a choice to its operating point.
    ///
    /// # Panics
    ///
    /// Panics if [`LevelChoice::Boost`] is requested on a ladder without a
    /// boost level.
    pub fn point(&self, choice: LevelChoice) -> OperatingPoint {
        match choice {
            LevelChoice::Regular(i) => self.ladder.level(i),
            LevelChoice::Boost => self
                .ladder
                .boost()
                .expect("boost requested but not configured"),
        }
    }

    /// The nominal choice (fastest regular level).
    pub fn nominal(&self) -> LevelChoice {
        LevelChoice::Regular(self.ladder.nominal_index())
    }

    /// Picks the lowest level meeting the deadline for a job predicted to
    /// take `pred_cycles` at nominal frequency `f_nominal_hz`, with
    /// `budget_s` of wall-clock budget and `slice_time_s` already consumed
    /// by the predictor.
    pub fn choose(
        &self,
        pred_cycles: f64,
        f_nominal_hz: f64,
        budget_s: f64,
        slice_time_s: f64,
    ) -> LevelChoice {
        let avail = budget_s - slice_time_s - self.switching.transition_s;
        if avail <= 0.0 {
            return self.infeasible();
        }
        let t0 = pred_cycles / f_nominal_hz;
        let required = t0 * (1.0 + self.margin_frac) / avail;
        match self.ladder.lowest_meeting(required) {
            Some(idx) => LevelChoice::Regular(idx),
            None => self.infeasible(),
        }
    }

    /// The emergency escalation target for an imminent deadline miss:
    /// the boost level when the ladder has one, otherwise nominal.
    ///
    /// Unlike [`DvfsModel::choose`], this ignores `use_boost` — that
    /// flag gates *planned* decisions (Fig. 14's opt-in boost), while
    /// escalation runs after a prediction has already been proven wrong
    /// mid-job, where the only useful answer is "as fast as the silicon
    /// goes". The serve runtime's deadline watchdog switches through
    /// this hook.
    pub fn escalation(&self) -> LevelChoice {
        if self.ladder.boost().is_some() {
            LevelChoice::Boost
        } else {
            self.nominal()
        }
    }

    fn infeasible(&self) -> LevelChoice {
        if self.use_boost && self.ladder.boost().is_some() {
            LevelChoice::Boost
        } else {
            self.nominal()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predvfs_power::{AlphaPowerCurve, Ladder, SwitchingModel};

    fn model(boost: bool) -> DvfsModel {
        let curve = AlphaPowerCurve::default();
        let ladder = Ladder::asic(&curve).with_boost(&curve, 1.08);
        let mut m = DvfsModel::new(ladder, SwitchingModel::off_chip());
        m.use_boost = boost;
        m
    }

    #[test]
    fn slack_selects_bottom_level() {
        let m = model(false);
        // 2 ms of work in a 16.7 ms budget: bottom of the ladder.
        let c = m.choose(500_000.0, 250e6, 16.7e-3, 0.3e-3);
        assert_eq!(c, LevelChoice::Regular(0));
    }

    #[test]
    fn tight_budget_selects_nominal() {
        let m = model(false);
        // 15 ms of work in 16.7 ms: must run near full speed.
        let c = m.choose(3_750_000.0, 250e6, 16.7e-3, 0.3e-3);
        assert_eq!(c, m.nominal());
    }

    #[test]
    fn infeasible_budget_boosts_when_enabled() {
        let mb = model(true);
        // 17 ms of work in 16.7 ms: impossible at nominal.
        let c = mb.choose(4_250_000.0, 250e6, 16.7e-3, 0.3e-3);
        assert_eq!(c, LevelChoice::Boost);
        let m = model(false);
        assert_eq!(m.choose(4_250_000.0, 250e6, 16.7e-3, 0.3e-3), m.nominal());
    }

    #[test]
    fn margin_rounds_up() {
        let m = model(false);
        // Construct a requirement just below a level boundary; adding the
        // 5 % margin must push it to the next level.
        let ladder = &m.ladder;
        let l2 = ladder.level(2).freq_ratio;
        let budget = 16.7e-3;
        let avail = budget - m.switching.transition_s;
        // t0 such that t0/avail == l2 exactly (without margin).
        let t0 = l2 * avail;
        let c = m.choose(t0 * 250e6, 250e6, budget, 0.0);
        match c {
            LevelChoice::Regular(i) => assert!(i > 2, "margin must round up, got {i}"),
            LevelChoice::Boost => panic!("unexpected boost"),
        }
    }

    #[test]
    fn zero_budget_is_infeasible() {
        let m = model(true);
        assert_eq!(m.choose(1000.0, 250e6, 50e-6, 0.0), LevelChoice::Boost);
    }

    #[test]
    fn escalation_ignores_use_boost() {
        // `use_boost = false` suppresses planned boost decisions but not
        // the emergency escalation path.
        let m = model(false);
        assert_eq!(m.escalation(), LevelChoice::Boost);
        let curve = AlphaPowerCurve::default();
        let no_boost = DvfsModel::new(Ladder::asic(&curve), SwitchingModel::off_chip());
        assert_eq!(no_boost.escalation(), no_boost.nominal());
    }

    #[test]
    fn point_resolution() {
        let m = model(true);
        assert!(m.point(LevelChoice::Boost).freq_ratio > 1.0);
        assert_eq!(m.point(LevelChoice::Regular(0)).volts, 0.625);
    }
}
