//! Error type for the predvfs core crate.

use std::error::Error;
use std::fmt;

use predvfs_rtl::RtlError;

/// Errors reported by the training pipeline and controllers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying RTL operation failed.
    Rtl(RtlError),
    /// Training was attempted with no jobs.
    EmptyTrainingSet,
    /// The fitted model selected no features at all (γ too large).
    DegenerateModel,
    /// A controller was given fewer oracle traces than jobs.
    OracleExhausted {
        /// Index of the job with no trace.
        index: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rtl(e) => write!(f, "rtl error: {e}"),
            CoreError::EmptyTrainingSet => write!(f, "training set is empty"),
            CoreError::DegenerateModel => {
                write!(f, "model selected no features; lower gamma")
            }
            CoreError::OracleExhausted { index } => {
                write!(f, "oracle has no trace for job {index}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtlError> for CoreError {
    fn from(e: RtlError) -> Self {
        CoreError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(RtlError::EmptySlice);
        assert!(e.to_string().contains("rtl error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::EmptyTrainingSet.to_string().contains("empty"));
    }
}
