//! Software predictors (§4.5): running the feature computation on a CPU
//! instead of in slice hardware.
//!
//! Some accelerators have a functionally equivalent software
//! implementation (e.g. ffmpeg for H.264), or were generated from C by
//! HLS. The same sliced feature computation can then run on the host CPU:
//! the slice module is *interpreted* functionally, and the wall-clock cost
//! is modelled as executed operations over the CPU's effective throughput.

use predvfs_rtl::{JobInput, RtlError};

use crate::error::CoreError;
use crate::model::ExecTimeModel;
use crate::slicer::{SlicePredictor, SliceRun};

/// CPU cost model for a software predictor.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Effective feature-computation throughput relative to the slice's
    /// clock (CPUs retire several slice-equivalent operations per cycle
    /// but run the computation as straight-line code).
    pub ops_per_second: f64,
    /// Average CPU power while running the predictor, in mW (energy is
    /// charged against the job's budget).
    pub active_power_mw: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            // A mobile big core sustains ~2 G simple ops/s on this kind of
            // pointer-light integer code.
            ops_per_second: 2.0e9,
            active_power_mw: 250.0,
        }
    }
}

/// A software predictor: slice semantics evaluated on the CPU.
#[derive(Debug)]
pub struct SoftwarePredictor<'p> {
    predictor: &'p SlicePredictor,
    model: &'p ExecTimeModel,
    cpu: CpuModel,
}

/// Outcome of a software prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwarePrediction {
    /// Predicted accelerator execution cycles.
    pub predicted_cycles: f64,
    /// CPU wall-clock time spent computing features, in seconds.
    pub cpu_time_s: f64,
    /// CPU energy spent, in pJ.
    pub cpu_energy_pj: f64,
}

impl<'p> SoftwarePredictor<'p> {
    /// Wraps a slice predictor and model with a CPU cost model.
    pub fn new(
        predictor: &'p SlicePredictor,
        model: &'p ExecTimeModel,
        cpu: CpuModel,
    ) -> SoftwarePredictor<'p> {
        SoftwarePredictor {
            predictor,
            model,
            cpu,
        }
    }

    /// Predicts one job's execution time by evaluating the slice in
    /// software.
    ///
    /// # Errors
    ///
    /// Propagates slice-execution failures.
    pub fn predict(&self, job: &JobInput) -> Result<SoftwarePrediction, CoreError> {
        let run: SliceRun = self
            .predictor
            .runner()
            .run(job)
            .map_err(|e: RtlError| CoreError::from(e))?;
        let predicted_cycles = self.model.predict_cycles(&run.features);
        // The software version executes the same control decisions but as
        // instructions, not cycles.
        let cpu_time_s = run.cycles / self.cpu.ops_per_second;
        let cpu_energy_pj = self.cpu.active_power_mw * 1e9 * cpu_time_s;
        Ok(SoftwarePrediction {
            predicted_cycles,
            cpu_time_s,
            cpu_energy_pj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::SliceFlavor;
    use crate::train::{profile, train, TrainerConfig};
    use predvfs_accel::{sha, WorkloadSize};
    use predvfs_rtl::SliceOptions;

    #[test]
    fn software_prediction_matches_hardware_slice() {
        let m = sha::build();
        let w = sha::workloads(3, WorkloadSize::Quick);
        let model = train(&m, &w.train, &TrainerConfig::default()).unwrap();
        let sp = SlicePredictor::generate(&m, &model, SliceOptions::default(), SliceFlavor::Rtl)
            .unwrap();
        let sw = SoftwarePredictor::new(&sp, &model, CpuModel::default());
        let data = profile(&m, &w.test[..3]).unwrap();
        for (i, job) in w.test.iter().take(3).enumerate() {
            let p = sw.predict(job).unwrap();
            let actual = data.y[i];
            let rel = (p.predicted_cycles - actual) / actual;
            assert!(rel.abs() < 0.10, "job {i}: rel err {rel}");
            assert!(p.cpu_time_s > 0.0);
            assert!(p.cpu_energy_pj > 0.0);
        }
    }
}
