//! # predvfs-faults
//!
//! Deterministic, seeded fault injection for the serve runtime.
//!
//! Real deployments of the paper's predictive-DVFS scheme do not live on
//! the happy path: voltage regulators stall or reject a level switch,
//! the feature slice glitches or times out, clock domains jitter, and
//! workloads spike past anything the offline model saw. This crate
//! describes those events as typed [`FaultKind`]s and delivers them
//! through the [`FaultInjector`] trait, which mirrors the
//! `predvfs-obs::ObsSink` design: every method has a no-op default, so
//! an un-faulted engine pays one `enabled()` branch per injection site.
//!
//! ## Determinism
//!
//! [`FaultPlan`] is *stateless*: every query derives a fresh RNG from
//! `(seed, site, stream, job, attempt)`, so the answer depends only on
//! those coordinates — never on how many other queries happened first,
//! on event interleaving, or on worker-thread count. The serve engine's
//! chaos traces are therefore byte-identical across `--threads 1` and
//! `--threads 8`, which the `chaos_determinism` integration suite pins.
//!
//! ```
//! use predvfs_faults::{FaultConfig, FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::new(7, FaultConfig::standard());
//! assert!(plan.enabled());
//! // Identical coordinates always give the identical answer.
//! assert_eq!(plan.slice_fault(0, 3), plan.slice_fault(0, 3));
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault, with the magnitude the plan drew for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The feature slice produced a corrupted prediction: the controller
    /// sees `predicted × predict_scale` instead of the model's output.
    SliceCorrupt {
        /// Multiplier applied to the predicted cycle count.
        predict_scale: f64,
    },
    /// The feature slice hung and took `time_stretch ×` its nominal time
    /// (the decision itself is unaffected — the budget just shrinks).
    SliceTimeout {
        /// Multiplier on the slice's wall-clock time (≥ 1).
        time_stretch: f64,
    },
    /// The regulator rejected a requested level switch outright.
    SwitchReject,
    /// The regulator settled, but `stretch ×` slower than `Tdvfs`.
    SwitchStall {
        /// Multiplier on the transition time (≥ 1).
        stretch: f64,
    },
    /// The clock domain ran off-frequency for the whole job.
    ClockJitter {
        /// Multiplier on the effective frequency (near 1).
        freq_scale: f64,
    },
    /// A transient workload spike: the job's execution trace is scaled.
    TraceSpike {
        /// Multiplier on execution cycles.
        cycle_scale: f64,
    },
    /// Two jobs arrived back-to-back instead of a period apart.
    ArrivalBurst,
    /// The accelerator raised a completion interrupt with no job in
    /// flight (the event-loop consistency fault).
    SpuriousDone,
}

impl FaultKind {
    /// Stable identifier used in trace events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::SliceCorrupt { .. } => "slice_corrupt",
            FaultKind::SliceTimeout { .. } => "slice_timeout",
            FaultKind::SwitchReject => "switch_reject",
            FaultKind::SwitchStall { .. } => "switch_stall",
            FaultKind::ClockJitter { .. } => "clock_jitter",
            FaultKind::TraceSpike { .. } => "trace_spike",
            FaultKind::ArrivalBurst => "arrival_burst",
            FaultKind::SpuriousDone => "spurious_done",
        }
    }

    /// The fault's magnitude parameter, when it has one.
    pub fn magnitude(&self) -> Option<f64> {
        match *self {
            FaultKind::SliceCorrupt { predict_scale } => Some(predict_scale),
            FaultKind::SliceTimeout { time_stretch } => Some(time_stretch),
            FaultKind::SwitchStall { stretch } => Some(stretch),
            FaultKind::ClockJitter { freq_scale } => Some(freq_scale),
            FaultKind::TraceSpike { cycle_scale } => Some(cycle_scale),
            FaultKind::SwitchReject | FaultKind::ArrivalBurst | FaultKind::SpuriousDone => None,
        }
    }
}

/// Decides, per injection site, whether a fault fires. Mirrors the
/// `ObsSink` pattern: every method defaults to "no fault", so a plain
/// run threads a [`NullInjector`] through the engine at the cost of one
/// branch per site.
///
/// Implementations must be pure functions of their arguments (plus
/// internal immutable configuration): the serve engine queries sites
/// from its serial event loop and relies on answers being independent
/// of query order.
pub trait FaultInjector: Sync {
    /// Quick global gate: when `false`, the engine skips all fault
    /// bookkeeping.
    fn enabled(&self) -> bool {
        false
    }

    /// Should `job` of `stream` arrive back-to-back with its
    /// predecessor instead of a period later? Never queried for job 0.
    fn arrival_burst(&self, _stream: usize, _job: usize) -> bool {
        false
    }

    /// A slice-level fault for this job: corruption of the prediction or
    /// a slice timeout (at most one fires per job).
    fn slice_fault(&self, _stream: usize, _job: usize) -> Option<FaultKind> {
        None
    }

    /// Does the regulator reject this job's level switch on `attempt`
    /// (0-based)? Each retry is an independent draw.
    fn switch_rejected(&self, _stream: usize, _job: usize, _attempt: u32) -> bool {
        false
    }

    /// A stall multiplier (≥ 1) for this job's successful level switch.
    fn switch_stall(&self, _stream: usize, _job: usize) -> Option<f64> {
        None
    }

    /// An off-frequency multiplier (near 1) for this job's execution.
    fn clock_jitter(&self, _stream: usize, _job: usize) -> Option<f64> {
        None
    }

    /// A transient cycle-count multiplier for this job's trace.
    fn trace_spike(&self, _stream: usize, _job: usize) -> Option<f64> {
        None
    }

    /// Should the accelerator raise a spurious completion after this
    /// job finishes?
    fn spurious_done(&self, _stream: usize, _job: usize) -> bool {
        false
    }

    /// Coordinator-level site: does `shard` crash during `epoch` (losing
    /// all in-memory state, to be rebuilt from its last checkpoint plus
    /// the epoch journal)? Queried once per (shard, epoch) at the epoch
    /// barrier.
    fn shard_crash(&self, _shard: usize, _epoch: u64) -> bool {
        false
    }

    /// Coordinator-level site: is `shard` slow reaching the `epoch`
    /// barrier? Purely observational — the barrier protocol already
    /// tolerates arbitrarily slow workers, so a stall is counted and
    /// traced but changes no scheduling decision.
    fn epoch_stall(&self, _shard: usize, _epoch: u64) -> bool {
        false
    }

    /// Coordinator-level site: is the migration transfer of stream `gid`
    /// at `epoch`'s boundary dropped in flight? The coordinator
    /// retransmits from the retained copy, so the admission still
    /// happens — the drop is counted and traced.
    fn transfer_drop(&self, _gid: usize, _epoch: u64) -> bool {
        false
    }
}

/// The default injector: no faults, `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullInjector;

impl FaultInjector for NullInjector {}

/// Per-kind firing probabilities and magnitudes. A probability of 0
/// disables the kind; [`FaultConfig::default`] disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a job's prediction is corrupted.
    pub slice_corrupt_p: f64,
    /// Multiplier applied to a corrupted prediction (> 0).
    pub slice_corrupt_scale: f64,
    /// Probability the slice times out.
    pub slice_timeout_p: f64,
    /// Slice wall-clock stretch on timeout (≥ 1).
    pub slice_timeout_stretch: f64,
    /// Probability a switch attempt is rejected (drawn per attempt).
    pub switch_reject_p: f64,
    /// Probability a successful switch stalls.
    pub switch_stall_p: f64,
    /// Transition-time stretch on stall (≥ 1).
    pub switch_stall_stretch: f64,
    /// Probability a job executes off-frequency.
    pub clock_jitter_p: f64,
    /// Half-width of the jitter band: the frequency multiplier is drawn
    /// uniformly from `[1 − frac, 1 + frac]` (in `[0, 1)`).
    pub clock_jitter_frac: f64,
    /// Probability a job's trace spikes.
    pub trace_spike_p: f64,
    /// Cycle multiplier on spike (> 0).
    pub trace_spike_scale: f64,
    /// Probability an arrival collapses onto its predecessor.
    pub burst_p: f64,
    /// Probability of a spurious completion after a job.
    pub spurious_done_p: f64,
    /// Probability a shard crashes during an epoch (coordinator site;
    /// drawn once per (shard, epoch)).
    pub shard_crash_p: f64,
    /// Probability a shard stalls reaching an epoch barrier
    /// (coordinator site; observational only).
    pub epoch_stall_p: f64,
    /// Probability a migration transfer is dropped and retransmitted
    /// (coordinator site; drawn per (gid, epoch)).
    pub transfer_drop_p: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            slice_corrupt_p: 0.0,
            slice_corrupt_scale: 3.0,
            slice_timeout_p: 0.0,
            slice_timeout_stretch: 4.0,
            switch_reject_p: 0.0,
            switch_stall_p: 0.0,
            switch_stall_stretch: 5.0,
            clock_jitter_p: 0.0,
            clock_jitter_frac: 0.1,
            trace_spike_p: 0.0,
            trace_spike_scale: 2.0,
            burst_p: 0.0,
            spurious_done_p: 0.0,
            shard_crash_p: 0.0,
            epoch_stall_p: 0.0,
            transfer_drop_p: 0.0,
        }
    }
}

impl FaultConfig {
    /// No faults at all (same as `default()`).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// The standard chaos mix used by `predvfs chaos` and CI smoke:
    /// every kind enabled at a low rate with moderate magnitudes.
    pub fn standard() -> FaultConfig {
        FaultConfig {
            slice_corrupt_p: 0.05,
            slice_timeout_p: 0.03,
            switch_reject_p: 0.05,
            switch_stall_p: 0.05,
            clock_jitter_p: 0.05,
            trace_spike_p: 0.05,
            burst_p: 0.05,
            spurious_done_p: 0.02,
            ..FaultConfig::default()
        }
    }

    /// The coordinator-level chaos mix used by `serve --crash` and the
    /// crash-recovery CI smoke: shard crashes, barrier stalls, and
    /// transfer drops only — job-level sites stay off so recovery runs
    /// compare cleanly against the fault-free reference.
    pub fn coordinator() -> FaultConfig {
        FaultConfig {
            shard_crash_p: 0.08,
            epoch_stall_p: 0.05,
            transfer_drop_p: 0.2,
            ..FaultConfig::default()
        }
    }

    /// True when every kind is disabled.
    pub fn is_empty(&self) -> bool {
        [
            self.slice_corrupt_p,
            self.slice_timeout_p,
            self.switch_reject_p,
            self.switch_stall_p,
            self.clock_jitter_p,
            self.trace_spike_p,
            self.burst_p,
            self.spurious_done_p,
            self.shard_crash_p,
            self.epoch_stall_p,
            self.transfer_drop_p,
        ]
        .iter()
        .all(|&p| p == 0.0)
    }

    /// Applies one `key=val` setting from a scenario `[faults]` section.
    ///
    /// Recognised keys (probabilities in `[0, 1]`):
    ///
    /// | key | value | fault |
    /// |-----|-------|-------|
    /// | `slice_corrupt` | `p:scale` | prediction × scale |
    /// | `slice_timeout` | `p:stretch` | slice time × stretch |
    /// | `switch_reject` | `p` | level switch rejected |
    /// | `switch_stall` | `p:stretch` | transition × stretch |
    /// | `clock_jitter` | `p:frac` | frequency × U[1±frac] |
    /// | `trace_spike` | `p:scale` | trace cycles × scale |
    /// | `burst` | `p` | back-to-back arrival |
    /// | `spurious_done` | `p` | phantom completion |
    /// | `shard_crash` | `p` | shard loses state during an epoch |
    /// | `epoch_stall` | `p` | shard slow reaching the barrier |
    /// | `transfer_drop` | `p` | migration transfer retransmitted |
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys and
    /// out-of-range or non-finite values.
    pub fn set(&mut self, key: &str, val: &str) -> Result<(), String> {
        fn prob(s: &str) -> Result<f64, String> {
            let p = s.parse::<f64>().map_err(|e| e.to_string())?;
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("probability must be in [0, 1], got {s}"));
            }
            Ok(p)
        }
        fn prob_mag(s: &str) -> Result<(f64, f64), String> {
            let (p, m) = s
                .split_once(':')
                .ok_or_else(|| "expected <prob>:<magnitude>".to_owned())?;
            let m = m.parse::<f64>().map_err(|e| e.to_string())?;
            Ok((prob(p)?, m))
        }
        fn at_least_one(m: f64) -> Result<f64, String> {
            if !m.is_finite() || m < 1.0 {
                return Err(format!("magnitude must be finite and >= 1, got {m}"));
            }
            Ok(m)
        }
        fn positive(m: f64) -> Result<f64, String> {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!("magnitude must be finite and positive, got {m}"));
            }
            Ok(m)
        }
        match key {
            "slice_corrupt" => {
                let (p, m) = prob_mag(val)?;
                let m = positive(m)?;
                (self.slice_corrupt_p, self.slice_corrupt_scale) = (p, m);
            }
            "slice_timeout" => {
                let (p, m) = prob_mag(val)?;
                let m = at_least_one(m)?;
                (self.slice_timeout_p, self.slice_timeout_stretch) = (p, m);
            }
            "switch_reject" => self.switch_reject_p = prob(val)?,
            "switch_stall" => {
                let (p, m) = prob_mag(val)?;
                let m = at_least_one(m)?;
                (self.switch_stall_p, self.switch_stall_stretch) = (p, m);
            }
            "clock_jitter" => {
                let (p, m) = prob_mag(val)?;
                if !m.is_finite() || !(0.0..1.0).contains(&m) {
                    return Err(format!("jitter fraction must be in [0, 1), got {m}"));
                }
                (self.clock_jitter_p, self.clock_jitter_frac) = (p, m);
            }
            "trace_spike" => {
                let (p, m) = prob_mag(val)?;
                let m = positive(m)?;
                (self.trace_spike_p, self.trace_spike_scale) = (p, m);
            }
            "burst" => self.burst_p = prob(val)?,
            "spurious_done" => self.spurious_done_p = prob(val)?,
            "shard_crash" => self.shard_crash_p = prob(val)?,
            "epoch_stall" => self.epoch_stall_p = prob(val)?,
            "transfer_drop" => self.transfer_drop_p = prob(val)?,
            _ => return Err(format!("unknown fault option {key:?}")),
        }
        Ok(())
    }
}

/// Injection sites, mixed into the per-query seed so the same (stream,
/// job) gets independent draws at each site.
#[derive(Clone, Copy)]
enum Site {
    Burst = 1,
    Slice = 2,
    SwitchReject = 3,
    SwitchStall = 4,
    Jitter = 5,
    Spike = 6,
    Spurious = 7,
    ShardCrash = 8,
    EpochStall = 9,
    TransferDrop = 10,
}

/// A seeded, deterministic fault plan.
///
/// Stateless by construction: each query hashes `(seed, site, stream,
/// job, attempt)` into a fresh [`StdRng`], so answers are independent
/// of query order, event interleaving, and thread count.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan firing `config`'s fault mix under `seed`.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan { seed, config }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault mix.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    fn rng(&self, site: Site, stream: usize, job: usize, attempt: u32) -> StdRng {
        let mut h = self.seed ^ 0x517C_C1B7_2722_0A95;
        for w in [site as u64, stream as u64, job as u64, u64::from(attempt)] {
            h ^= w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(27).wrapping_mul(0xD1B5_4A32_D192_ED03);
        }
        StdRng::seed_from_u64(h)
    }
}

impl FaultInjector for FaultPlan {
    fn enabled(&self) -> bool {
        !self.config.is_empty()
    }

    fn arrival_burst(&self, stream: usize, job: usize) -> bool {
        self.config.burst_p > 0.0
            && self
                .rng(Site::Burst, stream, job, 0)
                .gen_bool(self.config.burst_p)
    }

    fn slice_fault(&self, stream: usize, job: usize) -> Option<FaultKind> {
        let c = &self.config;
        if c.slice_corrupt_p == 0.0 && c.slice_timeout_p == 0.0 {
            return None;
        }
        // One rng for the whole site keeps corruption and timeout draws
        // correlated to the coordinates, not to each other's settings.
        let mut rng = self.rng(Site::Slice, stream, job, 0);
        let corrupt = rng.gen_bool(c.slice_corrupt_p);
        let timeout = rng.gen_bool(c.slice_timeout_p);
        if corrupt {
            Some(FaultKind::SliceCorrupt {
                predict_scale: c.slice_corrupt_scale,
            })
        } else if timeout {
            Some(FaultKind::SliceTimeout {
                time_stretch: c.slice_timeout_stretch,
            })
        } else {
            None
        }
    }

    fn switch_rejected(&self, stream: usize, job: usize, attempt: u32) -> bool {
        self.config.switch_reject_p > 0.0
            && self
                .rng(Site::SwitchReject, stream, job, attempt)
                .gen_bool(self.config.switch_reject_p)
    }

    fn switch_stall(&self, stream: usize, job: usize) -> Option<f64> {
        if self.config.switch_stall_p == 0.0 {
            return None;
        }
        self.rng(Site::SwitchStall, stream, job, 0)
            .gen_bool(self.config.switch_stall_p)
            .then_some(self.config.switch_stall_stretch)
    }

    fn clock_jitter(&self, stream: usize, job: usize) -> Option<f64> {
        if self.config.clock_jitter_p == 0.0 {
            return None;
        }
        let mut rng = self.rng(Site::Jitter, stream, job, 0);
        if !rng.gen_bool(self.config.clock_jitter_p) {
            return None;
        }
        let frac = self.config.clock_jitter_frac;
        if frac == 0.0 {
            return Some(1.0);
        }
        Some(rng.gen_range(1.0 - frac..1.0 + frac))
    }

    fn trace_spike(&self, stream: usize, job: usize) -> Option<f64> {
        if self.config.trace_spike_p == 0.0 {
            return None;
        }
        self.rng(Site::Spike, stream, job, 0)
            .gen_bool(self.config.trace_spike_p)
            .then_some(self.config.trace_spike_scale)
    }

    fn spurious_done(&self, stream: usize, job: usize) -> bool {
        self.config.spurious_done_p > 0.0
            && self
                .rng(Site::Spurious, stream, job, 0)
                .gen_bool(self.config.spurious_done_p)
    }

    fn shard_crash(&self, shard: usize, epoch: u64) -> bool {
        self.config.shard_crash_p > 0.0
            && self
                .rng(Site::ShardCrash, shard, epoch as usize, 0)
                .gen_bool(self.config.shard_crash_p)
    }

    fn epoch_stall(&self, shard: usize, epoch: u64) -> bool {
        self.config.epoch_stall_p > 0.0
            && self
                .rng(Site::EpochStall, shard, epoch as usize, 0)
                .gen_bool(self.config.epoch_stall_p)
    }

    fn transfer_drop(&self, gid: usize, epoch: u64) -> bool {
        self.config.transfer_drop_p > 0.0
            && self
                .rng(Site::TransferDrop, gid, epoch as usize, 0)
                .gen_bool(self.config.transfer_drop_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every site's answer for one (stream, job) coordinate.
    fn snapshot(plan: &FaultPlan, stream: usize, job: usize) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            plan.arrival_burst(stream, job),
            plan.slice_fault(stream, job),
            (0..4)
                .map(|a| plan.switch_rejected(stream, job, a))
                .collect::<Vec<_>>(),
            plan.switch_stall(stream, job),
            plan.clock_jitter(stream, job),
            plan.trace_spike(stream, job),
            plan.spurious_done(stream, job),
        )
    }

    #[test]
    fn identical_coordinates_identical_answers() {
        let plan = FaultPlan::new(7, FaultConfig::standard());
        for stream in 0..3 {
            for job in 0..50 {
                assert_eq!(
                    snapshot(&plan, stream, job),
                    snapshot(&plan, stream, job),
                    "stream {stream} job {job}"
                );
            }
        }
    }

    #[test]
    fn answers_are_query_order_independent() {
        // Two plans, queried in opposite orders, must agree everywhere —
        // the property the serve engine's determinism rests on.
        let a = FaultPlan::new(11, FaultConfig::standard());
        let b = FaultPlan::new(11, FaultConfig::standard());
        let fwd: Vec<String> = (0..40).map(|j| snapshot(&a, 0, j)).collect();
        let rev: Vec<String> = (0..40).rev().map(|j| snapshot(&b, 0, j)).collect();
        for (j, s) in fwd.iter().enumerate() {
            assert_eq!(*s, rev[39 - j], "job {j}");
        }
    }

    #[test]
    fn seeds_change_the_plan() {
        let a = FaultPlan::new(1, FaultConfig::standard());
        let b = FaultPlan::new(2, FaultConfig::standard());
        assert!(
            (0..200).any(|j| snapshot(&a, 0, j) != snapshot(&b, 0, j)),
            "different seeds must eventually disagree"
        );
    }

    #[test]
    fn sites_draw_independently() {
        // A plan with every probability at 1 must fire all kinds at the
        // same coordinate; one with 0 must fire none.
        let mut all = FaultConfig::standard();
        all.slice_corrupt_p = 1.0;
        all.switch_reject_p = 1.0;
        all.trace_spike_p = 1.0;
        let hot = FaultPlan::new(3, all);
        assert!(matches!(
            hot.slice_fault(0, 0),
            Some(FaultKind::SliceCorrupt { .. })
        ));
        assert!(hot.switch_rejected(0, 0, 0));
        assert_eq!(hot.trace_spike(0, 0), Some(all.trace_spike_scale));

        let cold = FaultPlan::new(3, FaultConfig::none());
        assert!(!cold.enabled());
        for j in 0..50 {
            assert_eq!(snapshot(&cold, 0, j), snapshot(&cold, 1, j));
            assert!(cold.slice_fault(0, j).is_none());
            assert!(!cold.arrival_burst(0, j));
        }
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let mut c = FaultConfig::none();
        c.trace_spike_p = 0.25;
        let plan = FaultPlan::new(5, c);
        let fired = (0..2000)
            .filter(|&j| plan.trace_spike(0, j).is_some())
            .count();
        assert!(
            (350..650).contains(&fired),
            "expected ~500 of 2000 spikes, got {fired}"
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut c = FaultConfig::none();
        c.clock_jitter_p = 1.0;
        c.clock_jitter_frac = 0.2;
        let plan = FaultPlan::new(9, c);
        for j in 0..500 {
            let f = plan.clock_jitter(0, j).expect("p=1 always fires");
            assert!((0.8..1.2).contains(&f), "jitter {f} out of band");
        }
    }

    #[test]
    fn config_parsing_accepts_the_documented_keys() {
        let mut c = FaultConfig::none();
        c.set("slice_corrupt", "0.1:2.5").unwrap();
        c.set("slice_timeout", "0.05:3").unwrap();
        c.set("switch_reject", "0.2").unwrap();
        c.set("switch_stall", "0.1:4").unwrap();
        c.set("clock_jitter", "0.3:0.15").unwrap();
        c.set("trace_spike", "0.25:1.9").unwrap();
        c.set("burst", "0.1").unwrap();
        c.set("spurious_done", "1").unwrap();
        assert!((c.slice_corrupt_p - 0.1).abs() < 1e-12);
        assert!((c.slice_corrupt_scale - 2.5).abs() < 1e-12);
        assert!((c.clock_jitter_frac - 0.15).abs() < 1e-12);
        assert!((c.spurious_done_p - 1.0).abs() < 1e-12);
        assert!(!c.is_empty());
    }

    #[test]
    fn config_parsing_rejects_bad_values() {
        let mut c = FaultConfig::none();
        assert!(c.set("wombat", "1").is_err());
        assert!(c.set("burst", "1.5").is_err());
        assert!(c.set("burst", "-0.1").is_err());
        assert!(c.set("burst", "nan").is_err());
        assert!(c.set("switch_reject", "inf").is_err());
        assert!(c.set("slice_corrupt", "0.1").is_err(), "missing magnitude");
        assert!(c.set("slice_corrupt", "0.1:0").is_err());
        assert!(c.set("slice_timeout", "0.1:0.5").is_err(), "stretch < 1");
        assert!(c.set("switch_stall", "0.1:inf").is_err());
        assert!(
            c.set("clock_jitter", "0.1:1.0").is_err(),
            "frac must be < 1"
        );
        assert!(c.set("trace_spike", "0.1:-2").is_err());
        assert!(c.is_empty(), "failed sets must not enable anything");
    }

    #[test]
    fn null_injector_is_disabled() {
        let n = NullInjector;
        assert!(!n.enabled());
        assert!(n.slice_fault(0, 0).is_none());
        assert!(!n.switch_rejected(0, 0, 0));
        assert!(!n.shard_crash(0, 0));
        assert!(!n.epoch_stall(0, 0));
        assert!(!n.transfer_drop(0, 0));
    }

    /// Every coordinator site's answer for one (shard-ish, epoch) pair.
    fn coord_snapshot(plan: &FaultPlan, shard: usize, epoch: u64) -> String {
        format!(
            "{:?}|{:?}|{:?}",
            plan.shard_crash(shard, epoch),
            plan.epoch_stall(shard, epoch),
            plan.transfer_drop(shard, epoch),
        )
    }

    #[test]
    fn coordinator_sites_are_deterministic_and_independent() {
        let plan = FaultPlan::new(7, FaultConfig::coordinator());
        assert!(plan.enabled());
        for shard in 0..4 {
            for epoch in 0..64 {
                assert_eq!(
                    coord_snapshot(&plan, shard, epoch),
                    coord_snapshot(&plan, shard, epoch),
                    "shard {shard} epoch {epoch}"
                );
            }
        }
        // The three sites must not mirror each other at shared
        // coordinates: with all probabilities forced to 1 vs a fair mix,
        // per-site draws come from distinct streams.
        let crashes: Vec<bool> = (0..200).map(|e| plan.shard_crash(1, e)).collect();
        let stalls: Vec<bool> = (0..200).map(|e| plan.epoch_stall(1, e)).collect();
        let drops: Vec<bool> = (0..200).map(|e| plan.transfer_drop(1, e)).collect();
        assert_ne!(crashes, stalls);
        assert_ne!(crashes, drops);
    }

    #[test]
    fn coordinator_sites_stay_out_of_job_level_presets() {
        // `standard()` predates the coordinator sites; adding them there
        // would silently change every existing chaos trace.
        let std = FaultConfig::standard();
        assert_eq!(std.shard_crash_p, 0.0);
        assert_eq!(std.epoch_stall_p, 0.0);
        assert_eq!(std.transfer_drop_p, 0.0);
        // And `coordinator()` keeps job-level sites off so crash runs
        // compare against a clean reference.
        let coord = FaultConfig::coordinator();
        assert!(coord.shard_crash_p > 0.0);
        assert_eq!(coord.trace_spike_p, 0.0);
        assert_eq!(coord.burst_p, 0.0);
        assert!(!coord.is_empty());
        let plan = FaultPlan::new(3, coord);
        for j in 0..50 {
            assert!(plan.slice_fault(0, j).is_none());
            assert!(!plan.arrival_burst(0, j));
        }
    }

    #[test]
    fn coordinator_probabilities_are_roughly_honored() {
        let mut c = FaultConfig::none();
        c.shard_crash_p = 0.25;
        let plan = FaultPlan::new(5, c);
        let fired = (0..2000u64).filter(|&e| plan.shard_crash(0, e)).count();
        assert!(
            (350..650).contains(&fired),
            "expected ~500 of 2000 crashes, got {fired}"
        );
    }

    #[test]
    fn config_parsing_accepts_coordinator_keys() {
        let mut c = FaultConfig::none();
        c.set("shard_crash", "0.1").unwrap();
        c.set("epoch_stall", "0.2").unwrap();
        c.set("transfer_drop", "0.3").unwrap();
        assert!((c.shard_crash_p - 0.1).abs() < 1e-12);
        assert!((c.epoch_stall_p - 0.2).abs() < 1e-12);
        assert!((c.transfer_drop_p - 0.3).abs() < 1e-12);
        assert!(c.set("shard_crash", "1.5").is_err());
        assert!(c.set("epoch_stall", "nan").is_err());
        assert!(c.set("transfer_drop", "-0.1").is_err());
    }
}
