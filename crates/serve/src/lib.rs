//! # predvfs-serve
//!
//! A deterministic multi-stream DVFS *service* runtime on top of the
//! batch evaluation pipeline: N independent accelerator streams (each a
//! benchmark, an arrival process, and a deadline) submit jobs into
//! bounded per-stream admission queues, a virtual clock advances over
//! arrival / slice-done / level-switch / job-done events, and each stream
//! applies per-job predictive DVFS using the `predvfs` controllers —
//! including the online-adaptive controller that detects model drift,
//! falls back to reactive PID control, and recovers with warm-started
//! refits.
//!
//! Where the batch runner answers *"how much energy does this controller
//! save over a recorded job set?"*, this crate answers the service-level
//! questions: what happens under queueing and backpressure (shed vs.
//! deadline-relax), and what happens when the workload distribution
//! shifts mid-run.
//!
//! ```no_run
//! use predvfs_serve::{Scenario, ServeRuntime};
//! use predvfs_sim::TraceCache;
//!
//! let scenario = Scenario::demo();
//! let runtime = ServeRuntime::prepare(&scenario, &TraceCache::new())?;
//! let result = runtime.run()?;
//! for s in &result.streams {
//!     println!("{}: {} done, {:.1}% missed, {} shed", s.name, s.completed(),
//!              s.miss_pct(), s.shed);
//! }
//! # Ok::<(), predvfs_serve::ServeError>(())
//! ```
//!
//! The engine is deliberately serial: determinism is the contract (the
//! `serve_determinism` integration test pins it), and parallelism lives
//! in the preparation phase, which fans out per-stream training/slicing
//! with [`predvfs_par`] and deduplicates trace simulation through the
//! shared [`predvfs_sim::TraceCache`].

#![warn(missing_docs)]

mod engine;
mod scenario;
mod slo;

pub use engine::{
    BoostRequest, DegradeConfig, EngineCheckpoint, EngineConfig, MigratedStream, ServeRecord,
    ServeResult, ServeRuntime, ShardEngine, ShardLoad, StreamResult,
};
pub use scenario::{
    ControllerKind, DriftSpec, FaultsSpec, OverloadPolicy, Scenario, ServeError, StreamSpec,
};
pub use slo::{SloConfig, SloTracker};
