//! Scenario descriptions for the service runtime: which streams run,
//! against which platform, with what deadlines, arrival rates, queue
//! bounds, overload policies, controllers, and injected drift.
//!
//! Scenarios are parsed from a small line-oriented text format so the CLI
//! can run service experiments without recompiling:
//!
//! ```text
//! # comment
//! platform asic            # or fpga
//! size quick               # or full
//! stream sha  deadline_ms=16.7 period_ms=8 jobs=60 queue=4 policy=shed controller=predictive seed=42
//! stream aes  policy=relax:1.5 controller=adaptive drift=0.5:1.6
//!
//! [faults]                 # inert unless --faults / chaos activates it
//! seed=7
//! trace_spike=0.2:1.9 switch_reject=0.25
//! ```
//!
//! Every `key=val` is optional; [`StreamSpec::new`] supplies defaults.
//! The `[faults]` section (keys documented at
//! [`predvfs_faults::FaultConfig::set`]) declares the chaos mix a
//! `serve --faults <seed>` or `chaos` run fires; a plain `serve` run
//! ignores it.

use std::error::Error;
use std::fmt;

use predvfs::CoreError;
use predvfs_accel::{by_name, Benchmark, WorkloadSize};
use predvfs_faults::FaultConfig;
use predvfs_sim::Platform;

/// What happens to an arriving job when its stream's queue is full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadPolicy {
    /// Drop the job and count it as shed.
    Shed,
    /// Admit the job anyway with its deadline stretched by `factor`,
    /// counting it as relaxed.
    Relax {
        /// Deadline multiplier applied to the admitted job (> 1).
        factor: f64,
    },
}

/// Which controller drives a stream's DVFS decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// The paper's predictive controller with a fixed offline model.
    Predictive,
    /// Predictive with online drift detection, PID fallback, and
    /// warm-started refits ([`predvfs::AdaptiveController`]).
    Adaptive,
    /// Reactive PID control only.
    Pid,
    /// Predictive with EWMA residual correction
    /// ([`predvfs::HybridController`]).
    Hybrid,
    /// Predictive with the slice run memoized per distinct test job.
    ///
    /// Decisions are identical to [`ControllerKind::Predictive`] — the
    /// slice simulation for each of the (cyclically reused) test jobs is
    /// executed once per prepared experiment and its prediction, slice
    /// cycles, and slice energy are cached — but the per-job cost drops
    /// from an RTL simulation to a ladder scan, which is what makes
    /// million-stream scale scenarios tractable.
    Cached,
}

impl ControllerKind {
    /// The scenario-file keyword.
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::Predictive => "predictive",
            ControllerKind::Adaptive => "adaptive",
            ControllerKind::Pid => "pid",
            ControllerKind::Hybrid => "hybrid",
            ControllerKind::Cached => "cached",
        }
    }
}

/// A mid-run workload-distribution shift injected into a stream.
///
/// From job `⌊at_frac·jobs⌋` onward every job's execution trace is scaled
/// by `cycle_scale` — the jobs *look* identical to the feature slice (the
/// features the offline model reads don't move) but take longer, exactly
/// the silent-staleness failure mode online adaptation exists for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Fraction of the stream's job sequence after which the shift applies.
    pub at_frac: f64,
    /// Multiplier on execution cycles (and datapath activity) post-shift.
    pub cycle_scale: f64,
}

/// One job stream: a benchmark, an arrival process, and service policy.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Display name (defaults to the benchmark name).
    pub name: String,
    /// The accelerator serving this stream.
    pub bench: Benchmark,
    /// Per-job deadline, seconds.
    pub deadline_s: f64,
    /// Inter-arrival period, seconds.
    pub period_s: f64,
    /// Number of jobs the stream submits.
    pub jobs: usize,
    /// Admission-queue bound (jobs waiting, excluding the one in service).
    pub queue_bound: usize,
    /// What to do with arrivals that find the queue full.
    pub policy: OverloadPolicy,
    /// The controller driving DVFS decisions.
    pub controller: ControllerKind,
    /// Workload seed.
    pub seed: u64,
    /// Optional mid-run workload shift.
    pub drift: Option<DriftSpec>,
}

impl StreamSpec {
    /// A stream with the paper's deadline (16.7 ms), arrivals at the
    /// deadline period, 60 jobs, a queue bound of 4, shedding on
    /// overload, the predictive controller, and seed 42.
    pub fn new(bench: Benchmark) -> StreamSpec {
        StreamSpec {
            name: bench.name.to_owned(),
            bench,
            deadline_s: 16.7e-3,
            period_s: 16.7e-3,
            jobs: 60,
            queue_bound: 4,
            policy: OverloadPolicy::Shed,
            controller: ControllerKind::Predictive,
            seed: 42,
            drift: None,
        }
    }
}

/// The `[faults]` section of a scenario: a default seed plus the fault
/// mix a chaos run should fire.
///
/// Declaring the section does **not** perturb plain `serve` runs — it
/// is inert until activated by `serve --faults <seed>` (the flag's seed
/// wins over the section's) or the `chaos` subcommand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultsSpec {
    /// Default fault-plan seed when the CLI doesn't pick one.
    pub seed: u64,
    /// Per-kind firing probabilities and magnitudes.
    pub config: FaultConfig,
}

impl Default for FaultsSpec {
    fn default() -> FaultsSpec {
        FaultsSpec {
            seed: 42,
            config: FaultConfig::none(),
        }
    }
}

/// A full service scenario: platform, workload scale, and streams.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// ASIC or FPGA ladder/curve.
    pub platform: Platform,
    /// Paper-scale or quick workloads.
    pub size: WorkloadSize,
    /// The concurrent job streams.
    pub streams: Vec<StreamSpec>,
    /// Fault mix declared by a `[faults]` section, if any.
    pub faults: Option<FaultsSpec>,
}

impl Scenario {
    /// The built-in demonstration scenario: four mixed-benchmark streams
    /// on the ASIC platform, one adaptive stream with injected drift and
    /// one overloaded stream exercising backpressure.
    pub fn demo() -> Scenario {
        let mut drifted = StreamSpec::new(by_name("aes").expect("aes registered"));
        drifted.controller = ControllerKind::Adaptive;
        drifted.drift = Some(DriftSpec {
            at_frac: 0.5,
            cycle_scale: 1.6,
        });
        let mut overloaded = StreamSpec::new(by_name("md").expect("md registered"));
        overloaded.period_s = 0.5e-3; // arrivals ~3x faster than service
        overloaded.queue_bound = 2;
        let mut relaxed = StreamSpec::new(by_name("stencil").expect("stencil registered"));
        relaxed.period_s = 0.03e-3;
        relaxed.queue_bound = 2;
        relaxed.policy = OverloadPolicy::Relax { factor: 1.5 };
        relaxed.controller = ControllerKind::Hybrid;
        Scenario {
            platform: Platform::Asic,
            size: WorkloadSize::Quick,
            streams: vec![
                StreamSpec::new(by_name("sha").expect("sha registered")),
                drifted,
                overloaded,
                relaxed,
            ],
            faults: None,
        }
    }

    /// Parses the line-oriented scenario format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Parse`] with a 1-based line number for any
    /// malformed directive, and [`ServeError::UnknownBenchmark`] for a
    /// stream naming an unregistered accelerator.
    pub fn parse(text: &str) -> Result<Scenario, ServeError> {
        let mut scenario = Scenario {
            platform: Platform::Asic,
            size: WorkloadSize::Quick,
            streams: Vec::new(),
            faults: None,
        };
        let mut in_faults = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| ServeError::Parse { line: i + 1, msg };
            if line == "[faults]" {
                in_faults = true;
                scenario.faults.get_or_insert_with(FaultsSpec::default);
                continue;
            }
            let mut words = line.split_whitespace();
            let first = words.clone().next();
            // Inside a `[faults]` section every key=val line configures
            // the fault mix; any regular directive closes the section.
            if in_faults && first.is_some_and(|w| w.contains('=')) {
                let faults = scenario.faults.as_mut().expect("section opened");
                for kv in line.split_whitespace() {
                    let (key, val) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected key=val, got {kv:?}")))?;
                    if key == "seed" {
                        faults.seed = val
                            .parse()
                            .map_err(|e: std::num::ParseIntError| err(e.to_string()))?;
                    } else {
                        faults
                            .config
                            .set(key, val)
                            .map_err(|msg| err(format!("{key}={val}: {msg}")))?;
                    }
                }
                continue;
            }
            in_faults = false;
            match words.next() {
                Some("platform") => {
                    scenario.platform = match words.next() {
                        Some("asic") => Platform::Asic,
                        Some("fpga") => Platform::Fpga,
                        other => {
                            return Err(err(format!("expected asic|fpga, got {other:?}")));
                        }
                    };
                }
                Some("size") => {
                    scenario.size = match words.next() {
                        Some("quick") => WorkloadSize::Quick,
                        Some("full") => WorkloadSize::Full,
                        other => {
                            return Err(err(format!("expected quick|full, got {other:?}")));
                        }
                    };
                }
                Some("stream") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("stream needs a benchmark name".into()))?;
                    let bench = by_name(name)
                        .ok_or_else(|| ServeError::UnknownBenchmark(name.to_owned()))?;
                    let mut spec = StreamSpec::new(bench);
                    for kv in words {
                        let (key, val) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=val, got {kv:?}")))?;
                        parse_stream_option(&mut spec, key, val)
                            .map_err(|msg| err(format!("{key}={val}: {msg}")))?;
                    }
                    scenario.streams.push(spec);
                }
                Some(word) => {
                    return Err(err(format!("unknown directive {word:?}")));
                }
                None => unreachable!("blank lines are skipped"),
            }
        }
        if scenario.streams.is_empty() {
            return Err(ServeError::Parse {
                line: text.lines().count().max(1),
                msg: "scenario declares no streams".into(),
            });
        }
        Ok(scenario)
    }
}

fn parse_stream_option(spec: &mut StreamSpec, key: &str, val: &str) -> Result<(), String> {
    fn num(val: &str) -> Result<f64, String> {
        val.parse::<f64>().map_err(|e| e.to_string())
    }
    fn positive(val: &str) -> Result<f64, String> {
        let v = num(val)?;
        // `is_finite` so NaN and infinities are rejected, not just <= 0.
        if !v.is_finite() || v <= 0.0 {
            return Err("must be positive".into());
        }
        Ok(v)
    }
    match key {
        "name" => spec.name = val.to_owned(),
        "deadline_ms" => spec.deadline_s = positive(val)? * 1e-3,
        "period_ms" => spec.period_s = positive(val)? * 1e-3,
        "jobs" => {
            spec.jobs = val
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?;
            if spec.jobs == 0 {
                return Err("stream must submit at least one job".into());
            }
        }
        "queue" => {
            spec.queue_bound = val
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?;
        }
        "seed" => {
            spec.seed = val
                .parse()
                .map_err(|e: std::num::ParseIntError| e.to_string())?
        }
        "policy" => {
            spec.policy = if val == "shed" {
                OverloadPolicy::Shed
            } else if let Some(f) = val.strip_prefix("relax:") {
                let factor = num(f)?;
                // `is_finite` first: NaN fails every comparison, so a
                // plain `factor <= 1.0` check would wave NaN (and +inf)
                // straight through into deadline arithmetic.
                if !factor.is_finite() || factor <= 1.0 {
                    return Err("relax factor must be finite and > 1".into());
                }
                OverloadPolicy::Relax { factor }
            } else {
                return Err("expected shed or relax:<factor>".into());
            };
        }
        "controller" => {
            spec.controller = match val {
                "predictive" => ControllerKind::Predictive,
                "adaptive" => ControllerKind::Adaptive,
                "pid" => ControllerKind::Pid,
                "hybrid" => ControllerKind::Hybrid,
                "cached" => ControllerKind::Cached,
                _ => return Err("expected predictive|adaptive|pid|hybrid|cached".into()),
            };
        }
        "drift" => {
            let (at, scale) = val
                .split_once(':')
                .ok_or_else(|| "expected <at_frac>:<cycle_scale>".to_owned())?;
            let drift = DriftSpec {
                at_frac: num(at)?,
                cycle_scale: num(scale)?,
            };
            if !(0.0..=1.0).contains(&drift.at_frac) {
                return Err("at_frac must be in [0, 1]".into());
            }
            if drift.cycle_scale <= 0.0 {
                return Err("cycle_scale must be positive".into());
            }
            spec.drift = Some(drift);
        }
        _ => return Err("unknown stream option".into()),
    }
    Ok(())
}

/// Errors produced by scenario parsing and the service runtime.
#[derive(Debug)]
pub enum ServeError {
    /// A failure from the core pipeline (training, slicing, simulation).
    Core(CoreError),
    /// A malformed scenario file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A stream names a benchmark that is not registered.
    UnknownBenchmark(String),
    /// A stream specification is semantically invalid.
    InvalidSpec {
        /// The stream's display name.
        stream: String,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Parse { line, msg } => write!(f, "scenario line {line}: {msg}"),
            ServeError::UnknownBenchmark(name) => write!(f, "unknown benchmark {name:?}"),
            ServeError::InvalidSpec { stream, msg } => write!(f, "stream {stream:?}: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> ServeError {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let s = Scenario::parse(
            "# demo\n\
             platform fpga\n\
             size quick\n\
             stream sha deadline_ms=20 period_ms=10 jobs=30 queue=2 policy=shed seed=7\n\
             stream aes policy=relax:1.5 controller=adaptive drift=0.5:1.6 # inline comment\n",
        )
        .unwrap();
        assert_eq!(s.platform, Platform::Fpga);
        assert_eq!(s.streams.len(), 2);
        let sha = &s.streams[0];
        assert_eq!(sha.name, "sha");
        assert!((sha.deadline_s - 20e-3).abs() < 1e-12);
        assert!((sha.period_s - 10e-3).abs() < 1e-12);
        assert_eq!((sha.jobs, sha.queue_bound, sha.seed), (30, 2, 7));
        let aes = &s.streams[1];
        assert_eq!(aes.policy, OverloadPolicy::Relax { factor: 1.5 });
        assert_eq!(aes.controller, ControllerKind::Adaptive);
        let drift = aes.drift.unwrap();
        assert!((drift.at_frac - 0.5).abs() < 1e-12);
        assert!((drift.cycle_scale - 1.6).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        let err = Scenario::parse("platform asic\nstream sha queue=x\n").unwrap_err();
        match err {
            ServeError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(matches!(
            Scenario::parse("stream nosuch\n").unwrap_err(),
            ServeError::UnknownBenchmark(_)
        ));
        assert!(matches!(
            Scenario::parse("platform asic\n").unwrap_err(),
            ServeError::Parse { .. }
        ));
        assert!(matches!(
            Scenario::parse("stream sha drift=2:1.5\n").unwrap_err(),
            ServeError::Parse { .. }
        ));
    }

    /// Asserts that parsing fails with a [`ServeError::Parse`] whose
    /// message contains `needle`.
    fn assert_parse_err(text: &str, needle: &str) {
        match Scenario::parse(text) {
            Err(ServeError::Parse { msg, .. }) => assert!(
                msg.contains(needle),
                "error for {text:?} should mention {needle:?}, got {msg:?}"
            ),
            other => panic!("{text:?} must fail to parse, got {other:?}"),
        }
    }

    #[test]
    fn relax_factor_rejects_nan_inf_and_at_most_one() {
        // `factor < 1.0` would wave NaN and +inf through (NaN fails every
        // comparison) and accept exactly 1.0, which makes Relax a no-op
        // pretending to be backpressure relief.
        assert_parse_err("stream sha policy=relax:nan\n", "finite");
        assert_parse_err("stream sha policy=relax:inf\n", "finite");
        assert_parse_err("stream sha policy=relax:-inf\n", "finite");
        assert_parse_err("stream sha policy=relax:1.0\n", "> 1");
        assert_parse_err("stream sha policy=relax:1\n", "> 1");
        assert_parse_err("stream sha policy=relax:0.5\n", "> 1");
        assert_parse_err("stream sha policy=relax:-2\n", "> 1");
        // The boundary the validation protects: anything > 1 still parses.
        let s = Scenario::parse("stream sha policy=relax:1.001\n").unwrap();
        assert_eq!(s.streams[0].policy, OverloadPolicy::Relax { factor: 1.001 });
    }

    #[test]
    fn parses_a_faults_section() {
        let s = Scenario::parse(
            "stream sha jobs=10\n\
             [faults]\n\
             seed=7\n\
             trace_spike=0.2:1.9 switch_reject=0.25\n\
             burst=0.1 # inline comment\n",
        )
        .unwrap();
        let f = s.faults.expect("section parsed");
        assert_eq!(f.seed, 7);
        assert!((f.config.trace_spike_p - 0.2).abs() < 1e-12);
        assert!((f.config.trace_spike_scale - 1.9).abs() < 1e-12);
        assert!((f.config.switch_reject_p - 0.25).abs() < 1e-12);
        assert!((f.config.burst_p - 0.1).abs() < 1e-12);
        assert!(!f.config.is_empty());
    }

    #[test]
    fn faults_section_closes_on_a_regular_directive() {
        let s = Scenario::parse(
            "[faults]\n\
             burst=0.5\n\
             stream sha jobs=5\n",
        )
        .unwrap();
        assert_eq!(s.streams.len(), 1);
        let f = s.faults.expect("section parsed");
        assert!((f.config.burst_p - 0.5).abs() < 1e-12);
        // Default seed when the section doesn't set one.
        assert_eq!(f.seed, FaultsSpec::default().seed);
    }

    #[test]
    fn faults_section_rejects_bad_values_with_line_numbers() {
        let err = Scenario::parse(
            "stream sha\n\
             [faults]\n\
             burst=1.5\n",
        )
        .unwrap_err();
        match err {
            ServeError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("[0, 1]"), "got {msg:?}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        assert!(matches!(
            Scenario::parse("stream sha\n[faults]\nwombat=1\n").unwrap_err(),
            ServeError::Parse { line: 3, .. }
        ));
        assert!(matches!(
            Scenario::parse("stream sha\n[faults]\nseed=x\n").unwrap_err(),
            ServeError::Parse { line: 3, .. }
        ));
    }

    #[test]
    fn scenario_without_faults_section_has_none() {
        let s = Scenario::parse("stream sha\n").unwrap();
        assert!(s.faults.is_none());
        assert!(Scenario::demo().faults.is_none());
    }

    #[test]
    fn rejects_out_of_range_drift() {
        assert_parse_err("stream sha drift=2:1.5\n", "at_frac");
        assert_parse_err("stream sha drift=-0.1:1.5\n", "at_frac");
    }

    #[test]
    fn rejects_non_positive_cycle_scale() {
        assert_parse_err("stream sha drift=0.5:0\n", "cycle_scale");
        assert_parse_err("stream sha drift=0.5:-2\n", "cycle_scale");
    }

    #[test]
    fn rejects_malformed_drift_directive() {
        assert_parse_err("stream sha drift=0.5\n", "expected");
        assert_parse_err("stream sha drift=a:b\n", "invalid");
    }

    #[test]
    fn rejects_non_positive_period_and_deadline() {
        assert_parse_err("stream sha period_ms=0\n", "positive");
        assert_parse_err("stream sha period_ms=-3\n", "positive");
        assert_parse_err("stream sha period_ms=nan\n", "positive");
        assert_parse_err("stream sha deadline_ms=0\n", "positive");
        assert_parse_err("stream sha deadline_ms=-16.7\n", "positive");
    }

    #[test]
    fn rejects_zero_jobs() {
        assert_parse_err("stream sha jobs=0\n", "at least one job");
    }

    #[test]
    fn rejects_unknown_benchmark_and_option() {
        assert!(matches!(
            Scenario::parse("stream nosuchbench\n").unwrap_err(),
            ServeError::UnknownBenchmark(name) if name == "nosuchbench"
        ));
        assert_parse_err("stream sha wombat=3\n", "unknown stream option");
    }

    #[test]
    fn demo_scenario_is_wellformed() {
        let s = Scenario::demo();
        assert_eq!(s.streams.len(), 4);
        assert!(s.streams.iter().any(|st| st.drift.is_some()));
        assert!(s
            .streams
            .iter()
            .any(|st| matches!(st.policy, OverloadPolicy::Relax { .. })));
    }
}
