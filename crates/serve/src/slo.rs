//! Per-stream SLO burn-rate tracking over the virtual clock.
//!
//! An SLO ("at most 5 % of jobs may miss their deadline") is consumed as
//! an *error budget*; the **burn rate** is how fast the budget is being
//! spent — observed miss rate divided by the budgeted rate, so burn 1.0
//! spends the budget exactly on schedule and burn 10 means the budget is
//! gone in a tenth of the window. Following the standard multi-window
//! alerting recipe, [`SloTracker`] evaluates the burn over a *fast* and a
//! *slow* window simultaneously and alerts only when **both** exceed the
//! threshold: the slow window filters out blips the fast window over-
//! reacts to, while the fast window makes sure the alert clears promptly
//! once the condition ends.
//!
//! All state is fed from the serve engine's serial event loop and clocked
//! by the virtual clock, so tracker output is deterministic across
//! `--threads` like every other trace artifact.

use std::collections::VecDeque;

/// Configuration of an [`SloTracker`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Fast-window span, virtual seconds.
    pub fast_window_s: f64,
    /// Slow-window span, virtual seconds (≥ fast).
    pub slow_window_s: f64,
    /// Budgeted miss rate (the SLO: e.g. 0.05 = at most 5 % of jobs may
    /// miss).
    pub target_miss_rate: f64,
    /// Burn level both windows must exceed to engage the alert.
    pub alert_burn: f64,
}

impl SloConfig {
    /// A configuration scaled to a stream's deadline: the fast window
    /// spans ~16 jobs' worth of deadline time and the slow window 8x
    /// that, with a 5 % miss budget and a 2x-burn alert.
    pub fn for_deadline(deadline_s: f64) -> SloConfig {
        let d = if deadline_s > 0.0 { deadline_s } else { 1.0 };
        SloConfig {
            fast_window_s: 16.0 * d,
            slow_window_s: 128.0 * d,
            target_miss_rate: 0.05,
            alert_burn: 2.0,
        }
    }
}

/// Multi-window deadline-miss burn-rate tracker for one stream.
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    /// `(completion time, missed)` per job, oldest first; pruned to the
    /// slow window.
    jobs: VecDeque<(f64, bool)>,
    alerting: bool,
    alerts: u64,
}

impl SloTracker {
    /// An idle tracker.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config: SloConfig {
                slow_window_s: config.slow_window_s.max(config.fast_window_s),
                ..config
            },
            jobs: VecDeque::new(),
            alerting: false,
            alerts: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records a job completion at virtual time `now_s` and re-evaluates
    /// the alert. Returns `Some(true)` when the alert engages on this
    /// job, `Some(false)` when it clears, `None` when it is unchanged —
    /// edge-triggered so the caller can emit one trace event per
    /// transition.
    pub fn record(&mut self, now_s: f64, missed: bool) -> Option<bool> {
        self.jobs.push_back((now_s, missed));
        let horizon = now_s - self.config.slow_window_s;
        while self.jobs.front().is_some_and(|&(t, _)| t < horizon) {
            self.jobs.pop_front();
        }
        let fast = self.burn_over(now_s, self.config.fast_window_s);
        let slow = self.burn_over(now_s, self.config.slow_window_s);
        let hot = fast >= self.config.alert_burn && slow >= self.config.alert_burn;
        if hot && !self.alerting {
            self.alerting = true;
            self.alerts += 1;
            Some(true)
        } else if !hot && self.alerting {
            self.alerting = false;
            Some(false)
        } else {
            None
        }
    }

    fn burn_over(&self, now_s: f64, window_s: f64) -> f64 {
        let horizon = now_s - window_s;
        let mut total = 0u64;
        let mut missed = 0u64;
        for &(t, m) in self.jobs.iter().rev() {
            if t < horizon {
                break;
            }
            total += 1;
            missed += u64::from(m);
        }
        if total == 0 || self.config.target_miss_rate <= 0.0 {
            return 0.0;
        }
        (missed as f64 / total as f64) / self.config.target_miss_rate
    }

    /// Burn rate over the fast window at virtual time `now_s`.
    pub fn fast_burn(&self, now_s: f64) -> f64 {
        self.burn_over(now_s, self.config.fast_window_s)
    }

    /// Burn rate over the slow window at virtual time `now_s`.
    pub fn slow_burn(&self, now_s: f64) -> f64 {
        self.burn_over(now_s, self.config.slow_window_s)
    }

    /// Whether the alert is currently engaged.
    pub fn alerting(&self) -> bool {
        self.alerting
    }

    /// Number of times the alert has engaged.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SloConfig {
        SloConfig {
            fast_window_s: 1.0,
            slow_window_s: 8.0,
            target_miss_rate: 0.1,
            alert_burn: 2.0,
        }
    }

    #[test]
    fn no_misses_means_zero_burn_and_no_alert() {
        let mut slo = SloTracker::new(config());
        for i in 0..100 {
            assert_eq!(slo.record(i as f64 * 0.1, false), None);
        }
        assert_eq!(slo.fast_burn(10.0), 0.0);
        assert_eq!(slo.slow_burn(10.0), 0.0);
        assert!(!slo.alerting());
        assert_eq!(slo.alerts(), 0);
    }

    #[test]
    fn burn_is_miss_rate_over_budget() {
        let mut slo = SloTracker::new(config());
        // 10 jobs in the fast window, 2 missed: rate 0.2, budget 0.1 → 2.
        for i in 0..10 {
            slo.record(9.0 + i as f64 * 0.1, i < 2);
        }
        assert!((slo.fast_burn(9.9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alert_needs_both_windows_and_is_edge_triggered() {
        let mut slo = SloTracker::new(config());
        // A long healthy history keeps the slow window diluted...
        for i in 0..70 {
            assert_eq!(slo.record(i as f64 * 0.1, false), None);
        }
        // ...so a short burst of misses trips the fast window only.
        let mut engaged_at = None;
        for i in 0..40 {
            let t = 7.0 + i as f64 * 0.1;
            if let Some(edge) = slo.record(t, true) {
                assert!(edge, "first transition must be an engage");
                engaged_at = Some(i);
                break;
            }
        }
        let engaged_at = engaged_at.expect("sustained misses must engage");
        assert!(
            engaged_at > 2,
            "slow window must delay the alert past the first few misses"
        );
        assert!(slo.alerting());
        assert_eq!(slo.alerts(), 1);
        // Recovery: misses stop; the fast window drains first and the
        // alert clears exactly once.
        let mut cleared = false;
        let t0 = 7.0 + 40.0 * 0.1;
        for i in 0..200 {
            let t = t0 + i as f64 * 0.1;
            match slo.record(t, false) {
                Some(false) => {
                    cleared = true;
                    break;
                }
                Some(true) => panic!("must not re-engage while recovering"),
                None => {}
            }
        }
        assert!(cleared, "alert must clear once misses stop");
        assert!(!slo.alerting());
        assert_eq!(slo.alerts(), 1);
    }

    #[test]
    fn jobs_roll_out_of_the_slow_window() {
        let mut slo = SloTracker::new(config());
        slo.record(0.0, true);
        // 9s later the miss has left even the slow window.
        slo.record(9.0, false);
        assert_eq!(slo.slow_burn(9.0), 0.0);
        assert_eq!(slo.jobs.len(), 1);
    }

    #[test]
    fn for_deadline_scales_windows() {
        let c = SloConfig::for_deadline(16.7e-3);
        assert!((c.fast_window_s - 16.0 * 16.7e-3).abs() < 1e-12);
        assert!((c.slow_window_s - 128.0 * 16.7e-3).abs() < 1e-12);
        let fallback = SloConfig::for_deadline(0.0);
        assert!(fallback.fast_window_s > 0.0);
    }
}
