//! The deterministic discrete-event service runtime.
//!
//! [`ServeRuntime::prepare`] trains and slices each stream's accelerator
//! (fanned out with [`predvfs_par`], trace simulation deduplicated by the
//! shared [`TraceCache`], and identical (benchmark, seed, deadline)
//! classes trained exactly once and shared); [`ServeRuntime::run`] then
//! advances a virtual clock over arrival / slice-done / level-switch /
//! job-done events in a single serial loop. Parallelism lives entirely
//! in the preparation phase, whose per-stream outputs are bit-identical
//! regardless of thread count, so the whole pipeline is deterministic:
//! same scenario, same result, any `--threads`.
//!
//! Ties on the virtual clock are broken by a monotonic sequence number,
//! so simultaneous events (two streams arriving in the same instant)
//! always play out in submission order.
//!
//! ## Observability
//!
//! [`ServeRuntime::run_observed`] threads a [`predvfs_obs::ObsSink`]
//! through the engine: every service-level transition (arrival, shed,
//! relax, slice-done, level-switch, job-done, drift-fallback, refit)
//! becomes a structured trace event stamped with the **virtual** clock,
//! and per-job slack, response time, queue depth, and energy land in
//! histograms. Because all events are emitted from the serial event loop
//! with virtual timestamps, the trace is bit-deterministic across worker
//! thread counts — the `serve_observability` integration test pins the
//! JSONL output byte-for-byte between `--threads 1` and `--threads 8`.
//!
//! ## Fault injection and graceful degradation
//!
//! [`ServeRuntime::run_chaos`] additionally threads a
//! [`predvfs_faults::FaultInjector`] and a [`DegradeConfig`] through the
//! loop. The injector perturbs the simulated hardware at well-defined
//! sites (arrival bursts, slice corruption/timeouts, switch
//! rejections/stalls, clock jitter, trace spikes, spurious completions);
//! the degradation machinery pushes back:
//!
//! * a **deadline watchdog** fires at `watchdog_frac` of each job's
//!   remaining budget and, if the job is projected to miss, escalates it
//!   mid-flight to [`DvfsModel::escalation`] (boost);
//! * rejected level switches are **retried with exponential backoff** up
//!   to `max_switch_retries` times before the stream stays put;
//! * a stream entering `quarantine_misses` consecutive misses (or
//!   sustained controller degradation, or an engine-detected
//!   inconsistency) drops into **quarantine**: decisions bypass the
//!   controller and pin the nominal level until `probe_jobs` consecutive
//!   clean completions probe it back out.
//!
//! Every transition is emitted as a [`TraceEvent`] (kinds in
//! [`predvfs_obs::kinds`]). Scheduled events carry the **epoch** of the
//! service attempt that produced them; escalation bumps the stream's
//! epoch, so superseded completions are recognised as stale and skipped,
//! while a current-epoch completion with no job in flight is contained
//! as an `internal_error` (event + quarantine) instead of a panic.
//!
//! Faults are queried through pure functions of `(stream, job, attempt)`
//! — never of event order — so chaos runs stay byte-deterministic across
//! thread counts; the `chaos_determinism` integration suite pins this.
//!
//! ## Sharding
//!
//! [`ServeRuntime::engine`] exposes the event loop as a resumable
//! [`ShardEngine`] over an arbitrary subset of the prepared streams:
//! the `predvfs-shard` coordinator runs one engine per shard, advancing
//! each to a common epoch boundary with [`ShardEngine::run_until`] and
//! exchanging budget grants and stream migrations in between. Three
//! properties make the sharded composition deterministic:
//!
//! * streams never interact inside the loop — the heap is just a merged
//!   timeline, so a stream's evolution depends only on its own events
//!   and on fault queries keyed by its **global** stream id;
//! * with [`EngineConfig::defer_escalations`] the watchdog records a
//!   [`BoostRequest`] instead of boosting in place, and the coordinator
//!   grants requests in globally sorted `(t_s, gid)` order — so the
//!   budget outcome is independent of how streams map to shards;
//! * with [`EngineConfig::one_ahead_arrivals`] each arrival schedules
//!   only its successor, so an engine's heap stays proportional to its
//!   live streams and migrated streams carry their pending events along.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};

use predvfs::{
    AdaptiveController, CalibrationConfig, CalibrationMonitor, Decision, DvfsController, DvfsModel,
    HybridController, JobContext, LevelChoice, OnlineTrainerConfig, PidController,
    PredictiveController,
};
use predvfs_faults::{FaultInjector, FaultKind, NullInjector};
use predvfs_obs::{kinds, NullSink, ObsSink, TraceEvent};
use predvfs_power::OperatingPoint;
use predvfs_rtl::JobTrace;
use predvfs_sim::{Experiment, ExperimentConfig, TraceCache};

use crate::scenario::{ControllerKind, OverloadPolicy, Scenario, ServeError, StreamSpec};
use crate::slo::{SloConfig, SloTracker};

/// One memoized slice evaluation: everything the predictive controller
/// derives from running the hardware slice over one distinct test job.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CachedEntry {
    /// The model's (uncorrected) cycle prediction for the job.
    predicted: f64,
    /// Cycles the slice itself occupies.
    slice_cycles: f64,
    /// Slice energy at the always-nominal slice operating point.
    slice_pj: f64,
}

/// One stream, trained and ready to serve: the prepared experiment plus
/// the per-arrival job sequence (with any drift already applied to the
/// traces). Streams of the same (benchmark, seed, deadline) class share
/// one [`Experiment`] (and one cached decision table) behind `Arc`s, so
/// a million-stream scenario costs a few distinct training runs.
struct PreparedStream {
    spec: StreamSpec,
    exp: Arc<Experiment>,
    /// Index into the experiment's test set for each arrival.
    job_idx: Arc<Vec<usize>>,
    /// Ground-truth trace for each arrival (drift-scaled past the shift).
    traces: Arc<Vec<JobTrace>>,
    /// Lazily built per-test-job decision table for
    /// [`ControllerKind::Cached`], shared across the class.
    table: Arc<OnceLock<Arc<Vec<CachedEntry>>>>,
}

/// A scenario with every stream prepared; reusable across runs.
pub struct ServeRuntime {
    streams: Vec<PreparedStream>,
}

/// Degradation machinery configuration for [`ServeRuntime::run_chaos`].
///
/// [`DegradeConfig::disabled`] turns every mechanism off (the baseline
/// the chaos harness compares against); [`DegradeConfig::enabled`] is
/// the standard production posture.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// Arm the mid-job deadline watchdog.
    pub watchdog: bool,
    /// When the watchdog fires, as a fraction of the budget remaining at
    /// dispatch (in `(0, 1)`).
    pub watchdog_frac: f64,
    /// Retries granted to a rejected level switch (0 = give up at once).
    pub max_switch_retries: u32,
    /// Backoff before retry `n` is `retry_backoff_s · 2ⁿ` seconds.
    pub retry_backoff_s: f64,
    /// Consecutive deadline misses that trip quarantine (0 = never).
    pub quarantine_misses: usize,
    /// Consecutive controller-degraded dispatches that trip quarantine
    /// (0 = never) — the "repeated refit non-convergence" guard.
    pub quarantine_degraded: usize,
    /// Consecutive clean completions that probe a stream back out of
    /// quarantine.
    pub probe_jobs: usize,
}

impl DegradeConfig {
    /// Everything off: no watchdog, no retries, no quarantine.
    pub fn disabled() -> DegradeConfig {
        DegradeConfig {
            watchdog: false,
            watchdog_frac: 0.6,
            max_switch_retries: 0,
            retry_backoff_s: 20e-6,
            quarantine_misses: 0,
            quarantine_degraded: 0,
            probe_jobs: 8,
        }
    }

    /// The standard posture: watchdog at 60 % of the remaining budget,
    /// 3 switch retries from a 20 µs backoff, quarantine after 3
    /// consecutive misses or 32 degraded dispatches, 8 probe jobs.
    pub fn enabled() -> DegradeConfig {
        DegradeConfig {
            watchdog: true,
            max_switch_retries: 3,
            quarantine_misses: 3,
            quarantine_degraded: 32,
            ..DegradeConfig::disabled()
        }
    }
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig::disabled()
    }
}

/// How a [`ShardEngine`] runs its slice of the event loop.
///
/// The default is the legacy single-engine posture: every arrival
/// pre-scheduled, watchdog escalations applied immediately, full
/// per-job records. The sharded tier flips all three knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Force every stream onto one controller kind (baselines, scale
    /// benches); `None` uses each spec's own controller.
    pub force: Option<ControllerKind>,
    /// Degradation machinery configuration.
    pub degrade: DegradeConfig,
    /// Skip per-job [`ServeRecord`]s and calibration/SLO tracking; keep
    /// only the aggregate counters. Scale runs over millions of jobs
    /// use this to stay allocation-flat; [`StreamResult::completed`],
    /// [`StreamResult::misses`], [`StreamResult::miss_pct`] and
    /// [`StreamResult::total_energy_pj`] stay exact either way.
    pub lean: bool,
    /// Watchdog records a [`BoostRequest`] instead of escalating in
    /// place; the owner (the shard coordinator) decides grants and
    /// applies them via [`ShardEngine::apply_boost`]. Required for a
    /// shard-count-invariant global boost budget.
    pub defer_escalations: bool,
    /// Schedule each stream's next arrival while processing the current
    /// one instead of pre-pushing the whole arrival schedule. Keeps the
    /// heap proportional to live streams and lets migrated streams carry
    /// their pending arrivals; the legacy single-engine path keeps the
    /// pre-push for bit-exact compatibility with recorded traces.
    pub one_ahead_arrivals: bool,
}

/// Per-completed-job accounting, mirroring the batch runner's fields plus
/// the service-level ones (queueing, relaxation, fallback state).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Arrival index within the stream.
    pub job: usize,
    /// Virtual time the job arrived.
    pub arrival_s: f64,
    /// Virtual time service began (≥ arrival when queued).
    pub start_s: f64,
    /// Virtual time the job completed.
    pub done_s: f64,
    /// Effective relative deadline (stretched when admitted relaxed).
    pub deadline_s: f64,
    /// True when the job was admitted under a relaxed deadline.
    pub relaxed: bool,
    /// True when completion exceeded the effective deadline.
    pub missed: bool,
    /// True when the decision came from the drift fallback.
    pub degraded: bool,
    /// True when the deadline watchdog escalated the job mid-flight.
    pub escalated: bool,
    /// True when the job was served in quarantine (controller bypassed,
    /// nominal level pinned).
    pub safe_mode: bool,
    /// Core voltage of the operating point the job *finished* at.
    pub volts: f64,
    /// Total energy charged (job + slice + transition), picojoules.
    pub energy_pj: f64,
    /// Slice share of the energy, picojoules.
    pub slice_energy_pj: f64,
    /// The controller's (corrected) prediction, if it made one.
    pub predicted_cycles: Option<f64>,
    /// Ground-truth execution cycles.
    pub actual_cycles: u64,
}

/// Outcome of one stream over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// The stream's display name.
    pub name: String,
    /// The benchmark it served.
    pub bench: String,
    /// Jobs the stream submitted.
    pub submitted: usize,
    /// Jobs that completed service (maintained even in lean mode, where
    /// `records` stays empty).
    pub done: usize,
    /// Completed jobs that exceeded their effective deadline.
    pub missed: usize,
    /// Total energy across completed jobs, picojoules.
    pub energy_pj: f64,
    /// Per-completed-job records, in completion order (empty when the
    /// engine ran with [`EngineConfig::lean`]).
    pub records: Vec<ServeRecord>,
    /// Arrivals dropped by the shed policy.
    pub shed: usize,
    /// Arrivals admitted with a stretched deadline.
    pub relaxed: usize,
    /// Online refits installed by an adaptive controller.
    pub refits: usize,
    /// Injected faults that fired on this stream.
    pub faults: usize,
    /// Mid-job watchdog escalations.
    pub escalations: usize,
    /// Times the stream entered quarantine.
    pub quarantines: usize,
    /// Inconsistent events the engine contained instead of panicking.
    pub internal_errors: usize,
}

impl StreamResult {
    /// Jobs that completed service.
    pub fn completed(&self) -> usize {
        self.done
    }

    /// Completed jobs that exceeded their effective deadline.
    pub fn misses(&self) -> usize {
        self.missed
    }

    /// Deadline misses as a percentage of **completed** jobs (0 when
    /// none completed — a stream that shed or never finished anything
    /// has no service quality to report, not a 0/0).
    ///
    /// Shed arrivals never complete, so they are *not* part of this
    /// denominator — a stream can show 0% misses while dropping most of
    /// its traffic. Read it together with [`StreamResult::shed_pct`]:
    /// `miss_pct` is service *quality* over the jobs that ran, `shed_pct`
    /// is the share of offered load that was refused outright.
    pub fn miss_pct(&self) -> f64 {
        if self.done == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.done as f64
        }
    }

    /// Shed arrivals as a percentage of submitted jobs (0 when the
    /// stream submitted nothing). The complement of the admission rate;
    /// see [`StreamResult::miss_pct`] for why the two must be read
    /// together.
    pub fn shed_pct(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            100.0 * self.shed as f64 / self.submitted as f64
        }
    }

    /// Total energy across completed jobs, picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj
    }
}

/// Outcome of a full service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Per-stream outcomes, in scenario order.
    pub streams: Vec<StreamResult>,
    /// Virtual time of the last event.
    pub horizon_s: f64,
    /// Events processed by the engine.
    pub events: usize,
}

impl ServeResult {
    /// Jobs submitted across all streams.
    pub fn submitted(&self) -> usize {
        self.streams.iter().map(|s| s.submitted).sum()
    }

    /// Jobs completed across all streams.
    pub fn completed(&self) -> usize {
        self.streams.iter().map(|s| s.done).sum()
    }

    /// Deadline misses across all streams.
    pub fn misses(&self) -> usize {
        self.streams.iter().map(|s| s.missed).sum()
    }

    /// Shed arrivals across all streams.
    pub fn shed(&self) -> usize {
        self.streams.iter().map(|s| s.shed).sum()
    }

    /// Aggregate miss percentage over completed jobs (0 when nothing
    /// completed).
    pub fn miss_pct(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            0.0
        } else {
            100.0 * self.misses() as f64 / done as f64
        }
    }

    /// Aggregate shed percentage over submitted jobs (0 when nothing
    /// was submitted).
    pub fn shed_pct(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            100.0 * self.shed() as f64 / submitted as f64
        }
    }

    /// Total energy across all completed jobs, picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.streams.iter().map(|s| s.energy_pj).sum()
    }
}

/// What the virtual clock is waiting on.
///
/// `stream` is the engine-local **slot** index (equal to the global
/// stream id in the single-engine case); every event tied to a service
/// attempt carries the **epoch** of that attempt. A watchdog escalation
/// bumps the stream's epoch, so events scheduled by a superseded attempt
/// are recognised as stale and skipped when they surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Stream's `job`-th arrival enters admission.
    Arrival { stream: usize, job: usize },
    /// The feature slice finished (the accelerator may start switching).
    SliceDone { stream: usize, epoch: u64 },
    /// The voltage regulator settled at the chosen level.
    SwitchDone { stream: usize, epoch: u64 },
    /// The job left the accelerator.
    JobDone { stream: usize, epoch: u64 },
    /// Mid-job deadline check for the attempt dispatched at `epoch`.
    Watchdog { stream: usize, epoch: u64 },
}

/// The engine-local slot an event belongs to.
fn event_slot(event: &Event) -> usize {
    match *event {
        Event::Arrival { stream, .. }
        | Event::SliceDone { stream, .. }
        | Event::SwitchDone { stream, .. }
        | Event::JobDone { stream, .. }
        | Event::Watchdog { stream, .. } => stream,
    }
}

/// The same event, re-addressed to a different slot (stream migration).
fn retarget(event: Event, slot: usize) -> Event {
    match event {
        Event::Arrival { job, .. } => Event::Arrival { stream: slot, job },
        Event::SliceDone { epoch, .. } => Event::SliceDone {
            stream: slot,
            epoch,
        },
        Event::SwitchDone { epoch, .. } => Event::SwitchDone {
            stream: slot,
            epoch,
        },
        Event::JobDone { epoch, .. } => Event::JobDone {
            stream: slot,
            epoch,
        },
        Event::Watchdog { epoch, .. } => Event::Watchdog {
            stream: slot,
            epoch,
        },
    }
}

/// Heap entry: earliest time first, submission order on ties.
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we pop earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A job admitted but not yet completed.
#[derive(Debug, Clone, Copy)]
struct Admitted {
    job: usize,
    arrival_s: f64,
    deadline_abs_s: f64,
    relaxed: bool,
}

/// The in-service job and its precomputed accounting.
#[derive(Debug, Clone)]
struct InFlight {
    adm: Admitted,
    /// The service attempt this job was dispatched (or escalated) under.
    epoch: u64,
    start_s: f64,
    /// When execution proper begins (after slice + switching).
    exec_start_s: f64,
    /// Scheduled completion time (moves on escalation).
    done_s: f64,
    /// Level ordinal the job is executing at.
    key: usize,
    /// Effective execution frequency, Hz (clock jitter included).
    f_eff_hz: f64,
    degraded: bool,
    safe_mode: bool,
    escalated: bool,
    /// A deferred-mode boost request is outstanding for this attempt.
    boost_requested: bool,
    volts: f64,
    job_pj: f64,
    slice_pj: f64,
    transition_pj: f64,
    predicted_cycles: Option<f64>,
    /// Ground-truth cycles of the job as served (spiked when a
    /// trace-spike fault fired).
    actual_cycles: u64,
    /// Spike-scaled ground truth, kept for escalation-time
    /// re-accounting.
    spiked: Option<JobTrace>,
}

/// The memoized predictive controller: the slice run and model read-out
/// for each distinct test job come from the shared class table, so a
/// decision costs a ladder scan instead of an RTL simulation. Decisions
/// are byte-identical to [`PredictiveController`]'s — this is what makes
/// million-stream scale scenarios tractable.
#[derive(Clone)]
struct CachedCtrl<'p> {
    dvfs: &'p DvfsModel,
    f_nominal_hz: f64,
    entries: &'p [CachedEntry],
}

/// Per-stream controller dispatch. Boxing a `dyn DvfsController` would
/// lose access to the adaptive controller's refit counter, so the enum
/// keeps the concrete types.
#[derive(Clone)]
enum Ctrl<'p> {
    Predictive(PredictiveController<'p>),
    Adaptive(Box<AdaptiveController<'p>>),
    Pid(PidController),
    Hybrid(HybridController<'p>),
    Cached(CachedCtrl<'p>),
}

impl Ctrl<'_> {
    /// Decides for one job (`tidx` is its index into the experiment's
    /// test set). The second element is the cached slice-energy hint,
    /// which saves the engine recomputing slice energy per dispatch.
    fn decide(
        &mut self,
        ctx: &JobContext<'_>,
        tidx: usize,
    ) -> Result<(Decision, Option<f64>), predvfs::CoreError> {
        match self {
            Ctrl::Predictive(c) => Ok((c.decide(ctx)?, None)),
            Ctrl::Adaptive(c) => Ok((c.decide(ctx)?, None)),
            Ctrl::Pid(c) => Ok((c.decide(ctx)?, None)),
            Ctrl::Hybrid(c) => Ok((c.decide(ctx)?, None)),
            Ctrl::Cached(c) => {
                let e = c.entries[tidx];
                let slice_time_s = e.slice_cycles / c.f_nominal_hz;
                let choice =
                    c.dvfs
                        .choose(e.predicted, c.f_nominal_hz, ctx.deadline_s, slice_time_s);
                Ok((
                    Decision {
                        choice,
                        slice_cycles: e.slice_cycles,
                        slice_dp_active: Vec::new(),
                        predicted_cycles: Some(e.predicted),
                    },
                    Some(e.slice_pj),
                ))
            }
        }
    }

    fn observe(&mut self, actual: u64) {
        match self {
            Ctrl::Predictive(c) => c.observe(actual),
            Ctrl::Adaptive(c) => c.observe(actual),
            Ctrl::Pid(c) => c.observe(actual),
            Ctrl::Hybrid(c) => c.observe(actual),
            Ctrl::Cached(_) => {}
        }
    }

    fn refits(&self) -> usize {
        match self {
            Ctrl::Adaptive(c) => c.refits(),
            _ => 0,
        }
    }

    fn is_degraded(&self) -> bool {
        match self {
            Ctrl::Adaptive(c) => c.is_degraded(),
            _ => false,
        }
    }
}

/// Mutable service state of one stream during a run. `Clone` produces a
/// behaviourally identical copy (the shard tier's checkpoint and journal
/// payloads rely on this): every field is plain data except the
/// controller, whose slice runner clones by reconstruction from the
/// shared immutable predictor.
#[derive(Clone)]
struct StreamState<'p> {
    ctrl: Ctrl<'p>,
    queue: VecDeque<Admitted>,
    in_flight: Option<InFlight>,
    prev_key: usize,
    started: usize,
    /// Epoch of the most recent service attempt; scheduled events from
    /// older epochs are stale.
    epoch: u64,
    /// Consecutive deadline misses (quarantine trigger).
    consec_misses: usize,
    /// Consecutive dispatches made while the controller was degraded
    /// (quarantine trigger for refits that never converge).
    consec_degraded: usize,
    /// `Some(clean)` while quarantined: `clean` consecutive clean
    /// completions so far, out of the `probe_jobs` needed to recover.
    quarantine: Option<usize>,
    /// Last observed controller degradation, for edge-triggered
    /// drift-fallback events.
    was_degraded: bool,
    /// Last observed refit count, for edge-triggered refit events.
    seen_refits: usize,
    /// Prediction-quality monitor for non-adaptive controllers (the
    /// adaptive controller's own trainer monitor is read instead, so the
    /// exported gauges and the refit trigger share one window).
    calib: CalibrationMonitor,
    /// Last observed calibration-alert level, for edge-triggered events.
    calib_alert: bool,
    /// Deadline-miss burn-rate tracker, clocked by the virtual clock.
    slo: SloTracker,
    result: StreamResult,
}

impl StreamState<'_> {
    /// Emits edge-triggered controller-transition events (drift fallback
    /// engaged/cleared, refit installed) after a controller interaction.
    ///
    /// The `was_degraded` / `seen_refits` edge state advances even when
    /// the sink is disabled: crash-recovery replay runs against a
    /// [`NullSink`](predvfs_obs::NullSink) and then swaps the real sink
    /// back in, and a tracker frozen during replay would re-emit (or
    /// mistime) transitions the lost engine already reported.
    fn note_ctrl_transitions(&mut self, now: f64, sink: &dyn ObsSink) {
        let degraded = self.ctrl.is_degraded();
        if degraded != self.was_degraded {
            self.was_degraded = degraded;
            if sink.enabled() {
                sink.emit(
                    TraceEvent::new(now, &self.result.name, kinds::DRIFT_FALLBACK)
                        .with_bool("engaged", degraded),
                );
                if degraded {
                    sink.counter_add("predvfs_serve_drift_fallbacks_total", 1);
                }
            }
        }
        let refits = self.ctrl.refits();
        if refits > self.seen_refits {
            let delta = (refits - self.seen_refits) as u64;
            self.seen_refits = refits;
            if sink.enabled() {
                sink.emit(
                    TraceEvent::new(now, &self.result.name, kinds::REFIT)
                        .with_u64("refits", refits as u64),
                );
                sink.counter_add("predvfs_serve_refits_total", delta);
            }
        }
    }

    /// Records one fired fault, and traces it when observability is on.
    fn note_fault(&mut self, now: f64, sink: &dyn ObsSink, kind: &FaultKind, job: usize) {
        self.result.faults += 1;
        if sink.enabled() {
            sink.counter_add("predvfs_serve_faults_total", 1);
            let mut ev = TraceEvent::new(now, &self.result.name, kinds::FAULT)
                .with_str("kind", kind.name())
                .with_u64("job", job as u64);
            if let Some(m) = kind.magnitude() {
                ev = ev.with_f64("magnitude", m);
            }
            sink.emit(ev);
        }
    }

    /// Drops the stream into quarantine (no-op when already there).
    fn enter_quarantine(&mut self, now: f64, sink: &dyn ObsSink, reason: &str) {
        if self.quarantine.is_some() {
            return;
        }
        self.quarantine = Some(0);
        self.result.quarantines += 1;
        self.consec_misses = 0;
        if sink.enabled() {
            sink.counter_add("predvfs_serve_quarantines_total", 1);
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::QUARANTINE)
                    .with_bool("engaged", true)
                    .with_str("reason", reason),
            );
        }
    }

    /// Leaves quarantine after a successful probe sequence.
    fn exit_quarantine(&mut self, now: f64, sink: &dyn ObsSink) {
        self.quarantine = None;
        self.consec_misses = 0;
        self.consec_degraded = 0;
        if sink.enabled() {
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::QUARANTINE)
                    .with_bool("engaged", false)
                    .with_str("reason", "probe_recover"),
            );
        }
    }
}

/// Maps a level choice to an ordinal for switching-cost bookkeeping.
fn level_key(dvfs: &DvfsModel, choice: LevelChoice) -> usize {
    match choice {
        LevelChoice::Regular(i) => i,
        LevelChoice::Boost => dvfs.ladder.len(),
    }
}

/// Inverse of [`level_key`]: the choice a stored ordinal denotes.
fn key_choice(dvfs: &DvfsModel, key: usize) -> LevelChoice {
    if key == dvfs.ladder.len() {
        LevelChoice::Boost
    } else {
        LevelChoice::Regular(key)
    }
}

/// A deferred watchdog escalation: stream `gid`'s in-flight attempt
/// `epoch` was projected to miss at virtual time `t_s`. The coordinator
/// sorts requests from all shards by `(t_s, gid)` and grants the global
/// boost budget in that order — a total order independent of the
/// stream-to-shard mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostRequest {
    /// Global stream id.
    pub gid: usize,
    /// Virtual time the watchdog fired.
    pub t_s: f64,
    /// The service attempt the request belongs to.
    pub epoch: u64,
}

/// A point-in-time load summary of one [`ShardEngine`], the signal the
/// coordinator's rebalancer reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Streams currently owned by the shard.
    pub streams: usize,
    /// Streams with a job in flight.
    pub active: usize,
    /// Jobs waiting in admission queues.
    pub queued: usize,
    /// Events pending in the shard's heap.
    pub pending_events: usize,
    /// Jobs completed by this shard so far.
    pub jobs_done: u64,
}

/// A stream extracted from one [`ShardEngine`] for admission into
/// another: its full service state plus its pending events (in time
/// order). Produced by [`ShardEngine::extract_stream`], consumed by
/// [`ShardEngine::admit_stream`]. `Clone` copies the full service state,
/// which is what lets the shard tier checkpoint engines and journal
/// in-flight transfers.
#[derive(Clone)]
pub struct MigratedStream<'rt> {
    gid: usize,
    state: StreamState<'rt>,
    /// Pending events in `(time, original order)`.
    events: Vec<(f64, Event)>,
}

impl MigratedStream<'_> {
    /// The global stream id being migrated.
    pub fn gid(&self) -> usize {
        self.gid
    }

    /// Pending events travelling with the stream.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The quarantine probe countdown travelling with the stream:
    /// `Some(clean)` when quarantined with `clean` consecutive clean
    /// completions so far, `None` when healthy. Conservation tests use
    /// this to pin that probe-recovery state survives migration and
    /// checkpoint round-trips.
    pub fn quarantine_probe(&self) -> Option<usize> {
        self.state.quarantine
    }

    /// The stream's accumulated result counters (read-only view).
    pub fn result(&self) -> &StreamResult {
        &self.state.result
    }

    /// Appends a canonical, byte-deterministic rendering of the full
    /// service state to `out` — every scalar exactly (floats as bit
    /// patterns), the admission queue, the in-flight job, and the
    /// pending events in time order. Two engines in the same logical
    /// state render identically, so checkpoint digests and the
    /// snapshot-stability regression test compare these bytes directly.
    pub fn write_summary(&self, out: &mut String) {
        use std::fmt::Write as _;
        let st = &self.state;
        let r = &st.result;
        let _ = write!(
            out,
            "gid={} started={} epoch={} prev_key={} misses={} degraded={} quar={:?} \
             was_deg={} refits={} alert={}",
            self.gid,
            st.started,
            st.epoch,
            st.prev_key,
            st.consec_misses,
            st.consec_degraded,
            st.quarantine,
            st.was_degraded,
            st.seen_refits,
            st.calib_alert,
        );
        let _ = write!(
            out,
            " r=({},{},{},{},{},{},{},{},{:016x})",
            r.done,
            r.missed,
            r.shed,
            r.relaxed,
            r.faults,
            r.escalations,
            r.quarantines,
            r.internal_errors,
            r.energy_pj.to_bits(),
        );
        for adm in &st.queue {
            let _ = write!(
                out,
                " q=({},{:016x},{:016x},{})",
                adm.job,
                adm.arrival_s.to_bits(),
                adm.deadline_abs_s.to_bits(),
                adm.relaxed,
            );
        }
        if let Some(fly) = &st.in_flight {
            let _ = write!(
                out,
                " fly=({},{},{},{:016x},{:016x},{:016x},{},{},{},{},{:016x},{:016x},{:016x},{})",
                fly.adm.job,
                fly.epoch,
                fly.key,
                fly.done_s.to_bits(),
                fly.exec_start_s.to_bits(),
                fly.f_eff_hz.to_bits(),
                fly.degraded,
                fly.safe_mode,
                fly.escalated,
                fly.boost_requested,
                fly.job_pj.to_bits(),
                fly.slice_pj.to_bits(),
                fly.transition_pj.to_bits(),
                fly.actual_cycles,
            );
        }
        for (t, e) in &self.events {
            let _ = write!(out, " ev=({:016x},{:?})", t.to_bits(), e);
        }
        out.push('\n');
    }
}

/// One occupied stream slot of a [`ShardEngine`].
struct Slot<'rt> {
    gid: usize,
    state: StreamState<'rt>,
}

/// A complete logical snapshot of a [`ShardEngine`], produced by
/// [`ShardEngine::checkpoint`]: the run counters plus every owned
/// stream's [`MigratedStream`] (gid-ascending). Restore by admitting
/// each stream into a freshly built empty engine and then calling
/// [`ShardEngine::restore_counters`]; the shard tier does exactly this
/// when rebuilding a crashed shard.
#[derive(Clone)]
pub struct EngineCheckpoint<'rt> {
    /// Virtual time of the latest event processed at capture.
    pub horizon_s: f64,
    /// Events processed at capture.
    pub events: usize,
    /// Jobs completed at capture.
    pub jobs_done: u64,
    /// Every owned stream's state + pending events, gid-ascending.
    pub streams: Vec<MigratedStream<'rt>>,
}

impl EngineCheckpoint<'_> {
    /// Canonical byte rendering of the whole checkpoint: the counters
    /// line followed by one [`MigratedStream::write_summary`] line per
    /// stream. Byte-identical across runs of the same scenario — the
    /// snapshot-stability regression test pins this.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "horizon={:016x} events={} jobs_done={} streams={}",
            self.horizon_s.to_bits(),
            self.events,
            self.jobs_done,
            self.streams.len(),
        );
        for s in &self.streams {
            s.write_summary(&mut out);
        }
        out
    }

    /// A stable 64-bit FNV-1a digest of [`EngineCheckpoint::render`],
    /// cheap enough to stamp into every checkpoint trace event.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.render().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }
}

impl ServeRuntime {
    /// Trains and slices every stream, in parallel, sharing `cache` for
    /// trace simulation. Streams with identical (benchmark, seed,
    /// deadline) are one training problem: the class is prepared once
    /// and shared, so scenario size scales the cheap per-stream state,
    /// not the expensive pipeline.
    ///
    /// # Errors
    ///
    /// Rejects degenerate stream specs ([`ServeError::InvalidSpec`]) and
    /// propagates pipeline failures.
    pub fn prepare(scenario: &Scenario, cache: &TraceCache) -> Result<ServeRuntime, ServeError> {
        for spec in &scenario.streams {
            let invalid = |msg: &str| ServeError::InvalidSpec {
                stream: spec.name.clone(),
                msg: msg.to_owned(),
            };
            if spec.jobs == 0 {
                return Err(invalid("stream submits no jobs"));
            }
            if spec.period_s.partial_cmp(&0.0) != Some(Ordering::Greater) {
                return Err(invalid("arrival period must be positive"));
            }
            if spec.deadline_s.partial_cmp(&0.0) != Some(Ordering::Greater) {
                return Err(invalid("deadline must be positive"));
            }
        }
        let sink = predvfs_obs::global();
        let _prepare_span = predvfs_obs::span("serve.prepare");
        let _prepare_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_serve_prepare");
        sink.counter_add(
            "predvfs_serve_streams_prepared_total",
            scenario.streams.len() as u64,
        );

        // Deduplicate training problems across the scenario.
        #[derive(Hash, PartialEq, Eq)]
        struct ExpKey {
            bench: &'static str,
            seed: u64,
            deadline_bits: u64,
        }
        let mut exp_of = Vec::with_capacity(scenario.streams.len());
        let mut uniq: Vec<&StreamSpec> = Vec::new();
        let mut index: HashMap<ExpKey, usize> = HashMap::new();
        for spec in &scenario.streams {
            let key = ExpKey {
                bench: spec.bench.name,
                seed: spec.seed,
                deadline_bits: spec.deadline_s.to_bits(),
            };
            let idx = *index.entry(key).or_insert_with(|| {
                uniq.push(spec);
                uniq.len() - 1
            });
            exp_of.push(idx);
        }
        let exps: Vec<Arc<Experiment>> = predvfs_par::par_try_map(&uniq, |spec| {
            let mut config = ExperimentConfig::paper_default(scenario.platform);
            config.size = scenario.size;
            config.seed = spec.seed;
            config.deadline_s = spec.deadline_s;
            let exp =
                Experiment::prepare_cached(spec.bench, config, cache).map_err(ServeError::Core)?;
            // Guard the modulo below: a benchmark that generates no
            // test jobs must surface as a spec error, not as a
            // divide-by-zero panic deep in the parallel fan-out.
            if exp.workloads.test.is_empty() {
                return Err(ServeError::InvalidSpec {
                    stream: spec.name.clone(),
                    msg: "benchmark generated an empty test set".to_owned(),
                });
            }
            Ok(Arc::new(exp))
        })?;
        let tables: Vec<Arc<OnceLock<Arc<Vec<CachedEntry>>>>> =
            exps.iter().map(|_| Arc::new(OnceLock::new())).collect();

        // Arrival plans (job indices + drift-scaled traces) dedupe the
        // same way, keyed by class, job count, and drift.
        #[derive(Hash, PartialEq, Eq)]
        struct PlanKey {
            exp: usize,
            jobs: usize,
            drift: Option<(u64, u64)>,
        }
        type Plan = (Arc<Vec<usize>>, Arc<Vec<JobTrace>>);
        let mut plans: HashMap<PlanKey, Plan> = HashMap::new();
        let mut streams = Vec::with_capacity(scenario.streams.len());
        for (spec, &ei) in scenario.streams.iter().zip(&exp_of) {
            let key = PlanKey {
                exp: ei,
                jobs: spec.jobs,
                drift: spec
                    .drift
                    .map(|d| (d.at_frac.to_bits(), d.cycle_scale.to_bits())),
            };
            let (job_idx, traces) = plans
                .entry(key)
                .or_insert_with(|| {
                    let exp = &exps[ei];
                    let n_test = exp.workloads.test.len();
                    let shift_at = spec
                        .drift
                        .map(|d| (d.at_frac * spec.jobs as f64).floor() as usize)
                        .unwrap_or(usize::MAX);
                    // Hoisted out of the loop: `drift` is per-stream, not
                    // per-job, and `shift_at` is only finite when it is
                    // set.
                    let drift_scale = spec.drift.map(|d| d.cycle_scale);
                    let mut job_idx = Vec::with_capacity(spec.jobs);
                    let mut traces = Vec::with_capacity(spec.jobs);
                    for i in 0..spec.jobs {
                        let idx = i % n_test;
                        job_idx.push(idx);
                        let base = &exp.test_traces[idx];
                        traces.push(match drift_scale {
                            Some(scale) if i >= shift_at => base.scaled(scale),
                            _ => base.clone(),
                        });
                    }
                    (Arc::new(job_idx), Arc::new(traces))
                })
                .clone();
            streams.push(PreparedStream {
                spec: spec.clone(),
                exp: Arc::clone(&exps[ei]),
                job_idx,
                traces,
                table: Arc::clone(&tables[ei]),
            });
        }
        Ok(ServeRuntime { streams })
    }

    /// The prepared streams' specs, in scenario order.
    pub fn specs(&self) -> impl Iterator<Item = &StreamSpec> {
        self.streams.iter().map(|s| &s.spec)
    }

    /// Builds the memoized decision table for one class (no-op when
    /// already built).
    fn ensure_cached_table(s: &PreparedStream) -> Result<(), ServeError> {
        if s.table.get().is_some() {
            return Ok(());
        }
        let runner = s.exp.predictor.runner();
        let nominal = OperatingPoint {
            volts: 1.0,
            freq_ratio: 1.0,
        };
        let mut entries = Vec::with_capacity(s.exp.workloads.test.len());
        for job in &s.exp.workloads.test {
            let run = runner
                .run(job)
                .map_err(|e| ServeError::Core(predvfs::CoreError::from(e)))?;
            let predicted = s.exp.model.predict_cycles(&run.features);
            let slice_pj =
                s.exp
                    .slice_energy
                    .job_pj(run.cycles.round() as u64, &run.dp_active, nominal, 1.0);
            entries.push(CachedEntry {
                predicted,
                slice_cycles: run.cycles,
                slice_pj,
            });
        }
        let _ = s.table.set(Arc::new(entries));
        Ok(())
    }

    /// Pre-builds the memoized decision tables every stream that will
    /// run under [`ControllerKind::Cached`] needs (one per class, fanned
    /// out in parallel). [`ServeRuntime::engine`] builds missing tables
    /// on demand; calling this first avoids redundant concurrent builds
    /// when many shard engines are constructed from worker threads.
    ///
    /// # Errors
    ///
    /// Propagates slice-execution failures.
    pub fn warm_cached_tables(&self, force: Option<ControllerKind>) -> Result<(), ServeError> {
        let mut seen = std::collections::HashSet::new();
        let mut todo: Vec<&PreparedStream> = Vec::new();
        for s in &self.streams {
            let kind = force.unwrap_or(s.spec.controller);
            if kind == ControllerKind::Cached
                && s.table.get().is_none()
                && seen.insert(Arc::as_ptr(&s.table))
            {
                todo.push(s);
            }
        }
        predvfs_par::par_try_map(&todo, |s| Self::ensure_cached_table(s))?;
        Ok(())
    }

    /// Runs the scenario with each stream's configured controller.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run(&self) -> Result<ServeResult, ServeError> {
        self.run_with(None)
    }

    /// Runs the scenario, optionally forcing every stream onto one
    /// controller kind (for baseline comparisons over identical arrivals).
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_with(&self, force: Option<ControllerKind>) -> Result<ServeResult, ServeError> {
        self.run_observed(force, &NullSink)
    }

    /// Runs the scenario with observability: per-stream service events
    /// go to `sink` as [`TraceEvent`]s stamped with the **virtual**
    /// clock, and slack / response / queue-depth / energy observations
    /// land in its histograms.
    ///
    /// All emission happens on the serial event loop, so for a given
    /// scenario the event sequence (and its JSONL rendering) is
    /// byte-identical regardless of worker-thread count. Passing
    /// [`NullSink`] makes this exactly [`ServeRuntime::run_with`]; the
    /// engine then pays one `enabled()` branch per event.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_observed(
        &self,
        force: Option<ControllerKind>,
        sink: &dyn ObsSink,
    ) -> Result<ServeResult, ServeError> {
        self.run_chaos(force, sink, &NullInjector, &DegradeConfig::disabled())
    }

    /// Runs the scenario under fault injection with the degradation
    /// machinery configured by `degrade` — the chaos-testing entry
    /// point. With [`NullInjector`] and [`DegradeConfig::disabled`] this
    /// is exactly [`ServeRuntime::run_observed`].
    ///
    /// Determinism is preserved: the injector is only queried with
    /// `(stream, job, attempt)` coordinates from the serial event loop,
    /// so for a given scenario, seed, and configuration the result and
    /// the emitted trace are byte-identical across worker-thread counts.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_chaos(
        &self,
        force: Option<ControllerKind>,
        sink: &dyn ObsSink,
        injector: &dyn FaultInjector,
        degrade: &DegradeConfig,
    ) -> Result<ServeResult, ServeError> {
        let _run_span = predvfs_obs::span("serve.run");
        let _run_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_serve_run");
        let members: Vec<usize> = (0..self.streams.len()).collect();
        let config = EngineConfig {
            force,
            degrade: degrade.clone(),
            ..EngineConfig::default()
        };
        let mut engine = self.engine(&members, config, sink, injector)?;
        engine.run_until(f64::INFINITY)?;
        let horizon_s = engine.horizon_s();
        let events = engine.events();
        let streams = engine.finish().into_iter().map(|(_, r)| r).collect();
        Ok(ServeResult {
            streams,
            horizon_s,
            events,
        })
    }

    /// Builds a resumable [`ShardEngine`] over the streams named by
    /// `members` (global stream ids into this runtime, in slot order).
    /// The single-engine entry points are `engine` over all streams with
    /// the default [`EngineConfig`]; the sharded tier builds one engine
    /// per shard with deferred escalations and one-ahead arrivals.
    ///
    /// # Errors
    ///
    /// Propagates cached-table build failures for members forced onto
    /// [`ControllerKind::Cached`].
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range.
    pub fn engine<'rt>(
        &'rt self,
        members: &[usize],
        config: EngineConfig,
        sink: &'rt dyn ObsSink,
        injector: &'rt dyn FaultInjector,
    ) -> Result<ShardEngine<'rt>, ServeError> {
        let faults_on = injector.enabled();
        let mut engine = ShardEngine {
            rt: self,
            sink,
            injector,
            faults_on,
            degrade: config.degrade,
            lean: config.lean,
            defer: config.defer_escalations,
            one_ahead: config.one_ahead_arrivals,
            slots: Vec::with_capacity(members.len()),
            by_gid: BTreeMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            horizon_s: 0.0,
            events: 0,
            jobs_done: 0,
            boost_requests: Vec::new(),
        };
        for (slot_idx, &gid) in members.iter().enumerate() {
            let s = &self.streams[gid];
            let kind = config.force.unwrap_or(s.spec.controller);
            if kind == ControllerKind::Cached {
                Self::ensure_cached_table(s)?;
            }
            engine.slots.push(Some(Slot {
                gid,
                state: new_state(s, kind, config.lean),
            }));
            engine.by_gid.insert(gid, slot_idx);
            if config.one_ahead_arrivals {
                // Job 0 arrives at its nominal instant; each arrival
                // then schedules its successor.
                engine.push(
                    0.0,
                    Event::Arrival {
                        stream: slot_idx,
                        job: 0,
                    },
                );
            } else {
                let mut prev_arrival = 0.0f64;
                for job in 0..s.spec.jobs {
                    // An arrival burst collapses this job onto its
                    // predecessor's arrival instant (ties resolve in job
                    // order via the sequence number). Non-burst jobs stay
                    // anchored to the nominal schedule, so a burst is a
                    // transient, not a cumulative shift.
                    let nominal = job as f64 * s.spec.period_s;
                    let t = if faults_on && job > 0 && injector.arrival_burst(gid, job) {
                        prev_arrival
                    } else {
                        nominal
                    };
                    prev_arrival = t;
                    engine.push(
                        t,
                        Event::Arrival {
                            stream: slot_idx,
                            job,
                        },
                    );
                }
            }
        }
        Ok(engine)
    }
}

/// Fresh run-time state for one stream.
fn new_state<'rt>(s: &'rt PreparedStream, kind: ControllerKind, lean: bool) -> StreamState<'rt> {
    let dvfs = &s.exp.dvfs;
    let f_hz = s.exp.energy.f_nominal_hz();
    let ctrl = match kind {
        ControllerKind::Predictive => Ctrl::Predictive(PredictiveController::new(
            dvfs.clone(),
            f_hz,
            &s.exp.predictor,
            &s.exp.model,
        )),
        ControllerKind::Adaptive => Ctrl::Adaptive(Box::new(AdaptiveController::new(
            dvfs.clone(),
            f_hz,
            &s.exp.predictor,
            s.exp.model.clone(),
            OnlineTrainerConfig::default(),
        ))),
        ControllerKind::Pid => Ctrl::Pid(PidController::tuned(dvfs.clone(), f_hz)),
        ControllerKind::Hybrid => Ctrl::Hybrid(HybridController::new(
            dvfs.clone(),
            f_hz,
            &s.exp.predictor,
            &s.exp.model,
        )),
        ControllerKind::Cached => Ctrl::Cached(CachedCtrl {
            dvfs,
            f_nominal_hz: f_hz,
            entries: s
                .table
                .get()
                .expect("cached table built before state construction")
                .as_slice(),
        }),
    };
    StreamState {
        ctrl,
        queue: VecDeque::new(),
        in_flight: None,
        prev_key: level_key(dvfs, dvfs.nominal()),
        started: 0,
        epoch: 0,
        consec_misses: 0,
        consec_degraded: 0,
        quarantine: None,
        was_degraded: false,
        seen_refits: 0,
        calib: CalibrationMonitor::new(CalibrationConfig::default()),
        calib_alert: false,
        slo: SloTracker::new(SloConfig::for_deadline(s.spec.deadline_s)),
        result: StreamResult {
            name: s.spec.name.clone(),
            bench: s.spec.bench.name.to_owned(),
            submitted: s.spec.jobs,
            done: 0,
            missed: 0,
            energy_pj: 0.0,
            records: if lean {
                Vec::new()
            } else {
                Vec::with_capacity(s.spec.jobs)
            },
            shed: 0,
            relaxed: 0,
            refits: 0,
            faults: 0,
            escalations: 0,
            quarantines: 0,
            internal_errors: 0,
        },
    }
}

/// A resumable event-loop engine over a subset of a runtime's streams —
/// one shard of the sharded serve tier (or the whole scenario, for the
/// single-engine entry points).
///
/// The engine owns its members' virtual clocks, admission queues, and
/// event heap; [`ShardEngine::run_until`] advances strictly below a time
/// bound and returns, so a coordinator can advance many engines to a
/// common epoch boundary, exchange [`BoostRequest`] grants and stream
/// migrations, and resume.
pub struct ShardEngine<'rt> {
    rt: &'rt ServeRuntime,
    sink: &'rt dyn ObsSink,
    injector: &'rt dyn FaultInjector,
    faults_on: bool,
    degrade: DegradeConfig,
    lean: bool,
    defer: bool,
    one_ahead: bool,
    /// Slot-indexed stream states; a migrated-away stream leaves `None`
    /// (slot indices are never reused, admissions append).
    slots: Vec<Option<Slot<'rt>>>,
    /// Ordered so every iteration that reaches snapshots, checkpoints,
    /// or traces walks streams gid-ascending (a `HashMap` here would
    /// make checkpoint bytes depend on hasher seeding).
    by_gid: BTreeMap<usize, usize>,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    horizon_s: f64,
    events: usize,
    jobs_done: u64,
    boost_requests: Vec<BoostRequest>,
}

impl<'rt> ShardEngine<'rt> {
    fn push(&mut self, time: f64, event: Event) {
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Virtual time of the next pending event, if any.
    pub fn next_time(&self) -> Option<f64> {
        // The heap orders earliest-first, so peek is the minimum.
        self.heap.peek().map(|s| s.time)
    }

    /// Whether the engine has nothing left to do. (A job in flight
    /// always has a pending completion event, so an empty heap means
    /// fully drained.)
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Virtual time of the latest event processed so far.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Events processed so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Jobs completed so far.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Whether the engine currently owns stream `gid`.
    pub fn owns(&self, gid: usize) -> bool {
        self.by_gid.contains_key(&gid)
    }

    /// Takes the boost requests accumulated since the last drain.
    pub fn drain_boost_requests(&mut self) -> Vec<BoostRequest> {
        std::mem::take(&mut self.boost_requests)
    }

    /// Redirects subsequent trace/metric emission to `sink`. The shard
    /// tier's crash recovery replays a rebuilt engine against a
    /// [`NullSink`] (the lost engine already emitted those events before
    /// the crash) and then swaps the real sink back in here.
    pub fn set_sink(&mut self, sink: &'rt dyn ObsSink) {
        self.sink = sink;
    }

    /// Captures the engine's complete logical state as of now: every
    /// owned stream's service state and pending events (gid-ascending,
    /// events time-ordered) plus the run counters. Restoring the
    /// checkpoint into a fresh engine (admit each stream, then
    /// [`ShardEngine::restore_counters`]) yields an engine that evolves
    /// identically — pending-event relative order is preserved per
    /// stream, and streams never interact inside the loop.
    pub fn checkpoint(&self) -> EngineCheckpoint<'rt> {
        let mut per_slot: BTreeMap<usize, Vec<(f64, u64, Event)>> = BTreeMap::new();
        for sch in self.heap.iter() {
            per_slot
                .entry(event_slot(&sch.event))
                .or_default()
                .push((sch.time, sch.seq, sch.event));
        }
        let mut streams = Vec::with_capacity(self.by_gid.len());
        for (&gid, &slot_idx) in &self.by_gid {
            let slot = self.slots[slot_idx].as_ref().expect("by_gid maps to slot");
            let mut evs = per_slot.remove(&slot_idx).unwrap_or_default();
            evs.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            streams.push(MigratedStream {
                gid,
                state: slot.state.clone(),
                events: evs.into_iter().map(|(t, _, e)| (t, e)).collect(),
            });
        }
        EngineCheckpoint {
            horizon_s: self.horizon_s,
            events: self.events,
            jobs_done: self.jobs_done,
            streams,
        }
    }

    /// Overwrites the run counters with checkpointed values — the last
    /// step of restoring an [`EngineCheckpoint`] into a fresh engine.
    pub fn restore_counters(&mut self, horizon_s: f64, events: usize, jobs_done: u64) {
        self.horizon_s = horizon_s;
        self.events = events;
        self.jobs_done = jobs_done;
    }

    /// Processes every event strictly before `t_end` (pass
    /// `f64::INFINITY` to drain).
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_until(&mut self, t_end: f64) -> Result<(), ServeError> {
        while let Some(top) = self.heap.peek() {
            if top.time >= t_end {
                break;
            }
            let Scheduled { time, event, .. } = self.heap.pop().expect("peeked above");
            self.horizon_s = self.horizon_s.max(time);
            self.events += 1;
            self.step(time, event)?;
        }
        Ok(())
    }

    /// Applies one granted [`BoostRequest`] at virtual time `now` (the
    /// epoch boundary): re-runs the escalation math as of `now` and
    /// boosts the attempt if it still helps. Returns whether the boost
    /// was applied (a request can go stale if its attempt completed or
    /// was superseded within the epoch).
    pub fn apply_boost(&mut self, req: BoostRequest, now: f64) -> bool {
        let Some(&slot_idx) = self.by_gid.get(&req.gid) else {
            return false;
        };
        let rt = self.rt;
        let s = &rt.streams[req.gid];
        let mut cx = Loop {
            sink: self.sink,
            injector: self.injector,
            faults_on: self.faults_on,
            degrade: &self.degrade,
            lean: self.lean,
            defer: self.defer,
            one_ahead: self.one_ahead,
            heap: &mut self.heap,
            seq: &mut self.seq,
            boosts: &mut self.boost_requests,
        };
        let slot = self.slots[slot_idx].as_mut().expect("by_gid maps to slot");
        let state = &mut slot.state;
        {
            let Some(fly) = state.in_flight.as_ref() else {
                return false;
            };
            if fly.epoch != req.epoch || fly.escalated {
                return false;
            }
        }
        cx.escalate(s, slot_idx, state, now)
    }

    /// Removes stream `gid` (state + pending events) for migration to
    /// another engine; `None` when this engine does not own it.
    pub fn extract_stream(&mut self, gid: usize) -> Option<MigratedStream<'rt>> {
        let slot_idx = self.by_gid.remove(&gid)?;
        let slot = self.slots[slot_idx].take().expect("by_gid maps to slot");
        let drained = std::mem::take(&mut self.heap).into_vec();
        let (mut mine, rest): (Vec<Scheduled>, Vec<Scheduled>) = drained
            .into_iter()
            .partition(|e| event_slot(&e.event) == slot_idx);
        self.heap = BinaryHeap::from(rest);
        mine.sort_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        Some(MigratedStream {
            gid,
            state: slot.state,
            events: mine.into_iter().map(|e| (e.time, e.event)).collect(),
        })
    }

    /// Admits a migrated stream: allocates a fresh slot and re-schedules
    /// its pending events (in their original time order, under fresh
    /// sequence numbers).
    pub fn admit_stream(&mut self, migrated: MigratedStream<'rt>) {
        let slot_idx = self.slots.len();
        self.by_gid.insert(migrated.gid, slot_idx);
        self.slots.push(Some(Slot {
            gid: migrated.gid,
            state: migrated.state,
        }));
        for (time, event) in migrated.events {
            let event = retarget(event, slot_idx);
            self.push(time, event);
        }
    }

    /// Current load summary (the rebalancer's input).
    pub fn load(&self) -> ShardLoad {
        let mut load = ShardLoad {
            pending_events: self.heap.len(),
            jobs_done: self.jobs_done,
            ..ShardLoad::default()
        };
        for slot in self.slots.iter().flatten() {
            load.streams += 1;
            if slot.state.in_flight.is_some() {
                load.active += 1;
            }
            load.queued += slot.state.queue.len();
        }
        load
    }

    /// The busiest streams this engine owns (global ids, busiest first,
    /// gid ascending on ties), capped at `limit` — the coordinator's
    /// migration shortlist. Busyness weighs queued jobs double, plus the
    /// in-flight job and the quarantine flag; idle streams never appear.
    pub fn migration_candidates(&self, limit: usize) -> Vec<usize> {
        let mut busy: Vec<(usize, usize)> = self
            .slots
            .iter()
            .flatten()
            .filter_map(|slot| {
                let b = slot.state.queue.len() * 2
                    + usize::from(slot.state.in_flight.is_some())
                    + usize::from(slot.state.quarantine.is_some());
                (b > 0).then_some((b, slot.gid))
            })
            .collect();
        busy.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        busy.into_iter().take(limit).map(|(_, gid)| gid).collect()
    }

    /// Consumes the engine and returns each owned stream's result,
    /// keyed by global stream id, gid-ascending.
    pub fn finish(self) -> Vec<(usize, StreamResult)> {
        let mut out: Vec<(usize, StreamResult)> = self
            .slots
            .into_iter()
            .flatten()
            .map(|slot| {
                let mut state = slot.state;
                state.result.refits = state.ctrl.refits();
                (slot.gid, state.result)
            })
            .collect();
        out.sort_by_key(|&(gid, _)| gid);
        out
    }

    /// Processes one event. Stream slots, the heap, and the counters are
    /// disjoint fields, so the borrow splits cleanly between the slot
    /// being served and the scheduling context.
    fn step(&mut self, time: f64, event: Event) -> Result<(), ServeError> {
        // Dispatch spans, keyed by event kind. The wall span measures
        // host time in this handler; the virtual record counts the
        // dispatch on the deterministic clock (and is additionally gated
        // on the sink so NullSink replay — crash recovery — stays
        // invisible to the profile). Everything, including the name
        // match, sits behind one enabled check: this runs per event, and
        // the disabled hot path must stay a single load-and-branch.
        let _dispatch = if predvfs_obs::profiling_enabled() {
            let (wall_name, kind_name): (&'static str, &'static str) = match &event {
                Event::Arrival { .. } => ("serve.dispatch.arrival", "arrival"),
                Event::SliceDone { .. } => ("serve.dispatch.slice_done", "slice_done"),
                Event::SwitchDone { .. } => ("serve.dispatch.switch_done", "switch_done"),
                Event::JobDone { .. } => ("serve.dispatch.job_done", "job_done"),
                Event::Watchdog { .. } => ("serve.dispatch.watchdog", "watchdog"),
            };
            if self.sink.enabled() {
                predvfs_obs::record_virtual(&["serve", "dispatch", kind_name], 0.0);
            }
            predvfs_obs::SpanGuard::enter(wall_name)
        } else {
            predvfs_obs::SpanGuard::inert()
        };
        let rt = self.rt;
        let mut cx = Loop {
            sink: self.sink,
            injector: self.injector,
            faults_on: self.faults_on,
            degrade: &self.degrade,
            lean: self.lean,
            defer: self.defer,
            one_ahead: self.one_ahead,
            heap: &mut self.heap,
            seq: &mut self.seq,
            boosts: &mut self.boost_requests,
        };
        match event {
            Event::Arrival { stream, job } => {
                let slot = self.slots[stream].as_mut().expect("event for vacated slot");
                let gid = slot.gid;
                let s = &rt.streams[gid];
                let spec = &s.spec;
                // One-ahead mode: schedule the successor before anything
                // this handler schedules, so on a burst tie the next
                // arrival outranks this job's service events.
                if cx.one_ahead && job + 1 < spec.jobs {
                    let next = job + 1;
                    let t = if cx.faults_on && cx.injector.arrival_burst(gid, next) {
                        time
                    } else {
                        next as f64 * spec.period_s
                    };
                    cx.push(t, Event::Arrival { stream, job: next });
                }
                let adm = Admitted {
                    job,
                    arrival_s: time,
                    deadline_abs_s: time + spec.deadline_s,
                    relaxed: false,
                };
                let state = &mut slot.state;
                // Stateless re-query: same coordinates, same answer
                // as at schedule time — the burst is traced from the
                // serial loop to keep emission order deterministic.
                if cx.faults_on && job > 0 && cx.injector.arrival_burst(gid, job) {
                    state.note_fault(time, cx.sink, &FaultKind::ArrivalBurst, job);
                }
                if cx.sink.enabled() {
                    cx.sink.counter_add("predvfs_serve_arrivals_total", 1);
                    cx.sink.emit(
                        TraceEvent::new(time, &spec.name, kinds::ARRIVAL)
                            .with_u64("job", job as u64),
                    );
                }
                if state.in_flight.is_none() {
                    cx.start_service(s, gid, stream, state, adm, time)?;
                } else if state.queue.len() < spec.queue_bound {
                    state.queue.push_back(adm);
                } else {
                    match spec.policy {
                        OverloadPolicy::Shed => {
                            state.result.shed += 1;
                            if cx.sink.enabled() {
                                cx.sink.counter_add("predvfs_serve_shed_total", 1);
                                cx.sink.emit(
                                    TraceEvent::new(time, &spec.name, kinds::SHED)
                                        .with_u64("job", job as u64),
                                );
                            }
                        }
                        OverloadPolicy::Relax { factor } => {
                            state.result.relaxed += 1;
                            let stretched = spec.deadline_s * factor;
                            if cx.sink.enabled() {
                                cx.sink.counter_add("predvfs_serve_relaxed_total", 1);
                                cx.sink.emit(
                                    TraceEvent::new(time, &spec.name, kinds::RELAX)
                                        .with_u64("job", job as u64)
                                        .with_f64("deadline_s", stretched),
                                );
                            }
                            state.queue.push_back(Admitted {
                                deadline_abs_s: time + stretched,
                                relaxed: true,
                                ..adm
                            });
                        }
                    }
                }
                if cx.sink.enabled() {
                    cx.sink
                        .observe("predvfs_serve_queue_depth", state.queue.len() as f64);
                }
            }
            // Clock markers: the accelerator's phase changes but no
            // scheduling decision hangs off them. SliceDone is still
            // traced — slice latency is an overhead observable.
            Event::SliceDone { stream, epoch } => {
                let slot = self.slots[stream].as_ref().expect("event for vacated slot");
                if slot.state.epoch == epoch && cx.sink.enabled() {
                    cx.sink.emit(TraceEvent::new(
                        time,
                        &rt.streams[slot.gid].spec.name,
                        kinds::SLICE_DONE,
                    ));
                }
            }
            Event::SwitchDone { .. } => {}
            Event::JobDone { stream, epoch } => {
                let slot = self.slots[stream].as_mut().expect("event for vacated slot");
                let gid = slot.gid;
                let s = &rt.streams[gid];
                let state = &mut slot.state;
                let stale = match &state.in_flight {
                    Some(fly) => fly.epoch != epoch,
                    None => epoch != state.epoch,
                };
                if stale {
                    // A completion superseded by a watchdog
                    // escalation (its epoch was bumped past this
                    // event's): drop it.
                    return Ok(());
                }
                if state.in_flight.is_none() {
                    // A current-epoch completion with no job in
                    // flight: the accelerator signalled "done" out
                    // of thin air. Contain it — count, trace, and
                    // quarantine the stream — instead of panicking.
                    state.result.internal_errors += 1;
                    if cx.sink.enabled() {
                        cx.sink
                            .counter_add("predvfs_serve_internal_errors_total", 1);
                        cx.sink.emit(
                            TraceEvent::new(time, &state.result.name, kinds::INTERNAL_ERROR)
                                .with_str("cause", "job_done_without_job"),
                        );
                    }
                    state.enter_quarantine(time, cx.sink, kinds::INTERNAL_ERROR);
                    return Ok(());
                }
                let fly = state.in_flight.take().expect("checked above");
                self.jobs_done += 1;
                let rel_deadline = fly.adm.deadline_abs_s - fly.adm.arrival_s;
                let response = time - fly.adm.arrival_s;
                let missed = response > rel_deadline * (1.0 + 1e-9);
                let energy_pj = fly.job_pj + fly.slice_pj + fly.transition_pj;
                if predvfs_obs::profiling_enabled() && cx.sink.enabled() {
                    // Virtual-clock span: response time is deterministic,
                    // so this sum is byte-identical across shard counts.
                    predvfs_obs::record_virtual(&["serve", "job", "response"], response);
                }
                if cx.sink.enabled() {
                    let name = &s.spec.name;
                    cx.sink.counter_add("predvfs_serve_jobs_done_total", 1);
                    cx.sink.counter_add_with(
                        "predvfs_serve_stream_jobs_done_total",
                        &[("stream", name)],
                        1,
                    );
                    if missed {
                        cx.sink.counter_add("predvfs_serve_misses_total", 1);
                        cx.sink.counter_add_with(
                            "predvfs_serve_stream_misses_total",
                            &[("stream", name)],
                            1,
                        );
                    }
                    cx.sink.observe("predvfs_serve_response_seconds", response);
                    cx.sink
                        .observe("predvfs_serve_slack_seconds", rel_deadline - response);
                    cx.sink.observe("predvfs_serve_energy_pj", energy_pj);
                    let mut ev = TraceEvent::new(time, name, kinds::JOB_DONE)
                        .with_u64("job", fly.adm.job as u64)
                        .with_f64("response_s", response)
                        .with_f64("queue_s", fly.start_s - fly.adm.arrival_s)
                        .with_f64("deadline_s", rel_deadline)
                        .with_f64("slack_s", rel_deadline - response)
                        .with_bool("missed", missed)
                        .with_bool("relaxed", fly.adm.relaxed)
                        .with_bool("degraded", fly.degraded)
                        .with_u64("level", fly.key as u64)
                        .with_f64("volts", fly.volts)
                        .with_f64("energy_pj", energy_pj)
                        .with_f64("slice_pj", fly.slice_pj)
                        .with_u64("actual_cycles", fly.actual_cycles);
                    if fly.escalated {
                        ev = ev.with_bool("escalated", true);
                    }
                    if fly.safe_mode {
                        ev = ev.with_bool("safe_mode", true);
                    }
                    if let Some(p) = fly.predicted_cycles {
                        ev = ev.with_f64("predicted_cycles", p);
                    }
                    cx.sink.emit(ev);
                }
                let actual_cycles = fly.actual_cycles;
                state.result.done += 1;
                if missed {
                    state.result.missed += 1;
                }
                state.result.energy_pj += energy_pj;
                if !cx.lean {
                    state.result.records.push(ServeRecord {
                        job: fly.adm.job,
                        arrival_s: fly.adm.arrival_s,
                        start_s: fly.start_s,
                        done_s: time,
                        deadline_s: rel_deadline,
                        relaxed: fly.adm.relaxed,
                        missed,
                        degraded: fly.degraded,
                        escalated: fly.escalated,
                        safe_mode: fly.safe_mode,
                        volts: fly.volts,
                        energy_pj,
                        slice_energy_pj: fly.slice_pj,
                        predicted_cycles: fly.predicted_cycles,
                        actual_cycles,
                    });
                }
                // Quarantine bookkeeping: consecutive misses trip
                // it, probe completions recover from it.
                if missed {
                    state.consec_misses += 1;
                } else {
                    state.consec_misses = 0;
                }
                match state.quarantine {
                    None => {
                        if cx.degrade.quarantine_misses > 0
                            && state.consec_misses >= cx.degrade.quarantine_misses
                        {
                            state.enter_quarantine(time, cx.sink, "consecutive_misses");
                        }
                    }
                    Some(clean) => {
                        if missed {
                            state.quarantine = Some(0);
                        } else if clean + 1 >= cx.degrade.probe_jobs {
                            state.exit_quarantine(time, cx.sink);
                        } else {
                            state.quarantine = Some(clean + 1);
                        }
                    }
                }
                state.ctrl.observe(actual_cycles);
                state.note_ctrl_transitions(time, cx.sink);
                // Prediction-quality and burn-rate accounting. Lean mode
                // skips it: these trackers only feed gauges and
                // edge-triggered alert events, never the results.
                if !cx.lean {
                    if !matches!(state.ctrl, Ctrl::Adaptive(_)) {
                        if let Some(p) = fly.predicted_cycles {
                            state.calib.record(p, actual_cycles as f64);
                        }
                    }
                    let mon = match &state.ctrl {
                        Ctrl::Adaptive(c) => c.trainer().monitor(),
                        _ => &state.calib,
                    };
                    let calib = (
                        mon.under_rate(),
                        mon.coverage(),
                        mon.mape(),
                        mon.residual_ratio(),
                        mon.alert(),
                        mon.config().coverage_floor,
                    );
                    let slo_edge = state.slo.record(time, missed);
                    if cx.sink.enabled() {
                        let name = &s.spec.name;
                        let labels = [("stream", name.as_str())];
                        let (under, coverage, mape, ratio, alert, floor) = calib;
                        cx.sink.gauge_set_with(
                            "predvfs_calibration_underpred_rate",
                            &labels,
                            under,
                        );
                        cx.sink
                            .gauge_set_with("predvfs_calibration_coverage", &labels, coverage);
                        cx.sink
                            .gauge_set_with("predvfs_calibration_mape", &labels, mape);
                        cx.sink.gauge_set_with(
                            "predvfs_calibration_residual_ratio",
                            &labels,
                            ratio,
                        );
                        if alert != state.calib_alert {
                            if alert {
                                cx.sink
                                    .counter_add("predvfs_serve_calibration_alerts_total", 1);
                            }
                            cx.sink.emit(
                                TraceEvent::new(time, name, kinds::CALIBRATION_ALERT)
                                    .with_bool("engaged", alert)
                                    .with_f64("coverage", coverage)
                                    .with_f64("floor", floor),
                            );
                        }
                        let fast = state.slo.fast_burn(time);
                        let slow = state.slo.slow_burn(time);
                        cx.sink
                            .gauge_set_with("predvfs_slo_burn_fast", &labels, fast);
                        cx.sink
                            .gauge_set_with("predvfs_slo_burn_slow", &labels, slow);
                        if let Some(engaged) = slo_edge {
                            if engaged {
                                cx.sink.counter_add("predvfs_serve_slo_alerts_total", 1);
                            }
                            cx.sink.emit(
                                TraceEvent::new(time, name, kinds::SLO_BURN)
                                    .with_bool("engaged", engaged)
                                    .with_f64("fast_burn", fast)
                                    .with_f64("slow_burn", slow),
                            );
                        }
                    }
                    state.calib_alert = calib.4;
                }
                // A spurious completion interrupt: schedule a
                // phantom JobDone at the current epoch. If the
                // stream idles it surfaces as an internal error; if
                // another job dispatches first the epoch moves on
                // and the phantom is dropped as stale.
                if cx.faults_on && cx.injector.spurious_done(gid, fly.adm.job) {
                    state.note_fault(time, cx.sink, &FaultKind::SpuriousDone, fly.adm.job);
                    cx.push(
                        time,
                        Event::JobDone {
                            stream,
                            epoch: state.epoch,
                        },
                    );
                }
                if let Some(next) = state.queue.pop_front() {
                    cx.start_service(s, gid, stream, state, next, time)?;
                }
            }
            Event::Watchdog { stream, epoch } => {
                let slot = self.slots[stream].as_mut().expect("event for vacated slot");
                let gid = slot.gid;
                let s = &rt.streams[gid];
                cx.check_watchdog(s, gid, stream, &mut slot.state, epoch, time);
            }
        }
        Ok(())
    }
}

/// The scheduling context of one event dispatch: everything the service
/// helpers need except the slot being served, so one stream's state and
/// the engine's shared machinery can be borrowed simultaneously.
struct Loop<'a, 'rt> {
    sink: &'rt dyn ObsSink,
    injector: &'rt dyn FaultInjector,
    faults_on: bool,
    degrade: &'a DegradeConfig,
    lean: bool,
    defer: bool,
    one_ahead: bool,
    heap: &'a mut BinaryHeap<Scheduled>,
    seq: &'a mut u64,
    boosts: &'a mut Vec<BoostRequest>,
}

impl Loop<'_, '_> {
    fn push(&mut self, time: f64, event: Event) {
        self.heap.push(Scheduled {
            time,
            seq: *self.seq,
            event,
        });
        *self.seq += 1;
    }

    /// Mid-job deadline check: if the in-flight attempt `epoch` is
    /// projected to miss, either escalate in place (legacy mode) or
    /// record a [`BoostRequest`] for the coordinator (deferred mode).
    fn check_watchdog(
        &mut self,
        s: &PreparedStream,
        gid: usize,
        slot: usize,
        state: &mut StreamState<'_>,
        epoch: u64,
        now: f64,
    ) {
        {
            let Some(fly) = state.in_flight.as_ref() else {
                return; // attempt already completed
            };
            if fly.epoch != epoch || fly.escalated {
                return;
            }
            if fly.done_s <= fly.adm.deadline_abs_s {
                return; // on track
            }
            let esc_point = s.exp.dvfs.point(s.exp.dvfs.escalation());
            let cur_point = s.exp.dvfs.point(key_choice(&s.exp.dvfs, fly.key));
            if esc_point.freq_ratio <= cur_point.freq_ratio {
                return; // nowhere faster to go
            }
            if self.defer && fly.boost_requested {
                return;
            }
        }
        if self.defer {
            // The grant decision belongs to the coordinator: record the
            // request (and trace it) with no in-epoch behavioral effect.
            let fly = state.in_flight.as_mut().expect("checked above");
            fly.boost_requested = true;
            let (job, done_s, deadline) = (fly.adm.job, fly.done_s, fly.adm.deadline_abs_s);
            self.boosts.push(BoostRequest {
                gid,
                t_s: now,
                epoch,
            });
            if self.sink.enabled() {
                self.sink
                    .counter_add("predvfs_serve_boost_requests_total", 1);
                self.sink.emit(
                    TraceEvent::new(now, &state.result.name, kinds::BOOST_REQUEST)
                        .with_u64("job", job as u64)
                        .with_f64("projected_done_s", done_s)
                        .with_f64("deadline_s", deadline),
                );
            }
            return;
        }
        self.escalate(s, slot, state, now);
    }

    /// Switches the remaining work of the in-flight job to the
    /// escalation level (boost), bumps the epoch so the superseded
    /// completion goes stale, and schedules the new completion. The
    /// caller has verified the attempt is current, un-escalated, and
    /// projected to miss; the time-dependent checks (work remains,
    /// switching still pays) re-run here against `now`.
    fn escalate(
        &mut self,
        s: &PreparedStream,
        slot: usize,
        state: &mut StreamState<'_>,
        now: f64,
    ) -> bool {
        let Some(fly) = state.in_flight.as_mut() else {
            return false;
        };
        let esc_choice = s.exp.dvfs.escalation();
        let esc_key = level_key(&s.exp.dvfs, esc_choice);
        let esc_point = s.exp.dvfs.point(esc_choice);
        let cur_point = s.exp.dvfs.point(key_choice(&s.exp.dvfs, fly.key));
        let trace = fly.spiked.as_ref().unwrap_or(&s.traces[fly.adm.job]);
        let total = trace.cycles as f64;
        // Cycles retired so far at the effective (possibly jittered)
        // frequency; slice/switch phases retire nothing.
        let done_cycles = ((now - fly.exec_start_s).max(0.0) * fly.f_eff_hz).min(total);
        let remaining = total - done_cycles;
        if remaining <= 0.0 {
            return false;
        }
        let config = s.exp.config();
        let switch_s = config.switching.time_s(fly.key, esc_key);
        // Escalation runs at the clean escalation clock: the jitter
        // fault models a mis-trimmed level, and re-locking the PLL for
        // boost re-trims it.
        let f_esc = s.exp.energy.f_nominal_hz() * esc_point.freq_ratio;
        let new_done = now + switch_s + remaining / f_esc;
        if new_done >= fly.done_s {
            return false; // switching overhead would make things worse
        }
        // Energy: pro-rate the job between the two operating points and
        // charge the extra transition.
        let e_old = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, cur_point, 1.0);
        let e_new = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, esc_point, 1.0);
        let frac = done_cycles / total;
        fly.job_pj = e_old * frac + e_new * (1.0 - frac);
        fly.transition_pj += config.switching.transition_pj;
        let from_key = fly.key;
        fly.key = esc_key;
        fly.volts = esc_point.volts;
        fly.f_eff_hz = f_esc;
        fly.done_s = new_done;
        fly.escalated = true;
        state.epoch += 1;
        fly.epoch = state.epoch;
        let job = fly.adm.job;
        state.prev_key = esc_key;
        state.result.escalations += 1;
        if self.sink.enabled() {
            self.sink.counter_add("predvfs_serve_escalations_total", 1);
            self.sink.emit(
                TraceEvent::new(now, &state.result.name, kinds::WATCHDOG_BOOST)
                    .with_u64("job", job as u64)
                    .with_u64("from_level", from_key as u64)
                    .with_u64("to_level", esc_key as u64)
                    .with_f64("remaining_cycles", remaining)
                    .with_f64("done_s", new_done),
            );
        }
        self.push(
            new_done,
            Event::JobDone {
                stream: slot,
                epoch: state.epoch,
            },
        );
        true
    }

    /// Makes the DVFS decision for one admitted job, charges time and
    /// energy exactly as the batch runner does, applies any injected
    /// faults, and schedules the job's slice-done / switch-done /
    /// job-done (and watchdog) events.
    fn start_service(
        &mut self,
        s: &PreparedStream,
        gid: usize,
        slot: usize,
        state: &mut StreamState<'_>,
        adm: Admitted,
        now: f64,
    ) -> Result<(), ServeError> {
        let tidx = s.job_idx[adm.job];
        let job = &s.exp.workloads.test[tidx];
        let faults_on = self.faults_on;
        // Whatever budget queueing left is what the controller gets.
        let ctx = JobContext {
            job,
            deadline_s: adm.deadline_abs_s - now,
            index: state.started,
        };
        state.started += 1;

        let degraded = state.ctrl.is_degraded();
        if degraded {
            state.consec_degraded += 1;
        } else {
            state.consec_degraded = 0;
        }
        if state.quarantine.is_none()
            && self.degrade.quarantine_degraded > 0
            && state.consec_degraded >= self.degrade.quarantine_degraded
        {
            state.enter_quarantine(now, self.sink, "sustained_degradation");
        }
        let safe_mode = state.quarantine.is_some();
        // In quarantine the controller is bypassed entirely: no slice,
        // no prediction, nominal level. The stream trades energy for a
        // deterministic return to deadline safety while probing.
        let (mut decision, slice_pj_hint) = if safe_mode {
            (
                Decision {
                    choice: s.exp.dvfs.nominal(),
                    slice_cycles: 0.0,
                    slice_dp_active: Vec::new(),
                    predicted_cycles: None,
                },
                None,
            )
        } else {
            state.ctrl.decide(&ctx, tidx)?
        };
        state.note_ctrl_transitions(now, self.sink);

        let f_hz = s.exp.energy.f_nominal_hz();
        let mut slice_s = decision.slice_cycles / f_hz;
        if faults_on && !safe_mode {
            match self.injector.slice_fault(gid, adm.job) {
                // A corrupted prediction only matters on the predictive
                // path; the PID fallback never reads the slice output.
                Some(kind @ FaultKind::SliceCorrupt { predict_scale }) if !degraded => {
                    if let Some(p) = decision.predicted_cycles {
                        let corrupted = p * predict_scale;
                        decision.choice =
                            s.exp.dvfs.choose(corrupted, f_hz, ctx.deadline_s, slice_s);
                        decision.predicted_cycles = Some(corrupted);
                        state.note_fault(now, self.sink, &kind, adm.job);
                    }
                }
                // A hung slice costs time after the decision was read
                // out; the controller never learns it happened.
                Some(kind @ FaultKind::SliceTimeout { time_stretch }) => {
                    slice_s *= time_stretch;
                    state.note_fault(now, self.sink, &kind, adm.job);
                }
                _ => {}
            }
        }

        // Level switch, with rejected attempts retried under backoff.
        let config = s.exp.config();
        let target_key = level_key(&s.exp.dvfs, decision.choice);
        let mut key = state.prev_key;
        let mut switch_s = 0.0f64;
        let mut retries = 0u32;
        let mut switch_failed = false;
        if target_key != state.prev_key {
            let base_s = config.switching.time_s(state.prev_key, target_key);
            let mut attempt = 0u32;
            loop {
                if faults_on && self.injector.switch_rejected(gid, adm.job, attempt) {
                    state.note_fault(now, self.sink, &FaultKind::SwitchReject, adm.job);
                    if attempt >= self.degrade.max_switch_retries {
                        switch_failed = true;
                        break;
                    }
                    switch_s += self.degrade.retry_backoff_s * f64::from(1u32 << attempt.min(10));
                    attempt += 1;
                    retries += 1;
                    continue;
                }
                if let Some(stretch) = faults_on
                    .then(|| self.injector.switch_stall(gid, adm.job))
                    .flatten()
                {
                    state.note_fault(now, self.sink, &FaultKind::SwitchStall { stretch }, adm.job);
                    switch_s += base_s * stretch;
                } else {
                    switch_s += base_s;
                }
                key = target_key;
                break;
            }
        }
        let level_changed = key != state.prev_key;
        let choice = key_choice(&s.exp.dvfs, key);
        let point = s.exp.dvfs.point(choice);
        if self.sink.enabled() {
            if retries > 0 {
                self.sink
                    .counter_add("predvfs_serve_switch_retries_total", u64::from(retries));
                self.sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::SWITCH_RETRY)
                        .with_u64("job", adm.job as u64)
                        .with_u64("retries", u64::from(retries)),
                );
            }
            if switch_failed {
                self.sink
                    .counter_add("predvfs_serve_switch_failed_total", 1);
                self.sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::SWITCH_FAILED)
                        .with_u64("job", adm.job as u64)
                        .with_u64("stuck_level", key as u64)
                        .with_u64("wanted_level", target_key as u64),
                );
            }
            if level_changed {
                self.sink
                    .counter_add("predvfs_serve_level_switches_total", 1);
                self.sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::LEVEL_SWITCH)
                        .with_u64("from_level", state.prev_key as u64)
                        .with_u64("to_level", key as u64)
                        .with_f64("volts", point.volts)
                        .with_f64("switch_s", switch_s),
                );
            }
        }
        state.prev_key = key;

        // Ground truth, possibly spiked by a fault.
        let spiked = if faults_on {
            self.injector.trace_spike(gid, adm.job).map(|scale| {
                state.note_fault(
                    now,
                    self.sink,
                    &FaultKind::TraceSpike { cycle_scale: scale },
                    adm.job,
                );
                s.traces[adm.job].scaled(scale)
            })
        } else {
            None
        };
        let trace = spiked.as_ref().unwrap_or(&s.traces[adm.job]);

        // Clock jitter shifts execution time; energy stays keyed to the
        // operating point (the regulator's voltage doesn't move, the
        // clock trim does).
        let mut f_eff = f_hz * point.freq_ratio;
        if faults_on {
            if let Some(fscale) = self.injector.clock_jitter(gid, adm.job) {
                state.note_fault(
                    now,
                    self.sink,
                    &FaultKind::ClockJitter { freq_scale: fscale },
                    adm.job,
                );
                f_eff *= fscale;
            }
        }
        let exec_s = trace.cycles as f64 / f_eff;
        // The slice runs in its own always-nominal domain. The cached
        // controller ships the slice energy precomputed with its class
        // table; everyone else pays the per-dispatch evaluation.
        let slice_pj = if decision.slice_cycles > 0.0 {
            match slice_pj_hint {
                Some(pj) => pj,
                None => {
                    let nominal = OperatingPoint {
                        volts: 1.0,
                        freq_ratio: 1.0,
                    };
                    s.exp.slice_energy.job_pj(
                        decision.slice_cycles.round() as u64,
                        &decision.slice_dp_active,
                        nominal,
                        1.0,
                    )
                }
            }
        } else {
            0.0
        };
        let job_pj = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, point, 1.0);
        let transition_pj = config.switching.transition_pj * f64::from(level_changed);

        state.epoch += 1;
        let epoch = state.epoch;
        let exec_start_s = now + slice_s + switch_s;
        let done_s = exec_start_s + exec_s;
        state.in_flight = Some(InFlight {
            adm,
            epoch,
            start_s: now,
            exec_start_s,
            done_s,
            key,
            f_eff_hz: f_eff,
            degraded,
            safe_mode,
            escalated: false,
            boost_requested: false,
            volts: point.volts,
            job_pj,
            slice_pj,
            transition_pj,
            predicted_cycles: decision.predicted_cycles,
            actual_cycles: trace.cycles,
            spiked,
        });

        if slice_s > 0.0 {
            self.push(
                now + slice_s,
                Event::SliceDone {
                    stream: slot,
                    epoch,
                },
            );
        }
        if switch_s > 0.0 {
            self.push(
                exec_start_s,
                Event::SwitchDone {
                    stream: slot,
                    epoch,
                },
            );
        }
        self.push(
            done_s,
            Event::JobDone {
                stream: slot,
                epoch,
            },
        );
        if self.degrade.watchdog {
            let headroom = adm.deadline_abs_s - now;
            if headroom > 0.0 {
                self.push(
                    now + self.degrade.watchdog_frac * headroom,
                    Event::Watchdog {
                        stream: slot,
                        epoch,
                    },
                );
            }
        }
        Ok(())
    }
}
