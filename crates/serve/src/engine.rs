//! The deterministic discrete-event service runtime.
//!
//! [`ServeRuntime::prepare`] trains and slices each stream's accelerator
//! (fanned out with [`predvfs_par`], trace simulation deduplicated by the
//! shared [`TraceCache`]); [`ServeRuntime::run`] then advances a virtual
//! clock over arrival / slice-done / level-switch / job-done events in a
//! single serial loop. Parallelism lives entirely in the preparation
//! phase, whose per-stream outputs are bit-identical regardless of thread
//! count, so the whole pipeline is deterministic: same scenario, same
//! result, any `--threads`.
//!
//! Ties on the virtual clock are broken by a monotonic sequence number,
//! so simultaneous events (two streams arriving in the same instant)
//! always play out in submission order.
//!
//! ## Observability
//!
//! [`ServeRuntime::run_observed`] threads a [`predvfs_obs::ObsSink`]
//! through the engine: every service-level transition (arrival, shed,
//! relax, slice-done, level-switch, job-done, drift-fallback, refit)
//! becomes a structured trace event stamped with the **virtual** clock,
//! and per-job slack, response time, queue depth, and energy land in
//! histograms. Because all events are emitted from the serial event loop
//! with virtual timestamps, the trace is bit-deterministic across worker
//! thread counts — the `serve_observability` integration test pins the
//! JSONL output byte-for-byte between `--threads 1` and `--threads 8`.
//!
//! ## Fault injection and graceful degradation
//!
//! [`ServeRuntime::run_chaos`] additionally threads a
//! [`predvfs_faults::FaultInjector`] and a [`DegradeConfig`] through the
//! loop. The injector perturbs the simulated hardware at well-defined
//! sites (arrival bursts, slice corruption/timeouts, switch
//! rejections/stalls, clock jitter, trace spikes, spurious completions);
//! the degradation machinery pushes back:
//!
//! * a **deadline watchdog** fires at `watchdog_frac` of each job's
//!   remaining budget and, if the job is projected to miss, escalates it
//!   mid-flight to [`DvfsModel::escalation`] (boost);
//! * rejected level switches are **retried with exponential backoff** up
//!   to `max_switch_retries` times before the stream stays put;
//! * a stream entering `quarantine_misses` consecutive misses (or
//!   sustained controller degradation, or an engine-detected
//!   inconsistency) drops into **quarantine**: decisions bypass the
//!   controller and pin the nominal level until `probe_jobs` consecutive
//!   clean completions probe it back out.
//!
//! Every transition is emitted as a [`TraceEvent`] (kinds in
//! [`predvfs_obs::kinds`]). Scheduled events carry the **epoch** of the
//! service attempt that produced them; escalation bumps the stream's
//! epoch, so superseded completions are recognised as stale and skipped,
//! while a current-epoch completion with no job in flight is contained
//! as an `internal_error` (event + quarantine) instead of a panic.
//!
//! Faults are queried through pure functions of `(stream, job, attempt)`
//! — never of event order — so chaos runs stay byte-deterministic across
//! thread counts; the `chaos_determinism` integration suite pins this.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use predvfs::{
    AdaptiveController, CalibrationConfig, CalibrationMonitor, Decision, DvfsController, DvfsModel,
    HybridController, JobContext, LevelChoice, OnlineTrainerConfig, PidController,
    PredictiveController,
};
use predvfs_faults::{FaultInjector, FaultKind, NullInjector};
use predvfs_obs::{kinds, NullSink, ObsSink, TraceEvent};
use predvfs_power::OperatingPoint;
use predvfs_rtl::JobTrace;
use predvfs_sim::{Experiment, ExperimentConfig, TraceCache};

use crate::scenario::{ControllerKind, OverloadPolicy, Scenario, ServeError, StreamSpec};
use crate::slo::{SloConfig, SloTracker};

/// One stream, trained and ready to serve: the prepared experiment plus
/// the per-arrival job sequence (with any drift already applied to the
/// traces).
struct PreparedStream {
    spec: StreamSpec,
    exp: Experiment,
    /// Index into the experiment's test set for each arrival.
    job_idx: Vec<usize>,
    /// Ground-truth trace for each arrival (drift-scaled past the shift).
    traces: Vec<JobTrace>,
}

/// A scenario with every stream prepared; reusable across runs.
pub struct ServeRuntime {
    streams: Vec<PreparedStream>,
}

/// Degradation machinery configuration for [`ServeRuntime::run_chaos`].
///
/// [`DegradeConfig::disabled`] turns every mechanism off (the baseline
/// the chaos harness compares against); [`DegradeConfig::enabled`] is
/// the standard production posture.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// Arm the mid-job deadline watchdog.
    pub watchdog: bool,
    /// When the watchdog fires, as a fraction of the budget remaining at
    /// dispatch (in `(0, 1)`).
    pub watchdog_frac: f64,
    /// Retries granted to a rejected level switch (0 = give up at once).
    pub max_switch_retries: u32,
    /// Backoff before retry `n` is `retry_backoff_s · 2ⁿ` seconds.
    pub retry_backoff_s: f64,
    /// Consecutive deadline misses that trip quarantine (0 = never).
    pub quarantine_misses: usize,
    /// Consecutive controller-degraded dispatches that trip quarantine
    /// (0 = never) — the "repeated refit non-convergence" guard.
    pub quarantine_degraded: usize,
    /// Consecutive clean completions that probe a stream back out of
    /// quarantine.
    pub probe_jobs: usize,
}

impl DegradeConfig {
    /// Everything off: no watchdog, no retries, no quarantine.
    pub fn disabled() -> DegradeConfig {
        DegradeConfig {
            watchdog: false,
            watchdog_frac: 0.6,
            max_switch_retries: 0,
            retry_backoff_s: 20e-6,
            quarantine_misses: 0,
            quarantine_degraded: 0,
            probe_jobs: 8,
        }
    }

    /// The standard posture: watchdog at 60 % of the remaining budget,
    /// 3 switch retries from a 20 µs backoff, quarantine after 3
    /// consecutive misses or 32 degraded dispatches, 8 probe jobs.
    pub fn enabled() -> DegradeConfig {
        DegradeConfig {
            watchdog: true,
            max_switch_retries: 3,
            quarantine_misses: 3,
            quarantine_degraded: 32,
            ..DegradeConfig::disabled()
        }
    }
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig::disabled()
    }
}

/// Per-completed-job accounting, mirroring the batch runner's fields plus
/// the service-level ones (queueing, relaxation, fallback state).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Arrival index within the stream.
    pub job: usize,
    /// Virtual time the job arrived.
    pub arrival_s: f64,
    /// Virtual time service began (≥ arrival when queued).
    pub start_s: f64,
    /// Virtual time the job completed.
    pub done_s: f64,
    /// Effective relative deadline (stretched when admitted relaxed).
    pub deadline_s: f64,
    /// True when the job was admitted under a relaxed deadline.
    pub relaxed: bool,
    /// True when completion exceeded the effective deadline.
    pub missed: bool,
    /// True when the decision came from the drift fallback.
    pub degraded: bool,
    /// True when the deadline watchdog escalated the job mid-flight.
    pub escalated: bool,
    /// True when the job was served in quarantine (controller bypassed,
    /// nominal level pinned).
    pub safe_mode: bool,
    /// Core voltage of the operating point the job *finished* at.
    pub volts: f64,
    /// Total energy charged (job + slice + transition), picojoules.
    pub energy_pj: f64,
    /// Slice share of the energy, picojoules.
    pub slice_energy_pj: f64,
    /// The controller's (corrected) prediction, if it made one.
    pub predicted_cycles: Option<f64>,
    /// Ground-truth execution cycles.
    pub actual_cycles: u64,
}

/// Outcome of one stream over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// The stream's display name.
    pub name: String,
    /// The benchmark it served.
    pub bench: String,
    /// Jobs the stream submitted.
    pub submitted: usize,
    /// Per-completed-job records, in completion order.
    pub records: Vec<ServeRecord>,
    /// Arrivals dropped by the shed policy.
    pub shed: usize,
    /// Arrivals admitted with a stretched deadline.
    pub relaxed: usize,
    /// Online refits installed by an adaptive controller.
    pub refits: usize,
    /// Injected faults that fired on this stream.
    pub faults: usize,
    /// Mid-job watchdog escalations.
    pub escalations: usize,
    /// Times the stream entered quarantine.
    pub quarantines: usize,
    /// Inconsistent events the engine contained instead of panicking.
    pub internal_errors: usize,
}

impl StreamResult {
    /// Jobs that completed service.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Completed jobs that exceeded their effective deadline.
    pub fn misses(&self) -> usize {
        self.records.iter().filter(|r| r.missed).count()
    }

    /// Deadline misses as a percentage of **completed** jobs (0 when
    /// none completed).
    ///
    /// Shed arrivals never complete, so they are *not* part of this
    /// denominator — a stream can show 0% misses while dropping most of
    /// its traffic. Read it together with [`StreamResult::shed_pct`]:
    /// `miss_pct` is service *quality* over the jobs that ran, `shed_pct`
    /// is the share of offered load that was refused outright.
    pub fn miss_pct(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            100.0 * self.misses() as f64 / self.records.len() as f64
        }
    }

    /// Shed arrivals as a percentage of submitted jobs (0 when the
    /// stream submitted nothing). The complement of the admission rate;
    /// see [`StreamResult::miss_pct`] for why the two must be read
    /// together.
    pub fn shed_pct(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            100.0 * self.shed as f64 / self.submitted as f64
        }
    }

    /// Total energy across completed jobs, picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.records.iter().map(|r| r.energy_pj).sum()
    }
}

/// Outcome of a full service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Per-stream outcomes, in scenario order.
    pub streams: Vec<StreamResult>,
    /// Virtual time of the last event.
    pub horizon_s: f64,
    /// Events processed by the engine.
    pub events: usize,
}

/// What the virtual clock is waiting on.
///
/// Every event tied to a service attempt carries the **epoch** of that
/// attempt; a watchdog escalation bumps the stream's epoch, so events
/// scheduled by a superseded attempt are recognised as stale and
/// skipped when they surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Stream's `job`-th arrival enters admission.
    Arrival { stream: usize, job: usize },
    /// The feature slice finished (the accelerator may start switching).
    SliceDone { stream: usize, epoch: u64 },
    /// The voltage regulator settled at the chosen level.
    SwitchDone { stream: usize, epoch: u64 },
    /// The job left the accelerator.
    JobDone { stream: usize, epoch: u64 },
    /// Mid-job deadline check for the attempt dispatched at `epoch`.
    Watchdog { stream: usize, epoch: u64 },
}

/// Heap entry: earliest time first, submission order on ties.
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we pop earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A job admitted but not yet completed.
#[derive(Debug, Clone, Copy)]
struct Admitted {
    job: usize,
    arrival_s: f64,
    deadline_abs_s: f64,
    relaxed: bool,
}

/// The in-service job and its precomputed accounting.
struct InFlight {
    adm: Admitted,
    /// The service attempt this job was dispatched (or escalated) under.
    epoch: u64,
    start_s: f64,
    /// When execution proper begins (after slice + switching).
    exec_start_s: f64,
    /// Scheduled completion time (moves on escalation).
    done_s: f64,
    /// Level ordinal the job is executing at.
    key: usize,
    /// Effective execution frequency, Hz (clock jitter included).
    f_eff_hz: f64,
    degraded: bool,
    safe_mode: bool,
    escalated: bool,
    volts: f64,
    job_pj: f64,
    slice_pj: f64,
    transition_pj: f64,
    predicted_cycles: Option<f64>,
    /// Ground-truth cycles of the job as served (spiked when a
    /// trace-spike fault fired).
    actual_cycles: u64,
    /// Spike-scaled ground truth, kept for escalation-time
    /// re-accounting.
    spiked: Option<JobTrace>,
}

/// Per-stream controller dispatch. Boxing a `dyn DvfsController` would
/// lose access to the adaptive controller's refit counter, so the enum
/// keeps the concrete types.
enum Ctrl<'p> {
    Predictive(PredictiveController<'p>),
    Adaptive(Box<AdaptiveController<'p>>),
    Pid(PidController),
    Hybrid(HybridController<'p>),
}

impl Ctrl<'_> {
    fn decide(&mut self, ctx: &JobContext<'_>) -> Result<Decision, predvfs::CoreError> {
        match self {
            Ctrl::Predictive(c) => c.decide(ctx),
            Ctrl::Adaptive(c) => c.decide(ctx),
            Ctrl::Pid(c) => c.decide(ctx),
            Ctrl::Hybrid(c) => c.decide(ctx),
        }
    }

    fn observe(&mut self, actual: u64) {
        match self {
            Ctrl::Predictive(c) => c.observe(actual),
            Ctrl::Adaptive(c) => c.observe(actual),
            Ctrl::Pid(c) => c.observe(actual),
            Ctrl::Hybrid(c) => c.observe(actual),
        }
    }

    fn refits(&self) -> usize {
        match self {
            Ctrl::Adaptive(c) => c.refits(),
            _ => 0,
        }
    }

    fn is_degraded(&self) -> bool {
        match self {
            Ctrl::Adaptive(c) => c.is_degraded(),
            _ => false,
        }
    }
}

/// Mutable service state of one stream during a run.
struct StreamState<'p> {
    ctrl: Ctrl<'p>,
    queue: VecDeque<Admitted>,
    in_flight: Option<InFlight>,
    prev_key: usize,
    started: usize,
    /// Epoch of the most recent service attempt; scheduled events from
    /// older epochs are stale.
    epoch: u64,
    /// Consecutive deadline misses (quarantine trigger).
    consec_misses: usize,
    /// Consecutive dispatches made while the controller was degraded
    /// (quarantine trigger for refits that never converge).
    consec_degraded: usize,
    /// `Some(clean)` while quarantined: `clean` consecutive clean
    /// completions so far, out of the `probe_jobs` needed to recover.
    quarantine: Option<usize>,
    /// Last observed controller degradation, for edge-triggered
    /// drift-fallback events.
    was_degraded: bool,
    /// Last observed refit count, for edge-triggered refit events.
    seen_refits: usize,
    /// Prediction-quality monitor for non-adaptive controllers (the
    /// adaptive controller's own trainer monitor is read instead, so the
    /// exported gauges and the refit trigger share one window).
    calib: CalibrationMonitor,
    /// Last observed calibration-alert level, for edge-triggered events.
    calib_alert: bool,
    /// Deadline-miss burn-rate tracker, clocked by the virtual clock.
    slo: SloTracker,
    result: StreamResult,
}

impl StreamState<'_> {
    /// Emits edge-triggered controller-transition events (drift fallback
    /// engaged/cleared, refit installed) after a controller interaction.
    fn note_ctrl_transitions(&mut self, now: f64, sink: &dyn ObsSink) {
        if !sink.enabled() {
            return;
        }
        let degraded = self.ctrl.is_degraded();
        if degraded != self.was_degraded {
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::DRIFT_FALLBACK)
                    .with_bool("engaged", degraded),
            );
            if degraded {
                sink.counter_add("predvfs_serve_drift_fallbacks_total", 1);
            }
            self.was_degraded = degraded;
        }
        let refits = self.ctrl.refits();
        if refits > self.seen_refits {
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::REFIT)
                    .with_u64("refits", refits as u64),
            );
            sink.counter_add(
                "predvfs_serve_refits_total",
                (refits - self.seen_refits) as u64,
            );
            self.seen_refits = refits;
        }
    }

    /// Records one fired fault, and traces it when observability is on.
    fn note_fault(&mut self, now: f64, sink: &dyn ObsSink, kind: &FaultKind, job: usize) {
        self.result.faults += 1;
        if sink.enabled() {
            sink.counter_add("predvfs_serve_faults_total", 1);
            let mut ev = TraceEvent::new(now, &self.result.name, kinds::FAULT)
                .with_str("kind", kind.name())
                .with_u64("job", job as u64);
            if let Some(m) = kind.magnitude() {
                ev = ev.with_f64("magnitude", m);
            }
            sink.emit(ev);
        }
    }

    /// Drops the stream into quarantine (no-op when already there).
    fn enter_quarantine(&mut self, now: f64, sink: &dyn ObsSink, reason: &str) {
        if self.quarantine.is_some() {
            return;
        }
        self.quarantine = Some(0);
        self.result.quarantines += 1;
        self.consec_misses = 0;
        if sink.enabled() {
            sink.counter_add("predvfs_serve_quarantines_total", 1);
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::QUARANTINE)
                    .with_bool("engaged", true)
                    .with_str("reason", reason),
            );
        }
    }

    /// Leaves quarantine after a successful probe sequence.
    fn exit_quarantine(&mut self, now: f64, sink: &dyn ObsSink) {
        self.quarantine = None;
        self.consec_misses = 0;
        self.consec_degraded = 0;
        if sink.enabled() {
            sink.emit(
                TraceEvent::new(now, &self.result.name, kinds::QUARANTINE)
                    .with_bool("engaged", false)
                    .with_str("reason", "probe_recover"),
            );
        }
    }
}

/// Maps a level choice to an ordinal for switching-cost bookkeeping.
fn level_key(dvfs: &DvfsModel, choice: LevelChoice) -> usize {
    match choice {
        LevelChoice::Regular(i) => i,
        LevelChoice::Boost => dvfs.ladder.len(),
    }
}

/// Inverse of [`level_key`]: the choice a stored ordinal denotes.
fn key_choice(dvfs: &DvfsModel, key: usize) -> LevelChoice {
    if key == dvfs.ladder.len() {
        LevelChoice::Boost
    } else {
        LevelChoice::Regular(key)
    }
}

impl ServeRuntime {
    /// Trains and slices every stream, in parallel, sharing `cache` for
    /// trace simulation.
    ///
    /// # Errors
    ///
    /// Rejects degenerate stream specs ([`ServeError::InvalidSpec`]) and
    /// propagates pipeline failures.
    pub fn prepare(scenario: &Scenario, cache: &TraceCache) -> Result<ServeRuntime, ServeError> {
        for spec in &scenario.streams {
            let invalid = |msg: &str| ServeError::InvalidSpec {
                stream: spec.name.clone(),
                msg: msg.to_owned(),
            };
            if spec.jobs == 0 {
                return Err(invalid("stream submits no jobs"));
            }
            if spec.period_s.partial_cmp(&0.0) != Some(Ordering::Greater) {
                return Err(invalid("arrival period must be positive"));
            }
            if spec.deadline_s.partial_cmp(&0.0) != Some(Ordering::Greater) {
                return Err(invalid("deadline must be positive"));
            }
        }
        let sink = predvfs_obs::global();
        let _prepare_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_serve_prepare");
        sink.counter_add(
            "predvfs_serve_streams_prepared_total",
            scenario.streams.len() as u64,
        );
        let streams = predvfs_par::par_try_map(
            &scenario.streams,
            |spec| -> Result<PreparedStream, ServeError> {
                let mut config = ExperimentConfig::paper_default(scenario.platform);
                config.size = scenario.size;
                config.seed = spec.seed;
                config.deadline_s = spec.deadline_s;
                let exp = Experiment::prepare_cached(spec.bench, config, cache)
                    .map_err(ServeError::Core)?;
                let n_test = exp.workloads.test.len();
                // Guard the modulo below: a benchmark that generates no
                // test jobs must surface as a spec error, not as a
                // divide-by-zero panic deep in the parallel fan-out.
                if n_test == 0 {
                    return Err(ServeError::InvalidSpec {
                        stream: spec.name.clone(),
                        msg: "benchmark generated an empty test set".to_owned(),
                    });
                }
                let shift_at = spec
                    .drift
                    .map(|d| (d.at_frac * spec.jobs as f64).floor() as usize)
                    .unwrap_or(usize::MAX);
                // Hoisted out of the loop: `drift` is per-stream, not
                // per-job, and `shift_at` is only finite when it is set.
                let drift_scale = spec.drift.map(|d| d.cycle_scale);
                let mut job_idx = Vec::with_capacity(spec.jobs);
                let mut traces = Vec::with_capacity(spec.jobs);
                for i in 0..spec.jobs {
                    let idx = i % n_test;
                    job_idx.push(idx);
                    let base = &exp.test_traces[idx];
                    traces.push(match drift_scale {
                        Some(scale) if i >= shift_at => base.scaled(scale),
                        _ => base.clone(),
                    });
                }
                Ok(PreparedStream {
                    spec: spec.clone(),
                    exp,
                    job_idx,
                    traces,
                })
            },
        )?;
        Ok(ServeRuntime { streams })
    }

    /// The prepared streams' specs, in scenario order.
    pub fn specs(&self) -> impl Iterator<Item = &StreamSpec> {
        self.streams.iter().map(|s| &s.spec)
    }

    /// Runs the scenario with each stream's configured controller.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run(&self) -> Result<ServeResult, ServeError> {
        self.run_with(None)
    }

    /// Runs the scenario, optionally forcing every stream onto one
    /// controller kind (for baseline comparisons over identical arrivals).
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_with(&self, force: Option<ControllerKind>) -> Result<ServeResult, ServeError> {
        self.run_observed(force, &NullSink)
    }

    /// Runs the scenario with observability: per-stream service events
    /// go to `sink` as [`TraceEvent`]s stamped with the **virtual**
    /// clock, and slack / response / queue-depth / energy observations
    /// land in its histograms.
    ///
    /// All emission happens on the serial event loop, so for a given
    /// scenario the event sequence (and its JSONL rendering) is
    /// byte-identical regardless of worker-thread count. Passing
    /// [`NullSink`] makes this exactly [`ServeRuntime::run_with`]; the
    /// engine then pays one `enabled()` branch per event.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_observed(
        &self,
        force: Option<ControllerKind>,
        sink: &dyn ObsSink,
    ) -> Result<ServeResult, ServeError> {
        self.run_chaos(force, sink, &NullInjector, &DegradeConfig::disabled())
    }

    /// Runs the scenario under fault injection with the degradation
    /// machinery configured by `degrade` — the chaos-testing entry
    /// point. With [`NullInjector`] and [`DegradeConfig::disabled`] this
    /// is exactly [`ServeRuntime::run_observed`].
    ///
    /// Determinism is preserved: the injector is only queried with
    /// `(stream, job, attempt)` coordinates from the serial event loop,
    /// so for a given scenario, seed, and configuration the result and
    /// the emitted trace are byte-identical across worker-thread counts.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (e.g. a hung slice).
    pub fn run_chaos(
        &self,
        force: Option<ControllerKind>,
        sink: &dyn ObsSink,
        injector: &dyn FaultInjector,
        degrade: &DegradeConfig,
    ) -> Result<ServeResult, ServeError> {
        let _run_timer = predvfs_obs::PhaseTimer::start(sink, "predvfs_serve_run");
        let mut states: Vec<StreamState<'_>> = self
            .streams
            .iter()
            .map(|s| {
                let kind = force.unwrap_or(s.spec.controller);
                let dvfs = s.exp.dvfs.clone();
                let f_hz = s.exp.energy.f_nominal_hz();
                let ctrl = match kind {
                    ControllerKind::Predictive => Ctrl::Predictive(PredictiveController::new(
                        dvfs.clone(),
                        f_hz,
                        &s.exp.predictor,
                        &s.exp.model,
                    )),
                    ControllerKind::Adaptive => Ctrl::Adaptive(Box::new(AdaptiveController::new(
                        dvfs.clone(),
                        f_hz,
                        &s.exp.predictor,
                        s.exp.model.clone(),
                        OnlineTrainerConfig::default(),
                    ))),
                    ControllerKind::Pid => Ctrl::Pid(PidController::tuned(dvfs.clone(), f_hz)),
                    ControllerKind::Hybrid => Ctrl::Hybrid(HybridController::new(
                        dvfs.clone(),
                        f_hz,
                        &s.exp.predictor,
                        &s.exp.model,
                    )),
                };
                StreamState {
                    ctrl,
                    queue: VecDeque::new(),
                    in_flight: None,
                    prev_key: level_key(&dvfs, dvfs.nominal()),
                    started: 0,
                    epoch: 0,
                    consec_misses: 0,
                    consec_degraded: 0,
                    quarantine: None,
                    was_degraded: false,
                    seen_refits: 0,
                    calib: CalibrationMonitor::new(CalibrationConfig::default()),
                    calib_alert: false,
                    slo: SloTracker::new(SloConfig::for_deadline(s.spec.deadline_s)),
                    result: StreamResult {
                        name: s.spec.name.clone(),
                        bench: s.spec.bench.name.to_owned(),
                        submitted: s.spec.jobs,
                        records: Vec::with_capacity(s.spec.jobs),
                        shed: 0,
                        relaxed: 0,
                        refits: 0,
                        faults: 0,
                        escalations: 0,
                        quarantines: 0,
                        internal_errors: 0,
                    },
                }
            })
            .collect();

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Scheduled>, seq: &mut u64, time: f64, event: Event| {
            heap.push(Scheduled {
                time,
                seq: *seq,
                event,
            });
            *seq += 1;
        };
        let faults_on = injector.enabled();
        for (k, s) in self.streams.iter().enumerate() {
            let mut prev_arrival = 0.0f64;
            for job in 0..s.spec.jobs {
                // An arrival burst collapses this job onto its
                // predecessor's arrival instant (ties resolve in job
                // order via the sequence number). Non-burst jobs stay
                // anchored to the nominal schedule, so a burst is a
                // transient, not a cumulative shift.
                let nominal = job as f64 * s.spec.period_s;
                let t = if faults_on && job > 0 && injector.arrival_burst(k, job) {
                    prev_arrival
                } else {
                    nominal
                };
                prev_arrival = t;
                push(&mut heap, &mut seq, t, Event::Arrival { stream: k, job });
            }
        }

        let mut horizon_s = 0.0f64;
        let mut events = 0usize;
        while let Some(Scheduled { time, event, .. }) = heap.pop() {
            horizon_s = horizon_s.max(time);
            events += 1;
            match event {
                Event::Arrival { stream, job } => {
                    let spec = &self.streams[stream].spec;
                    let adm = Admitted {
                        job,
                        arrival_s: time,
                        deadline_abs_s: time + spec.deadline_s,
                        relaxed: false,
                    };
                    let state = &mut states[stream];
                    // Stateless re-query: same coordinates, same answer
                    // as at schedule time — the burst is traced from the
                    // serial loop to keep emission order deterministic.
                    if faults_on && job > 0 && injector.arrival_burst(stream, job) {
                        state.note_fault(time, sink, &FaultKind::ArrivalBurst, job);
                    }
                    if sink.enabled() {
                        sink.counter_add("predvfs_serve_arrivals_total", 1);
                        sink.emit(
                            TraceEvent::new(time, &spec.name, kinds::ARRIVAL)
                                .with_u64("job", job as u64),
                        );
                    }
                    if state.in_flight.is_none() {
                        self.start_service(
                            stream, state, adm, time, &mut heap, &mut seq, sink, injector, degrade,
                        )?;
                    } else if state.queue.len() < spec.queue_bound {
                        state.queue.push_back(adm);
                    } else {
                        match spec.policy {
                            OverloadPolicy::Shed => {
                                state.result.shed += 1;
                                if sink.enabled() {
                                    sink.counter_add("predvfs_serve_shed_total", 1);
                                    sink.emit(
                                        TraceEvent::new(time, &spec.name, kinds::SHED)
                                            .with_u64("job", job as u64),
                                    );
                                }
                            }
                            OverloadPolicy::Relax { factor } => {
                                state.result.relaxed += 1;
                                let stretched = spec.deadline_s * factor;
                                if sink.enabled() {
                                    sink.counter_add("predvfs_serve_relaxed_total", 1);
                                    sink.emit(
                                        TraceEvent::new(time, &spec.name, kinds::RELAX)
                                            .with_u64("job", job as u64)
                                            .with_f64("deadline_s", stretched),
                                    );
                                }
                                state.queue.push_back(Admitted {
                                    deadline_abs_s: time + stretched,
                                    relaxed: true,
                                    ..adm
                                });
                            }
                        }
                    }
                    if sink.enabled() {
                        sink.observe("predvfs_serve_queue_depth", state.queue.len() as f64);
                    }
                }
                // Clock markers: the accelerator's phase changes but no
                // scheduling decision hangs off them. SliceDone is still
                // traced — slice latency is an overhead observable.
                Event::SliceDone { stream, epoch } => {
                    if states[stream].epoch == epoch && sink.enabled() {
                        sink.emit(TraceEvent::new(
                            time,
                            &self.streams[stream].spec.name,
                            kinds::SLICE_DONE,
                        ));
                    }
                }
                Event::SwitchDone { .. } => {}
                Event::JobDone { stream, epoch } => {
                    let state = &mut states[stream];
                    let stale = match &state.in_flight {
                        Some(fly) => fly.epoch != epoch,
                        None => epoch != state.epoch,
                    };
                    if stale {
                        // A completion superseded by a watchdog
                        // escalation (its epoch was bumped past this
                        // event's): drop it.
                        continue;
                    }
                    if state.in_flight.is_none() {
                        // A current-epoch completion with no job in
                        // flight: the accelerator signalled "done" out
                        // of thin air. Contain it — count, trace, and
                        // quarantine the stream — instead of panicking.
                        state.result.internal_errors += 1;
                        if sink.enabled() {
                            sink.counter_add("predvfs_serve_internal_errors_total", 1);
                            sink.emit(
                                TraceEvent::new(time, &state.result.name, kinds::INTERNAL_ERROR)
                                    .with_str("cause", "job_done_without_job"),
                            );
                        }
                        state.enter_quarantine(time, sink, kinds::INTERNAL_ERROR);
                        continue;
                    }
                    let fly = state.in_flight.take().expect("checked above");
                    let rel_deadline = fly.adm.deadline_abs_s - fly.adm.arrival_s;
                    let response = time - fly.adm.arrival_s;
                    let missed = response > rel_deadline * (1.0 + 1e-9);
                    let energy_pj = fly.job_pj + fly.slice_pj + fly.transition_pj;
                    if sink.enabled() {
                        let name = &self.streams[stream].spec.name;
                        sink.counter_add("predvfs_serve_jobs_done_total", 1);
                        sink.counter_add_with(
                            "predvfs_serve_stream_jobs_done_total",
                            &[("stream", name)],
                            1,
                        );
                        if missed {
                            sink.counter_add("predvfs_serve_misses_total", 1);
                            sink.counter_add_with(
                                "predvfs_serve_stream_misses_total",
                                &[("stream", name)],
                                1,
                            );
                        }
                        sink.observe("predvfs_serve_response_seconds", response);
                        sink.observe("predvfs_serve_slack_seconds", rel_deadline - response);
                        sink.observe("predvfs_serve_energy_pj", energy_pj);
                        let mut ev = TraceEvent::new(time, name, kinds::JOB_DONE)
                            .with_u64("job", fly.adm.job as u64)
                            .with_f64("response_s", response)
                            .with_f64("queue_s", fly.start_s - fly.adm.arrival_s)
                            .with_f64("deadline_s", rel_deadline)
                            .with_f64("slack_s", rel_deadline - response)
                            .with_bool("missed", missed)
                            .with_bool("relaxed", fly.adm.relaxed)
                            .with_bool("degraded", fly.degraded)
                            .with_u64("level", fly.key as u64)
                            .with_f64("volts", fly.volts)
                            .with_f64("energy_pj", energy_pj)
                            .with_f64("slice_pj", fly.slice_pj)
                            .with_u64("actual_cycles", fly.actual_cycles);
                        if fly.escalated {
                            ev = ev.with_bool("escalated", true);
                        }
                        if fly.safe_mode {
                            ev = ev.with_bool("safe_mode", true);
                        }
                        if let Some(p) = fly.predicted_cycles {
                            ev = ev.with_f64("predicted_cycles", p);
                        }
                        sink.emit(ev);
                    }
                    let actual_cycles = fly.actual_cycles;
                    state.result.records.push(ServeRecord {
                        job: fly.adm.job,
                        arrival_s: fly.adm.arrival_s,
                        start_s: fly.start_s,
                        done_s: time,
                        deadline_s: rel_deadline,
                        relaxed: fly.adm.relaxed,
                        missed,
                        degraded: fly.degraded,
                        escalated: fly.escalated,
                        safe_mode: fly.safe_mode,
                        volts: fly.volts,
                        energy_pj,
                        slice_energy_pj: fly.slice_pj,
                        predicted_cycles: fly.predicted_cycles,
                        actual_cycles,
                    });
                    // Quarantine bookkeeping: consecutive misses trip
                    // it, probe completions recover from it.
                    if missed {
                        state.consec_misses += 1;
                    } else {
                        state.consec_misses = 0;
                    }
                    match state.quarantine {
                        None => {
                            if degrade.quarantine_misses > 0
                                && state.consec_misses >= degrade.quarantine_misses
                            {
                                state.enter_quarantine(time, sink, "consecutive_misses");
                            }
                        }
                        Some(clean) => {
                            if missed {
                                state.quarantine = Some(0);
                            } else if clean + 1 >= degrade.probe_jobs {
                                state.exit_quarantine(time, sink);
                            } else {
                                state.quarantine = Some(clean + 1);
                            }
                        }
                    }
                    state.ctrl.observe(actual_cycles);
                    state.note_ctrl_transitions(time, sink);
                    // Prediction-quality accounting. The adaptive
                    // controller's trainer already recorded this pair
                    // inside `observe` — read its monitor so the gauges
                    // and the refit trigger describe the same window;
                    // everyone else feeds the stream-local monitor.
                    if !matches!(state.ctrl, Ctrl::Adaptive(_)) {
                        if let Some(p) = fly.predicted_cycles {
                            state.calib.record(p, actual_cycles as f64);
                        }
                    }
                    let mon = match &state.ctrl {
                        Ctrl::Adaptive(c) => c.trainer().monitor(),
                        _ => &state.calib,
                    };
                    let calib = (
                        mon.under_rate(),
                        mon.coverage(),
                        mon.mape(),
                        mon.residual_ratio(),
                        mon.alert(),
                        mon.config().coverage_floor,
                    );
                    let slo_edge = state.slo.record(time, missed);
                    if sink.enabled() {
                        let name = &self.streams[stream].spec.name;
                        let labels = [("stream", name.as_str())];
                        let (under, coverage, mape, ratio, alert, floor) = calib;
                        sink.gauge_set_with("predvfs_calibration_underpred_rate", &labels, under);
                        sink.gauge_set_with("predvfs_calibration_coverage", &labels, coverage);
                        sink.gauge_set_with("predvfs_calibration_mape", &labels, mape);
                        sink.gauge_set_with("predvfs_calibration_residual_ratio", &labels, ratio);
                        if alert != state.calib_alert {
                            if alert {
                                sink.counter_add("predvfs_serve_calibration_alerts_total", 1);
                            }
                            sink.emit(
                                TraceEvent::new(time, name, kinds::CALIBRATION_ALERT)
                                    .with_bool("engaged", alert)
                                    .with_f64("coverage", coverage)
                                    .with_f64("floor", floor),
                            );
                        }
                        let fast = state.slo.fast_burn(time);
                        let slow = state.slo.slow_burn(time);
                        sink.gauge_set_with("predvfs_slo_burn_fast", &labels, fast);
                        sink.gauge_set_with("predvfs_slo_burn_slow", &labels, slow);
                        if let Some(engaged) = slo_edge {
                            if engaged {
                                sink.counter_add("predvfs_serve_slo_alerts_total", 1);
                            }
                            sink.emit(
                                TraceEvent::new(time, name, kinds::SLO_BURN)
                                    .with_bool("engaged", engaged)
                                    .with_f64("fast_burn", fast)
                                    .with_f64("slow_burn", slow),
                            );
                        }
                    }
                    state.calib_alert = calib.4;
                    // A spurious completion interrupt: schedule a
                    // phantom JobDone at the current epoch. If the
                    // stream idles it surfaces as an internal error; if
                    // another job dispatches first the epoch moves on
                    // and the phantom is dropped as stale.
                    if faults_on && injector.spurious_done(stream, fly.adm.job) {
                        state.note_fault(time, sink, &FaultKind::SpuriousDone, fly.adm.job);
                        push(
                            &mut heap,
                            &mut seq,
                            time,
                            Event::JobDone {
                                stream,
                                epoch: state.epoch,
                            },
                        );
                    }
                    if let Some(next) = state.queue.pop_front() {
                        self.start_service(
                            stream, state, next, time, &mut heap, &mut seq, sink, injector, degrade,
                        )?;
                    }
                }
                Event::Watchdog { stream, epoch } => {
                    self.check_watchdog(
                        stream,
                        &mut states[stream],
                        epoch,
                        time,
                        &mut heap,
                        &mut seq,
                        sink,
                    );
                }
            }
        }

        let streams = states
            .into_iter()
            .map(|mut s| {
                s.result.refits = s.ctrl.refits();
                s.result
            })
            .collect();
        Ok(ServeResult {
            streams,
            horizon_s,
            events,
        })
    }

    /// Mid-job deadline check: if the in-flight attempt `epoch` is
    /// projected to miss, switch the remaining work to the escalation
    /// level (boost), bump the epoch so the superseded completion goes
    /// stale, and schedule the new completion.
    #[allow(clippy::too_many_arguments)]
    fn check_watchdog(
        &self,
        stream: usize,
        state: &mut StreamState<'_>,
        epoch: u64,
        now: f64,
        heap: &mut BinaryHeap<Scheduled>,
        seq: &mut u64,
        sink: &dyn ObsSink,
    ) {
        let s = &self.streams[stream];
        let Some(fly) = state.in_flight.as_mut() else {
            return; // attempt already completed
        };
        if fly.epoch != epoch || fly.escalated {
            return;
        }
        if fly.done_s <= fly.adm.deadline_abs_s {
            return; // on track
        }
        let esc_choice = s.exp.dvfs.escalation();
        let esc_key = level_key(&s.exp.dvfs, esc_choice);
        let esc_point = s.exp.dvfs.point(esc_choice);
        let cur_point = s.exp.dvfs.point(key_choice(&s.exp.dvfs, fly.key));
        if esc_point.freq_ratio <= cur_point.freq_ratio {
            return; // nowhere faster to go
        }
        let trace = fly.spiked.as_ref().unwrap_or(&s.traces[fly.adm.job]);
        let total = trace.cycles as f64;
        // Cycles retired so far at the effective (possibly jittered)
        // frequency; slice/switch phases retire nothing.
        let done_cycles = ((now - fly.exec_start_s).max(0.0) * fly.f_eff_hz).min(total);
        let remaining = total - done_cycles;
        if remaining <= 0.0 {
            return;
        }
        let config = s.exp.config();
        let switch_s = config.switching.time_s(fly.key, esc_key);
        // Escalation runs at the clean escalation clock: the jitter
        // fault models a mis-trimmed level, and re-locking the PLL for
        // boost re-trims it.
        let f_esc = s.exp.energy.f_nominal_hz() * esc_point.freq_ratio;
        let new_done = now + switch_s + remaining / f_esc;
        if new_done >= fly.done_s {
            return; // switching overhead would make things worse
        }
        // Energy: pro-rate the job between the two operating points and
        // charge the extra transition.
        let e_old = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, cur_point, 1.0);
        let e_new = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, esc_point, 1.0);
        let frac = done_cycles / total;
        fly.job_pj = e_old * frac + e_new * (1.0 - frac);
        fly.transition_pj += config.switching.transition_pj;
        let from_key = fly.key;
        fly.key = esc_key;
        fly.volts = esc_point.volts;
        fly.f_eff_hz = f_esc;
        fly.done_s = new_done;
        fly.escalated = true;
        state.epoch += 1;
        fly.epoch = state.epoch;
        let job = fly.adm.job;
        state.prev_key = esc_key;
        state.result.escalations += 1;
        if sink.enabled() {
            sink.counter_add("predvfs_serve_escalations_total", 1);
            sink.emit(
                TraceEvent::new(now, &state.result.name, kinds::WATCHDOG_BOOST)
                    .with_u64("job", job as u64)
                    .with_u64("from_level", from_key as u64)
                    .with_u64("to_level", esc_key as u64)
                    .with_f64("remaining_cycles", remaining)
                    .with_f64("done_s", new_done),
            );
        }
        heap.push(Scheduled {
            time: new_done,
            seq: *seq,
            event: Event::JobDone {
                stream,
                epoch: state.epoch,
            },
        });
        *seq += 1;
    }

    /// Makes the DVFS decision for one admitted job, charges time and
    /// energy exactly as the batch runner does, applies any injected
    /// faults, and schedules the job's slice-done / switch-done /
    /// job-done (and watchdog) events.
    #[allow(clippy::too_many_arguments)]
    fn start_service(
        &self,
        stream: usize,
        state: &mut StreamState<'_>,
        adm: Admitted,
        now: f64,
        heap: &mut BinaryHeap<Scheduled>,
        seq: &mut u64,
        sink: &dyn ObsSink,
        injector: &dyn FaultInjector,
        degrade: &DegradeConfig,
    ) -> Result<(), ServeError> {
        let s = &self.streams[stream];
        let job = &s.exp.workloads.test[s.job_idx[adm.job]];
        let faults_on = injector.enabled();
        // Whatever budget queueing left is what the controller gets.
        let ctx = JobContext {
            job,
            deadline_s: adm.deadline_abs_s - now,
            index: state.started,
        };
        state.started += 1;

        let degraded = state.ctrl.is_degraded();
        if degraded {
            state.consec_degraded += 1;
        } else {
            state.consec_degraded = 0;
        }
        if state.quarantine.is_none()
            && degrade.quarantine_degraded > 0
            && state.consec_degraded >= degrade.quarantine_degraded
        {
            state.enter_quarantine(now, sink, "sustained_degradation");
        }
        let safe_mode = state.quarantine.is_some();
        // In quarantine the controller is bypassed entirely: no slice,
        // no prediction, nominal level. The stream trades energy for a
        // deterministic return to deadline safety while probing.
        let mut decision = if safe_mode {
            Decision {
                choice: s.exp.dvfs.nominal(),
                slice_cycles: 0.0,
                slice_dp_active: Vec::new(),
                predicted_cycles: None,
            }
        } else {
            state.ctrl.decide(&ctx)?
        };
        state.note_ctrl_transitions(now, sink);

        let f_hz = s.exp.energy.f_nominal_hz();
        let mut slice_s = decision.slice_cycles / f_hz;
        if faults_on && !safe_mode {
            match injector.slice_fault(stream, adm.job) {
                // A corrupted prediction only matters on the predictive
                // path; the PID fallback never reads the slice output.
                Some(kind @ FaultKind::SliceCorrupt { predict_scale }) if !degraded => {
                    if let Some(p) = decision.predicted_cycles {
                        let corrupted = p * predict_scale;
                        decision.choice =
                            s.exp.dvfs.choose(corrupted, f_hz, ctx.deadline_s, slice_s);
                        decision.predicted_cycles = Some(corrupted);
                        state.note_fault(now, sink, &kind, adm.job);
                    }
                }
                // A hung slice costs time after the decision was read
                // out; the controller never learns it happened.
                Some(kind @ FaultKind::SliceTimeout { time_stretch }) => {
                    slice_s *= time_stretch;
                    state.note_fault(now, sink, &kind, adm.job);
                }
                _ => {}
            }
        }

        // Level switch, with rejected attempts retried under backoff.
        let config = s.exp.config();
        let target_key = level_key(&s.exp.dvfs, decision.choice);
        let mut key = state.prev_key;
        let mut switch_s = 0.0f64;
        let mut retries = 0u32;
        let mut switch_failed = false;
        if target_key != state.prev_key {
            let base_s = config.switching.time_s(state.prev_key, target_key);
            let mut attempt = 0u32;
            loop {
                if faults_on && injector.switch_rejected(stream, adm.job, attempt) {
                    state.note_fault(now, sink, &FaultKind::SwitchReject, adm.job);
                    if attempt >= degrade.max_switch_retries {
                        switch_failed = true;
                        break;
                    }
                    switch_s += degrade.retry_backoff_s * f64::from(1u32 << attempt.min(10));
                    attempt += 1;
                    retries += 1;
                    continue;
                }
                if let Some(stretch) = faults_on
                    .then(|| injector.switch_stall(stream, adm.job))
                    .flatten()
                {
                    state.note_fault(now, sink, &FaultKind::SwitchStall { stretch }, adm.job);
                    switch_s += base_s * stretch;
                } else {
                    switch_s += base_s;
                }
                key = target_key;
                break;
            }
        }
        let level_changed = key != state.prev_key;
        let choice = key_choice(&s.exp.dvfs, key);
        let point = s.exp.dvfs.point(choice);
        if sink.enabled() {
            if retries > 0 {
                sink.counter_add("predvfs_serve_switch_retries_total", u64::from(retries));
                sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::SWITCH_RETRY)
                        .with_u64("job", adm.job as u64)
                        .with_u64("retries", u64::from(retries)),
                );
            }
            if switch_failed {
                sink.counter_add("predvfs_serve_switch_failed_total", 1);
                sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::SWITCH_FAILED)
                        .with_u64("job", adm.job as u64)
                        .with_u64("stuck_level", key as u64)
                        .with_u64("wanted_level", target_key as u64),
                );
            }
            if level_changed {
                sink.counter_add("predvfs_serve_level_switches_total", 1);
                sink.emit(
                    TraceEvent::new(now, &s.spec.name, kinds::LEVEL_SWITCH)
                        .with_u64("from_level", state.prev_key as u64)
                        .with_u64("to_level", key as u64)
                        .with_f64("volts", point.volts)
                        .with_f64("switch_s", switch_s),
                );
            }
        }
        state.prev_key = key;

        // Ground truth, possibly spiked by a fault.
        let spiked = if faults_on {
            injector.trace_spike(stream, adm.job).map(|scale| {
                state.note_fault(
                    now,
                    sink,
                    &FaultKind::TraceSpike { cycle_scale: scale },
                    adm.job,
                );
                s.traces[adm.job].scaled(scale)
            })
        } else {
            None
        };
        let trace = spiked.as_ref().unwrap_or(&s.traces[adm.job]);

        // Clock jitter shifts execution time; energy stays keyed to the
        // operating point (the regulator's voltage doesn't move, the
        // clock trim does).
        let mut f_eff = f_hz * point.freq_ratio;
        if faults_on {
            if let Some(fscale) = injector.clock_jitter(stream, adm.job) {
                state.note_fault(
                    now,
                    sink,
                    &FaultKind::ClockJitter { freq_scale: fscale },
                    adm.job,
                );
                f_eff *= fscale;
            }
        }
        let exec_s = trace.cycles as f64 / f_eff;
        // The slice runs in its own always-nominal domain.
        let slice_pj = if decision.slice_cycles > 0.0 {
            let nominal = OperatingPoint {
                volts: 1.0,
                freq_ratio: 1.0,
            };
            s.exp.slice_energy.job_pj(
                decision.slice_cycles.round() as u64,
                &decision.slice_dp_active,
                nominal,
                1.0,
            )
        } else {
            0.0
        };
        let job_pj = s
            .exp
            .energy
            .job_pj(trace.cycles, &trace.dp_active, point, 1.0);
        let transition_pj = config.switching.transition_pj * f64::from(level_changed);

        state.epoch += 1;
        let epoch = state.epoch;
        let exec_start_s = now + slice_s + switch_s;
        let done_s = exec_start_s + exec_s;
        state.in_flight = Some(InFlight {
            adm,
            epoch,
            start_s: now,
            exec_start_s,
            done_s,
            key,
            f_eff_hz: f_eff,
            degraded,
            safe_mode,
            escalated: false,
            volts: point.volts,
            job_pj,
            slice_pj,
            transition_pj,
            predicted_cycles: decision.predicted_cycles,
            actual_cycles: trace.cycles,
            spiked,
        });

        let mut push = |time: f64, event: Event| {
            heap.push(Scheduled {
                time,
                seq: *seq,
                event,
            });
            *seq += 1;
        };
        if slice_s > 0.0 {
            push(now + slice_s, Event::SliceDone { stream, epoch });
        }
        if switch_s > 0.0 {
            push(exec_start_s, Event::SwitchDone { stream, epoch });
        }
        push(done_s, Event::JobDone { stream, epoch });
        if degrade.watchdog {
            let headroom = adm.deadline_abs_s - now;
            if headroom > 0.0 {
                push(
                    now + degrade.watchdog_frac * headroom,
                    Event::Watchdog { stream, epoch },
                );
            }
        }
        Ok(())
    }
}
